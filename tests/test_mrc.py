"""Tests for the miss-ratio-curve subsystem (``repro.mrc``).

The contract, from strongest to weakest:

* the vectorised stack engine is *bit-identical* to the independently
  derived Bennett-Kruskal Fenwick form, and both are byte-identical to
  simulating a fully-associative LRU cache at every probed size;
* the conflict decomposition reproduces the simulating
  :class:`~repro.core.ground_truth.GroundTruthClassifier`
  count-for-count, and the shared replay oracle is a drop-in for it in
  :func:`~repro.core.accuracy.measure_accuracy`;
* SHARDS sampling is deterministic from its seed and lands within the
  documented tolerance at the documented operating point (fixed-size
  1024 blocks).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.geometry import CacheGeometry
from repro.core.accuracy import measure_accuracy
from repro.core.ground_truth import GroundTruthClassifier
from repro.mrc import (
    COLD,
    ShardsEstimator,
    SharedGroundTruth,
    StackDistanceOracle,
    brute_force_fa_misses,
    compute_mrc,
    compute_profile,
    compute_profile_reference,
    conflict_decomposition,
    curve_from_profile,
    decompose_size,
    default_size_ladder,
    hash_block,
    sampled_curve,
)
from repro.mrc.cli import main as mrc_main
from repro.workloads.spec_analogs import EVAL_SUITE, build

# Small universes so short traces still collide and revisit.
blocks = st.integers(min_value=0, max_value=63)
block_lists = st.lists(blocks, min_size=0, max_size=300)

LINE = 64


def addresses_from_blocks(refs):
    """Turn abstract block ids into byte addresses one line apart."""
    return np.asarray(refs, dtype=np.int64) * LINE


# ----------------------------------------------------------------------
# Stack engine: vectorised == Fenwick reference == FA-LRU simulation
# ----------------------------------------------------------------------
class TestStackEngine:
    @given(block_lists)
    @settings(max_examples=200, deadline=None)
    def test_vectorised_matches_fenwick_reference(self, refs):
        addrs = addresses_from_blocks(refs)
        fast = compute_profile(addrs, LINE)
        slow = compute_profile_reference(addrs, LINE)
        assert fast.cold_misses == slow.cold_misses
        assert np.array_equal(fast.distances, slow.distances)

    @given(block_lists, st.integers(min_value=1, max_value=80))
    @settings(max_examples=150, deadline=None)
    def test_miss_counts_match_fa_lru_simulation(self, refs, capacity):
        addrs = addresses_from_blocks(refs)
        profile = compute_profile(addrs, LINE)
        (from_profile,) = profile.miss_counts([capacity])
        simulated = brute_force_fa_misses(addrs, LINE, capacity)
        assert from_profile == simulated

    def test_cold_misses_count_distinct_blocks(self):
        addrs = addresses_from_blocks([1, 2, 1, 3, 2, 1])
        profile = compute_profile(addrs, LINE)
        assert profile.cold_misses == 3
        assert profile.footprint_lines == 3

    def test_known_small_trace_distances(self):
        # a b c b a: b reuses over {b,c} -> 2; a reuses over {a,b,c} -> 3.
        addrs = addresses_from_blocks([0, 1, 2, 1, 0])
        profile = compute_profile(addrs, LINE)
        assert profile.distances.tolist() == [COLD, COLD, COLD, 2, 3]

    def test_sub_line_addresses_collapse_to_one_block(self):
        profile = compute_profile(np.arange(64, dtype=np.int64), LINE)
        assert profile.cold_misses == 1
        assert (profile.distances[1:] == 1).all()

    def test_empty_trace(self):
        profile = compute_profile(np.empty(0, dtype=np.int64), LINE)
        assert profile.total_refs == 0
        assert profile.miss_counts([4]) == [0]
        curve = curve_from_profile(profile)
        assert curve.miss_ratios() == [0.0] * len(curve.sizes_lines)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            compute_profile([0], line_size=48)
        with pytest.raises(ValueError):
            compute_profile([[0, 1]], LINE)
        with pytest.raises(ValueError):
            compute_profile([0], LINE).miss_counts([0])


# ----------------------------------------------------------------------
# Curves on real analog workloads
# ----------------------------------------------------------------------
class TestCurve:
    def test_exact_curve_byte_identical_to_per_size_simulation(self):
        trace = build("gcc", 20_000, seed=0)
        sizes = default_size_ladder(LINE)
        curve = compute_mrc(trace.addresses, LINE, sizes)
        assert curve.exact
        for size, misses in zip(curve.sizes_lines, curve.misses):
            assert misses == brute_force_fa_misses(
                trace.addresses, LINE, size
            )

    def test_curve_is_monotone_in_size(self):
        trace = build("swim", 20_000, seed=0)
        curve = compute_mrc(trace.addresses, LINE)
        assert list(curve.misses) == sorted(curve.misses, reverse=True)

    def test_default_ladder_spans_1k_to_256k(self):
        sizes = default_size_ladder(LINE)
        assert sizes[0] == (1 << 10) // LINE
        assert sizes[-1] == (256 << 10) // LINE
        assert len(sizes) == 9


# ----------------------------------------------------------------------
# Conflict decomposition vs the simulating ground-truth classifier
# ----------------------------------------------------------------------
class TestDecomposition:
    @pytest.mark.parametrize("assoc", [1, 2, 4])
    def test_split_matches_ground_truth_classifier(self, assoc):
        trace = build("go", 20_000, seed=0)
        size_bytes = 16 * 1024
        geometry = CacheGeometry(size=size_bytes, assoc=assoc, line_size=LINE)
        (split,) = conflict_decomposition(
            trace.addresses,
            assoc=assoc,
            line_size=LINE,
            sizes_lines=[size_bytes // LINE],
        )

        truth = GroundTruthClassifier(geometry)
        from repro.cache.set_assoc import SetAssociativeCache

        cache = SetAssociativeCache(geometry)
        misses = 0
        for addr in trace.addresses:
            addr = int(addr)
            if not cache.access(addr).hit:
                truth.classify_miss(addr)
                misses += 1
            truth.observe(addr)
        assert split.misses == misses
        assert split.breakdown() == truth.miss_breakdown()

    def test_split_components_sum_to_misses(self):
        trace = build("gcc", 10_000, seed=1)
        splits = conflict_decomposition(
            trace.addresses,
            assoc=2,
            sizes_lines=default_size_ladder(LINE),
        )
        for split in splits:
            assert (
                split.compulsory + split.capacity + split.conflict
                == split.misses
            )
            assert split.hits == split.total_refs - split.misses

    def test_profile_reuse_requires_matching_stream(self):
        profile = compute_profile(addresses_from_blocks([1, 2, 3]), LINE)
        with pytest.raises(ValueError):
            conflict_decomposition(
                addresses_from_blocks([1, 2]),
                sizes_lines=[4],
                profile=profile,
            )

    def test_decompose_size_validates_geometry(self):
        profile = compute_profile(addresses_from_blocks([1, 2, 3]), LINE)
        with pytest.raises(ValueError):
            decompose_size([1, 2, 3], profile, size_lines=6, assoc=4)
        with pytest.raises(ValueError):
            decompose_size([1, 2, 3], profile, size_lines=12, assoc=1)


# ----------------------------------------------------------------------
# Shared replay oracle == per-configuration GroundTruthClassifier
# ----------------------------------------------------------------------
class TestSharedOracle:
    def test_measure_accuracy_identical_with_oracle(self):
        trace = build("compress", 15_000, seed=0)
        geometry = CacheGeometry(size=16 * 1024, assoc=2, line_size=LINE)
        shared = SharedGroundTruth(trace.addresses, LINE)

        baseline = measure_accuracy(trace.addresses, geometry)
        replayed = measure_accuracy(
            trace.addresses,
            geometry,
            oracle=shared.oracle(geometry.size // LINE),
        )
        assert replayed == baseline

    def test_oracle_refuses_overrun(self):
        oracle = StackDistanceOracle(
            compute_profile(addresses_from_blocks([1]), LINE), 4
        )
        oracle.observe(LINE)
        with pytest.raises(IndexError):
            oracle.classify_miss(LINE)


# ----------------------------------------------------------------------
# SHARDS sampling
# ----------------------------------------------------------------------
class TestSampling:
    def test_hash_is_deterministic_and_seed_sensitive(self):
        assert hash_block(12345, seed=7) == hash_block(12345, seed=7)
        assert hash_block(12345, seed=7) != hash_block(12345, seed=8)

    def test_rate_one_reproduces_exact_curve(self):
        trace = build("gcc", 10_000, seed=0)
        exact = compute_mrc(trace.addresses, LINE)
        result = sampled_curve(trace.addresses, LINE, rate=1.0, seed=3)
        assert result.curve.misses == exact.misses
        assert result.final_rate == 1.0

    def test_sampling_is_deterministic_from_seed(self):
        trace = build("go", 15_000, seed=0)
        a = sampled_curve(trace.addresses, LINE, max_blocks=256, seed=5)
        b = sampled_curve(trace.addresses, LINE, max_blocks=256, seed=5)
        assert a.curve == b.curve
        assert a.final_rate == b.final_rate

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fixed_size_error_within_documented_tolerance(self, seed):
        # The operating point the docs promise: 1024 sampled blocks.
        # sampling.py's docstring pins this suite/seed grid at 0.05.
        for bench in EVAL_SUITE:
            trace = build(bench, 30_000, seed=0)
            exact = compute_mrc(trace.addresses, LINE).miss_ratios()
            approx = sampled_curve(
                trace.addresses, LINE, max_blocks=1024, seed=seed
            ).curve.miss_ratios()
            worst = max(abs(a - b) for a, b in zip(exact, approx))
            assert worst <= 0.05, f"{bench} seed {seed}: err {worst:.4f}"

    def test_mode_arguments_are_exclusive(self):
        with pytest.raises(ValueError):
            sampled_curve([0], LINE, rate=0.1, max_blocks=8)
        with pytest.raises(ValueError):
            sampled_curve([0], LINE)


# ----------------------------------------------------------------------
# Incremental SHARDS feeding (the online-service form)
# ----------------------------------------------------------------------
class TestIncrementalSampling:
    @settings(max_examples=25, deadline=None)
    @given(
        chunk=st.integers(min_value=1, max_value=4000),
        seed=st.integers(min_value=0, max_value=7),
        bench=st.sampled_from(["gcc", "tomcatv", "go"]),
    )
    def test_chunked_feed_identical_to_batch(self, chunk, seed, bench):
        # The contract is exact, not statistical: a stream fed in chunks
        # of any size must produce the same SampleResult as one batch
        # call — compaction only renumbers live positions, never changes
        # an interval count.
        trace = build(bench, 12_000, seed=0)
        addrs = np.asarray(trace.addresses, dtype=np.int64)
        batch = sampled_curve(addrs, LINE, max_blocks=128, seed=seed)
        estimator = ShardsEstimator(LINE, max_blocks=128, seed=seed)
        for start in range(0, len(addrs), chunk):
            estimator.feed(addrs[start : start + chunk])
        assert estimator.result() == batch

    def test_chunked_feed_identical_in_fixed_rate_mode(self):
        trace = build("swim", 20_000, seed=1)
        addrs = np.asarray(trace.addresses, dtype=np.int64)
        batch = sampled_curve(addrs, LINE, rate=0.25, seed=2)
        estimator = ShardsEstimator(LINE, rate=0.25, seed=2)
        for start in range(0, len(addrs), 333):
            estimator.feed(addrs[start : start + 333])
        assert estimator.result() == batch

    def test_result_is_a_snapshot_not_a_drain(self):
        # Querying mid-stream must not disturb the pass.
        trace = build("gcc", 10_000, seed=0)
        addrs = np.asarray(trace.addresses, dtype=np.int64)
        batch = sampled_curve(addrs, LINE, max_blocks=256, seed=0)
        estimator = ShardsEstimator(LINE, max_blocks=256, seed=0)
        for start in range(0, len(addrs), 1000):
            estimator.feed(addrs[start : start + 1000])
            estimator.result()
        assert estimator.result() == batch

    def test_fixed_size_state_stays_bounded_on_a_long_stream(self):
        # The per-tenant constant-memory claim the service leans on: a
        # stream whose footprint grows without bound must not grow the
        # estimator.  One million refs over ~a million distinct blocks.
        estimator = ShardsEstimator(LINE, max_blocks=256, seed=0)
        peak = 0
        for i in range(200):
            addrs = np.arange(5000, dtype=np.int64) * (LINE * 7919) + (
                i * 31337 * LINE
            )
            estimator.feed(addrs)
            peak = max(peak, estimator.state_entries())
        assert estimator.sampled_blocks <= 256
        assert peak < 80 * 256, f"state grew to {peak} entries"

    def test_estimator_rejects_bad_modes(self):
        with pytest.raises(ValueError):
            ShardsEstimator(LINE)
        with pytest.raises(ValueError):
            ShardsEstimator(LINE, rate=0.5, max_blocks=4)
        with pytest.raises(ValueError):
            ShardsEstimator(LINE, rate=1.5)
        with pytest.raises(ValueError):
            ShardsEstimator(LINE, max_blocks=0)
        with pytest.raises(ValueError):
            ShardsEstimator(63, max_blocks=4)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_check_mode_passes(self, capsys):
        rc = mrc_main(
            ["gcc", "--n-refs", "8000", "--check", "--sizes", "1,4,16"]
        )
        assert rc == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_json_output_with_decomposition(self, capsys):
        rc = mrc_main(
            ["go", "--n-refs", "6000", "--assoc", "2", "--json"]
        )
        assert rc == 0
        (entry,) = json.loads(capsys.readouterr().out)
        assert entry["workload"] == "go"
        assert entry["exact"]
        assert len(entry["decomposition"]) == len(entry["points"])

    def test_check_incompatible_with_sampling(self, capsys):
        rc = mrc_main(["gcc", "--check", "--rate", "0.1"])
        assert rc == 2


# ----------------------------------------------------------------------
# Harness and observability integration
# ----------------------------------------------------------------------
class TestIntegration:
    def test_mrc_cells_are_registered(self):
        from repro.harness.cells import VARIANTS, expand_cells

        assert "mrc" in VARIANTS and "mrc_sampled" in VARIANTS
        ids = [c.cell_id for c in expand_cells(["mrc", "mrc_sampled"])]
        assert ids == ["mrc.main", "mrc_sampled.main"]

    def test_ticker_inactive_without_event_log(self):
        from repro.obs import events as obs_events
        from repro.obs.mrc_events import mrc_ticker

        obs_events.deactivate()
        assert (
            mrc_ticker(bench="gcc", mode="exact", refs=10, sizes_lines=[4])
            is None
        )

    def test_ticker_events_validate_and_reconcile(self, tmp_path):
        from repro.obs import events as obs_events
        from repro.obs.config import ObsConfig
        from repro.obs.mrc_events import mrc_ticker
        from repro.obs.validate import reconcile_events, validate_lines

        path = tmp_path / "events.jsonl"
        obs_events.activate(ObsConfig(events_path=str(path)), cell="mrc.main")
        try:
            ticker = mrc_ticker(
                bench="gcc", mode="exact", refs=100, sizes_lines=[4, 8]
            )
            assert ticker is not None
            ticker.begin()
            ticker.point(size_lines=4, misses=40, miss_ratio=0.4)
            ticker.point(size_lines=8, misses=20, miss_ratio=0.2)
            ticker.finish()
        finally:
            obs_events.deactivate()

        events, problems = validate_lines(path.read_text().splitlines())
        assert problems == []
        kinds = [e["type"] for e in events]
        assert kinds == ["mrc_start", "mrc_point", "mrc_point", "mrc_end"]
        reconciled, issues = reconcile_events(events)
        assert issues == []
        assert reconciled == 1
