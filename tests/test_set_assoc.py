"""Unit tests for the set-associative cache."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.replacement import FIFOReplacement
from repro.cache.set_assoc import SetAssociativeCache


class TestBasicHitMiss:
    def test_first_access_misses_then_hits(self, tiny):
        c = SetAssociativeCache(tiny)
        assert not c.access(0x1000).hit
        assert c.access(0x1000).hit

    def test_same_line_different_word_hits(self, tiny):
        c = SetAssociativeCache(tiny)
        c.access(0x1000)
        assert c.access(0x1038).hit

    def test_next_line_misses(self, tiny):
        c = SetAssociativeCache(tiny)
        c.access(0x1000)
        assert not c.access(0x1040).hit

    def test_stats_count_hits_and_misses(self, tiny):
        c = SetAssociativeCache(tiny)
        c.access(0x1000)
        c.access(0x1000)
        c.access(0x2000)
        assert c.stats.accesses == 3
        assert c.stats.hits == 1
        assert c.stats.misses == 2

    def test_probe_does_not_mutate(self, tiny):
        c = SetAssociativeCache(tiny)
        assert not c.probe(0x1000)
        assert c.stats.accesses == 0
        c.access(0x1000)
        assert c.probe(0x1000)
        assert c.stats.accesses == 1


class TestConflictBehaviour:
    def test_direct_mapped_ping_pong(self, tiny):
        c = SetAssociativeCache(tiny)
        a, b = 0x1000, 0x1000 + tiny.size
        assert tiny.set_index(a) == tiny.set_index(b)
        c.access(a)
        out = c.access(b)
        assert not out.hit
        assert out.evicted is not None
        assert out.evicted.tag == tiny.tag(a)
        assert not c.access(a).hit  # a was evicted

    def test_two_way_holds_both(self, tiny2way):
        c = SetAssociativeCache(tiny2way)
        a, b = 0x1000, 0x1000 + tiny2way.size
        c.access(a)
        c.access(b)
        assert c.access(a).hit
        assert c.access(b).hit

    def test_lru_eviction_order_in_set(self, tiny2way):
        c = SetAssociativeCache(tiny2way)
        s = tiny2way.size
        a, b, d = 0x1000, 0x1000 + s, 0x1000 + 2 * s
        c.access(a)
        c.access(b)
        c.access(a)  # a is now MRU
        c.access(d)  # evicts b
        assert c.probe(a)
        assert not c.probe(b)
        assert c.probe(d)


class TestFillAndLookup:
    def test_lookup_does_not_allocate(self, tiny):
        c = SetAssociativeCache(tiny)
        out = c.lookup(0x1000)
        assert not out.hit
        assert not c.probe(0x1000)

    def test_fill_installs(self, tiny):
        c = SetAssociativeCache(tiny)
        c.fill(0x1000)
        assert c.probe(0x1000)

    def test_fill_resident_raises(self, tiny):
        c = SetAssociativeCache(tiny)
        c.fill(0x1000)
        with pytest.raises(ValueError, match="duplicate"):
            c.fill(0x1008)  # same line

    def test_fill_carries_conflict_bit(self, tiny):
        c = SetAssociativeCache(tiny)
        c.fill(0x1000, conflict_bit=True)
        assert c.peek_line(0x1000).conflict_bit

    def test_write_sets_dirty_and_counts_writeback(self, tiny):
        c = SetAssociativeCache(tiny)
        c.access(0x1000, write=True)
        assert c.peek_line(0x1000).dirty
        c.access(0x1000 + tiny.size)  # evicts dirty line
        assert c.stats.writebacks == 1

    def test_victim_preview_matches_actual_eviction(self, tiny2way):
        c = SetAssociativeCache(tiny2way)
        s = tiny2way.size
        c.access(0x1000)
        c.access(0x1000 + s)
        preview = c.victim_preview(0x1000 + 2 * s)
        evicted = c.fill(0x1000 + 2 * s).evicted
        assert preview is not None and evicted is not None
        assert preview.tag == evicted.tag

    def test_fill_returns_the_filled_way(self, tiny2way):
        c = SetAssociativeCache(tiny2way)
        s = tiny2way.size
        for addr in (0x1000, 0x1000 + s, 0x1000 + 2 * s):
            filled = c.fill(addr)
            assert filled.way == c.find_way(addr)
        # The third fill displaced the LRU line; the snapshot rides along.
        assert c.fill(0x1000 + 3 * s).evicted is not None

    def test_access_way_reports_the_filled_way(self, tiny2way):
        """Regression: access() must report the way fill() chose without
        re-scanning the set (the way has to match find_way's answer)."""
        c = SetAssociativeCache(tiny2way)
        s = tiny2way.size
        for addr in (0x2000, 0x2000 + s, 0x2000 + 2 * s, 0x2000 + 3 * s):
            out = c.access(addr)
            assert not out.hit
            assert out.way == c.find_way(addr)
            assert out.way is not None

    def test_victim_preview_none_when_set_has_room(self, tiny):
        c = SetAssociativeCache(tiny)
        assert c.victim_preview(0x1000) is None

    def test_invalidate_removes_without_evict_hook(self, tiny):
        hook_calls = []
        c = SetAssociativeCache(tiny, on_evict=lambda i, e: hook_calls.append(e))
        c.access(0x1000)
        snap = c.invalidate(0x1000)
        assert snap is not None and snap.tag == tiny.tag(0x1000)
        assert not c.probe(0x1000)
        assert hook_calls == []

    def test_invalidate_missing_returns_none(self, tiny):
        c = SetAssociativeCache(tiny)
        assert c.invalidate(0x1000) is None


class TestEvictionHook:
    def test_hook_receives_set_and_snapshot(self, tiny):
        calls = []
        c = SetAssociativeCache(tiny, on_evict=lambda i, e: calls.append((i, e)))
        a = 0x1000
        b = a + tiny.size
        c.access(a)
        c.access(b)
        assert len(calls) == 1
        index, evicted = calls[0]
        assert index == tiny.set_index(a)
        assert evicted.tag == tiny.tag(a)

    def test_no_hook_on_fill_into_empty_way(self, tiny):
        calls = []
        c = SetAssociativeCache(tiny, on_evict=lambda i, e: calls.append(e))
        c.access(0x1000)
        c.access(0x1040)  # different set of the 4-set cache
        assert calls == []


class TestIntrospection:
    def test_occupancy_and_resident_blocks(self, tiny):
        c = SetAssociativeCache(tiny)
        c.access(0x1000)
        c.access(0x2040)
        assert c.occupancy() == 2
        blocks = set(c.resident_blocks())
        assert blocks == {0x1000, 0x2040}

    def test_flush(self, tiny):
        c = SetAssociativeCache(tiny)
        c.access(0x1000)
        c.flush()
        assert c.occupancy() == 0
        assert not c.probe(0x1000)

    def test_set_conflict_bit(self, tiny):
        c = SetAssociativeCache(tiny)
        c.access(0x1000)
        assert c.set_conflict_bit(0x1000, True)
        assert c.peek_line(0x1000).conflict_bit
        assert not c.set_conflict_bit(0x9000, True)

    def test_fifo_policy_is_used(self):
        g = CacheGeometry(size=256, assoc=2, line_size=64)
        c = SetAssociativeCache(g, policy=FIFOReplacement())
        s = g.size
        a, b, d = 0x1000, 0x1000 + s, 0x1000 + 2 * s
        c.access(a)
        c.access(b)
        c.access(a)  # touch a; FIFO ignores it
        c.access(d)  # evicts a (oldest fill)
        assert not c.probe(a)
        assert c.probe(b)


class TestCapacityBehaviour:
    def test_full_cache_capacity_misses(self, tiny):
        c = SetAssociativeCache(tiny)
        lines = tiny.num_lines
        for i in range(lines * 2):
            c.access(0x1000 + i * tiny.line_size)
        assert c.occupancy() == lines
