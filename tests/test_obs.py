"""Tests for the observability layer (repro.obs).

Covers the acceptance criteria of the obs subsystem:

* ``events.jsonl`` lines are schema-versioned and validate;
* replaying a simulation's ``counters`` deltas reproduces its final
  snapshot — and the final ``SystemStats.as_dict()`` — exactly;
* enabling metrics does not change simulation statistics at all;
* tracing spans (cell/attempt/backoff/checkpoint) land in the report;
* the harness emits events from isolated workers and inline cells alike;
* the validator CLI passes good streams and fails corrupted ones;
* the runner CLI rejects inconsistent observability flag combinations.
"""

import json

import pytest

from repro.experiments.base import ExperimentParams
from repro.experiments.runner import main as runner_main
from repro.harness.cells import CellSpec, FaultInjection
from repro.harness.checkpoint import RunDirectory
from repro.harness.executor import HarnessConfig, run_cells
from repro.obs import events as obs_events
from repro.obs.config import ObsConfig
from repro.obs.events import EVENT_SCHEMA, EventLog
from repro.obs.heartbeat import sim_ticker
from repro.obs.metrics import (
    accumulate_deltas,
    diff_counters,
    flatten_counters,
    reconcile,
    unflatten_counters,
)
from repro.obs.profiler import maybe_profile, profile_path
from repro.obs.spans import NULL_TRACER, Span, Tracer
from repro.obs.validate import main as validate_main
from repro.obs.validate import reconcile_events, validate_lines
from repro.system.policies import BASELINE
from repro.system.simulator import simulate
from repro.workloads.spec_analogs import build

TINY = ExperimentParams(n_refs=4_000, warmup=1_000, suite=["gcc"])
FAST = HarnessConfig(retries=1, backoff_s=0.0)
FAST_INLINE = HarnessConfig(retries=1, backoff_s=0.0, isolate=False)


@pytest.fixture(autouse=True)
def _obs_deactivated():
    """Every test starts and ends with observability off."""
    obs_events.deactivate()
    yield
    obs_events.deactivate()


def read_events(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


# ----------------------------------------------------------------------
# ObsConfig
# ----------------------------------------------------------------------
class TestObsConfig:
    def test_default_is_fully_disabled(self):
        config = ObsConfig()
        assert not config.metrics
        assert not config.enabled

    def test_metrics_follows_events_path(self, tmp_path):
        config = ObsConfig(events_path=str(tmp_path / "events.jsonl"))
        assert config.metrics and config.enabled

    def test_trace_or_profile_alone_enable(self, tmp_path):
        assert ObsConfig(trace=True).enabled
        assert ObsConfig(profile_dir=str(tmp_path)).enabled

    def test_negative_heartbeat_rejected(self):
        with pytest.raises(ValueError, match="heartbeat_every"):
            ObsConfig(heartbeat_every=-1)


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------
class TestEventLog:
    def test_emit_stamps_schema_ts_pid_cell(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, cell="fig1.main") as log:
            log.emit("run_start", params={}, cells=[], jobs=1)
        (event,) = read_events(path)
        assert event["schema"] == EVENT_SCHEMA
        assert event["type"] == "run_start"
        assert event["cell"] == "fig1.main"
        assert isinstance(event["ts"], float) and isinstance(event["pid"], int)

    def test_unknown_type_rejected(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        with pytest.raises(ValueError, match="unknown event type"):
            log.emit("bogus")

    def test_lazy_open_leaves_no_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        EventLog(path).close()
        assert not path.exists()

    def test_appends_across_instances(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for ok in (True, False):
            with EventLog(path) as log:
                log.emit("run_end", summary={}, ok=ok)
        assert [e["ok"] for e in read_events(path)] == [True, False]

    def test_activation_state_roundtrip(self, tmp_path):
        config = ObsConfig(
            events_path=str(tmp_path / "events.jsonl"), heartbeat_every=7
        )
        state = obs_events.snapshot_state()
        obs_events.activate(config, cell="c1")
        assert obs_events.active_log() is not None
        assert obs_events.heartbeat_every() == 7
        obs_events.deactivate()
        obs_events.restore_state(state)
        assert obs_events.active_log() is None
        assert obs_events.heartbeat_every() == 0


# ----------------------------------------------------------------------
# Counter flattening / deltas / reconciliation
# ----------------------------------------------------------------------
class TestMetrics:
    NESTED = {"l1": {"hits": 3, "misses": 1}, "memory_accesses": 4}

    def test_flatten_and_unflatten_roundtrip(self):
        flat = flatten_counters(self.NESTED)
        assert flat == {"l1.hits": 3, "l1.misses": 1, "memory_accesses": 4}
        assert unflatten_counters(flat) == self.NESTED

    def test_flatten_keys_sorted(self):
        assert list(flatten_counters({"b": 1, "a": {"z": 2, "y": 3}})) == [
            "a.y",
            "a.z",
            "b",
        ]

    def test_non_numeric_counter_rejected(self):
        with pytest.raises(TypeError, match="name"):
            flatten_counters({"name": "gcc"})
        with pytest.raises(TypeError):
            flatten_counters({"flag": True})

    def test_diff_drops_zero_deltas(self):
        delta = diff_counters({"a": 5, "b": 2}, {"a": 5, "b": 1})
        assert delta == {"b": 1}

    def test_diff_treats_missing_as_zero(self):
        assert diff_counters({"a": 5}, {}) == {"a": 5}

    def test_accumulate_and_reconcile_exact(self):
        deltas = [{"a": 1}, {"a": 2, "b": 3}]
        assert accumulate_deltas(deltas) == {"a": 3, "b": 3}
        assert reconcile(deltas, {"a": 3, "b": 3, "zero": 0}) == []

    def test_reconcile_reports_mismatch_and_orphans(self):
        problems = reconcile([{"a": 1, "ghost": 2}], {"a": 3})
        assert any("a: replayed 1" in p for p in problems)
        assert any("ghost" in p for p in problems)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_parent_child_ids(self):
        tracer = Tracer("cell0")
        with tracer.span("cell") as root:
            with tracer.span("attempt", attempt=1) as child:
                pass
        assert child.parent_id == root.span_id
        assert root.parent_id is None
        assert root.span_id.startswith("cell0:")

    def test_finished_in_completion_order_with_durations(self):
        tracer = Tracer("t")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [s["name"] for s in tracer.to_dicts()]
        assert names == ["inner", "outer"]
        for s in tracer.to_dicts():
            assert s["duration_s"] >= 0
            assert s["end_ts"] >= s["start_ts"]

    def test_attrs_and_set(self):
        tracer = Tracer("t")
        with tracer.span("attempt", attempt=2) as span:
            span.set(outcome="ok")
        (d,) = tracer.to_dicts()
        assert d["attrs"] == {"attempt": 2, "outcome": "ok"}

    def test_span_closes_even_on_exception(self):
        tracer = Tracer("t")
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        (d,) = tracer.to_dicts()
        assert d["name"] == "boom" and d["end_ts"] is not None

    def test_on_finish_callback(self):
        finished = []
        tracer = Tracer("t", on_finish=finished.append)
        with tracer.span("a"):
            pass
        assert [s.name for s in finished] == ["a"]
        assert isinstance(finished[0], Span)

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", k=1) as span:
            span.set(more=2)
        assert NULL_TRACER.to_dicts() == []


# ----------------------------------------------------------------------
# Simulation heartbeats + exact replay
# ----------------------------------------------------------------------
class TestSimTicker:
    def test_ticker_none_when_metrics_off(self):
        assert sim_ticker(bench="b", policy="p", refs=10, warmup=0) is None

    def _run_with_obs(self, tmp_path, heartbeat_every):
        path = tmp_path / "events.jsonl"
        trace = build("gcc", 3_000, 0)
        obs_events.activate(
            ObsConfig(events_path=str(path), heartbeat_every=heartbeat_every)
        )
        stats = simulate(trace, BASELINE, warmup=500)
        obs_events.deactivate()
        return path, trace, stats

    def test_metrics_do_not_change_statistics(self, tmp_path):
        path, trace, with_obs = self._run_with_obs(tmp_path, heartbeat_every=512)
        baseline = simulate(trace, BASELINE, warmup=500)
        assert with_obs.as_dict() == baseline.as_dict()

    def test_events_validate_and_reconcile(self, tmp_path):
        path, _, stats = self._run_with_obs(tmp_path, heartbeat_every=512)
        events, problems = validate_lines(path.read_text().splitlines())
        assert problems == []
        sims, problems = reconcile_events(events)
        assert (sims, problems) == (1, [])
        # The sim_end final snapshot IS the run's SystemStats, flattened.
        (final,) = [e["final"] for e in events if e["type"] == "sim_end"]
        assert final == flatten_counters(stats.as_dict())

    def test_heartbeats_carry_progress_and_rates(self, tmp_path):
        path, trace, _ = self._run_with_obs(tmp_path, heartbeat_every=512)
        beats = [e for e in read_events(path) if e["type"] == "heartbeat"]
        measured = len(trace) - 500
        assert len(beats) == measured // 512
        assert [b["refs_done"] for b in beats] == [
            512 * i for i in range(1, len(beats) + 1)
        ]
        for b in beats:
            assert b["refs_per_sec"] > 0
            assert 0.0 <= b["l1_hit_rate"] <= 100.0
            assert 0.0 <= b["mct_conflict_share"] <= 100.0

    def test_no_heartbeats_when_cadence_zero(self, tmp_path):
        path, _, _ = self._run_with_obs(tmp_path, heartbeat_every=0)
        types = [e["type"] for e in read_events(path)]
        assert "heartbeat" not in types
        # Still exactly one closing delta plus the final snapshot.
        assert types.count("counters") == 1 and types.count("sim_end") == 1

    def test_accuracy_ticker_reconciles(self, tmp_path):
        from repro.cache.geometry import CacheGeometry
        from repro.core.accuracy import measure_accuracy

        path = tmp_path / "events.jsonl"
        trace = build("gcc", 3_000, 0)
        obs_events.activate(
            ObsConfig(events_path=str(path), heartbeat_every=700)
        )
        measure_accuracy(
            trace.addresses.tolist(), CacheGeometry(size=16 * 1024, assoc=1)
        )
        obs_events.deactivate()
        events, problems = validate_lines(path.read_text().splitlines())
        assert problems == []
        assert reconcile_events(events) == (1, [])
        (start,) = [e for e in events if e["type"] == "sim_start"]
        assert start["bench"] == "accuracy"
        beats = [e for e in events if e["type"] == "heartbeat"]
        assert beats and all(0.0 <= b["overall_accuracy"] <= 100.0 for b in beats)


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_profile_path_sanitises_cell_id(self, tmp_path):
        path = profile_path(tmp_path, "fig3/odd id", 2)
        assert path.parent == tmp_path and path.suffix == ".prof"
        assert "/" not in path.name.replace(".prof", "")

    def test_maybe_profile_disabled_is_noop(self, tmp_path):
        with maybe_profile(None, "c", 1):
            pass
        with maybe_profile(ObsConfig(), "c", 1):
            pass
        assert list(tmp_path.iterdir()) == []

    def test_maybe_profile_writes_artifact(self, tmp_path):
        import pstats

        config = ObsConfig(profile_dir=str(tmp_path / "profiles"))
        with maybe_profile(config, "cell.x", 1):
            sum(range(1000))
        path = profile_path(tmp_path / "profiles", "cell.x", 1)
        assert path.is_file()
        pstats.Stats(str(path))  # parseable


# ----------------------------------------------------------------------
# Harness integration
# ----------------------------------------------------------------------
class TestHarnessIntegration:
    CELL = [CellSpec("table1", "main")]

    def _obs(self, tmp_path, **overrides):
        defaults = dict(
            events_path=str(tmp_path / "events.jsonl"),
            trace=True,
            heartbeat_every=1_000,
        )
        defaults.update(overrides)
        return ObsConfig(**defaults)

    @pytest.mark.parametrize("config", [FAST, FAST_INLINE], ids=["isolated", "inline"])
    def test_events_and_spans_from_both_modes(self, tmp_path, config):
        obs = self._obs(tmp_path)
        report = run_cells(self.CELL, TINY, config, obs_config=obs)
        assert report.ok
        events, problems = validate_lines(
            (tmp_path / "events.jsonl").read_text().splitlines()
        )
        assert problems == []
        sims, problems = reconcile_events(events)
        assert problems == [] and sims > 0
        types = {e["type"] for e in events}
        assert {"run_start", "run_end", "sim_start", "sim_end", "span"} <= types
        # Worker-side events carry the cell id.
        assert all(
            e["cell"] == "table1.main" for e in events if e["type"] == "sim_start"
        )
        # Spans attached to the report: root cell span + attempt + children.
        (cell_report,) = report.cells
        names = [s["name"] for s in cell_report.spans]
        assert "cell" in names and "attempt" in names

    def test_retry_and_backoff_spans(self, tmp_path):
        obs = self._obs(tmp_path, events_path=None, heartbeat_every=0)
        inject = FaultInjection.parse("table1.main:flaky:1")
        report = run_cells(self.CELL, TINY, FAST, inject=inject, obs_config=obs)
        (cell_report,) = report.cells
        assert cell_report.status.value == "RETRIED"
        names = [s["name"] for s in cell_report.spans]
        assert names.count("attempt") == 2 and "backoff" in names
        attempts = [s for s in cell_report.spans if s["name"] == "attempt"]
        assert [a["attrs"]["outcome"] for a in attempts] == ["error", "ok"]

    def test_checkpoint_span_and_report_json(self, tmp_path):
        rd = RunDirectory(tmp_path / "run")
        rd.prepare(TINY, resume=False)
        obs = self._obs(tmp_path / "run")
        run_cells(self.CELL, TINY, FAST, run_dir=rd, obs_config=obs)
        saved = json.loads(rd.report_path.read_text())
        (cell,) = saved["cells"]
        assert "checkpoint" in [s["name"] for s in cell["spans"]]
        # Spans were also forwarded as events (metrics + trace together).
        events = read_events(tmp_path / "run" / "events.jsonl")
        span_names = [e["name"] for e in events if e["type"] == "span"]
        assert "checkpoint" in span_names and "cell" in span_names

    def test_no_spans_key_when_tracing_off(self, tmp_path):
        obs = self._obs(tmp_path, trace=False)
        report = run_cells(self.CELL, TINY, FAST, obs_config=obs)
        (cell_report,) = report.cells
        assert cell_report.spans is None
        assert "spans" not in cell_report.to_dict()

    def test_profile_artifacts_named_by_attempt(self, tmp_path):
        # An injected fault aborts attempt 1 before any profiled work, so
        # the only artifact is the succeeding attempt's — and its name
        # records which attempt it was.
        obs = ObsConfig(profile_dir=str(tmp_path / "profiles"))
        inject = FaultInjection.parse("table1.main:flaky:1")
        report = run_cells(self.CELL, TINY, FAST, inject=inject, obs_config=obs)
        assert report.ok
        names = sorted(p.name for p in (tmp_path / "profiles").iterdir())
        assert names == ["table1.main.attempt2.prof"]

    def test_obs_none_emits_nothing(self, tmp_path):
        report = run_cells(self.CELL, TINY, FAST_INLINE)
        assert report.ok
        assert list(tmp_path.iterdir()) == []
        assert obs_events.active_log() is None


# ----------------------------------------------------------------------
# Validator CLI
# ----------------------------------------------------------------------
class TestValidatorCLI:
    def _good_stream(self, tmp_path):
        path = tmp_path / "events.jsonl"
        trace = build("gcc", 2_000, 0)
        obs_events.activate(
            ObsConfig(events_path=str(path), heartbeat_every=500)
        )
        simulate(trace, BASELINE)
        obs_events.deactivate()
        return path

    def test_good_stream_passes(self, tmp_path, capsys):
        path = self._good_stream(tmp_path)
        assert validate_main([str(path), "--reconcile"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "reconciled exactly" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert validate_main([str(tmp_path / "nope.jsonl")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_corrupt_json_fails(self, tmp_path, capsys):
        path = self._good_stream(tmp_path)
        path.write_text(path.read_text() + "{not json\n")
        assert validate_main([str(path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_wrong_schema_fails(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps({"schema": 99, "type": "run_end"}) + "\n")
        assert validate_main([str(path)]) == 1
        assert "schema" in capsys.readouterr().err

    def test_missing_required_field_fails(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps({"schema": EVENT_SCHEMA, "type": "heartbeat", "sim": "s"})
            + "\n"
        )
        assert validate_main([str(path)]) == 1
        assert "missing field" in capsys.readouterr().err

    def test_truncated_sim_fails_reconcile(self, tmp_path, capsys):
        path = self._good_stream(tmp_path)
        kept = [
            line
            for line in path.read_text().splitlines()
            if json.loads(line)["type"] != "sim_end"
        ]
        path.write_text("\n".join(kept) + "\n")
        assert validate_main([str(path), "--reconcile"]) == 1
        assert "truncated" in capsys.readouterr().err

    def test_tampered_counter_fails_reconcile(self, tmp_path, capsys):
        path = self._good_stream(tmp_path)
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            event = json.loads(line)
            if event["type"] == "counters":
                key = sorted(event["delta"])[0]
                event["delta"][key] += 1
                lines[i] = json.dumps(event, sort_keys=True)
                break
        path.write_text("\n".join(lines) + "\n")
        assert validate_main([str(path), "--reconcile"]) == 1
        assert "replayed" in capsys.readouterr().err


class TestServiceSessionReconcile:
    """Service streams (session_open/batch/answer/session_close)."""

    def _session_events(self, sid="s1", batches=2, answers=1, closed=True):
        events = [
            {
                "type": "session_open",
                "session": sid,
                "tenant": "t0",
                "cache_kb": 16,
                "max_blocks": 128,
            }
        ]
        for _ in range(batches):
            events.append({"type": "batch", "session": sid, "refs": 100})
        for _ in range(answers):
            events.append({"type": "answer", "session": sid, "what": "verdict"})
        if closed:
            events.append(
                {
                    "type": "session_close",
                    "session": sid,
                    "refs": 100 * batches,
                    "batches": batches,
                    "answers": answers,
                    "reason": "client",
                }
            )
        return events

    def test_complete_session_reconciles(self):
        assert reconcile_events(self._session_events()) == (1, [])

    def test_open_without_close_rejected(self):
        _, problems = reconcile_events(self._session_events(closed=False))
        assert problems == [
            "session s1: session_open without session_close "
            "(service died mid-session?)"
        ]

    def test_orphan_events_rejected(self):
        _, problems = reconcile_events(self._session_events()[1:])
        assert any("without session_open" in p for p in problems)

    def test_close_totals_must_match_stream(self):
        events = self._session_events(batches=3, answers=2)
        # Drop one batch and one answer: the close now over-claims.
        events.remove({"type": "batch", "session": "s1", "refs": 100})
        events.remove({"type": "answer", "session": "s1", "what": "verdict"})
        _, problems = reconcile_events(events)
        assert any("claims 3 batch(es), stream has 2" in p for p in problems)
        assert any("claims 2 answer(s), stream has 1" in p for p in problems)

    def test_truncated_service_stream_fails_cli(self, tmp_path, capsys):
        # The acceptance case: a service killed mid-session leaves opens
        # with no close, and `--reconcile` must reject the stream.
        path = tmp_path / "events.jsonl"
        lines = [
            json.dumps({"schema": EVENT_SCHEMA, "ts": 0.0, "pid": 1, **event})
            for event in self._session_events(closed=False)
        ]
        path.write_text("\n".join(lines) + "\n")
        assert validate_main([str(path), "--reconcile"]) == 1
        assert "session_open without session_close" in capsys.readouterr().err

    def test_truncated_stream_still_passes_without_reconcile(self, tmp_path):
        # Schema validation alone accepts the events (they are all
        # well-formed); only reconciliation sees the missing close.
        path = tmp_path / "events.jsonl"
        lines = [
            json.dumps({"schema": EVENT_SCHEMA, "ts": 0.0, "pid": 1, **event})
            for event in self._session_events(closed=False)
        ]
        path.write_text("\n".join(lines) + "\n")
        assert validate_main([str(path)]) == 0


# ----------------------------------------------------------------------
# Runner CLI flags
# ----------------------------------------------------------------------
class TestRunnerCLI:
    def test_metrics_requires_run_dir(self, capsys):
        with pytest.raises(SystemExit):
            runner_main(["table1", "--metrics"])
        assert "--metrics needs --run-dir" in capsys.readouterr().err

    def test_profile_requires_run_dir(self, capsys):
        with pytest.raises(SystemExit):
            runner_main(["table1", "--profile"])
        assert "--profile needs --run-dir" in capsys.readouterr().err

    def test_heartbeat_requires_metrics(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            runner_main(
                ["table1", "--run-dir", str(tmp_path), "--heartbeat-every", "100"]
            )
        assert "--heartbeat-every needs --metrics" in capsys.readouterr().err

    def test_negative_heartbeat_rejected(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            runner_main(
                [
                    "table1",
                    "--run-dir",
                    str(tmp_path),
                    "--metrics",
                    "--heartbeat-every",
                    "-5",
                ]
            )

    def test_fresh_run_truncates_stale_events(self, tmp_path, capsys):
        stale = tmp_path / "events.jsonl"
        tmp_path.mkdir(exist_ok=True)
        stale.write_text("stale line\n")
        code = runner_main(
            [
                "table1",
                "--quick",
                "--suite",
                "gcc",
                "--refs",
                "4000",
                "--warmup",
                "1000",
                "--run-dir",
                str(tmp_path),
                "--metrics",
                "--trace",
                "--jobs",
                "1",
            ]
        )
        assert code == 0
        lines = stale.read_text().splitlines()
        assert "stale line" not in lines
        events, problems = validate_lines(lines)
        assert problems == []
        assert {e["type"] for e in events} >= {"run_start", "run_end"}
        report = json.loads((tmp_path / "report.json").read_text())
        assert all("spans" in c for c in report["cells"])


# ----------------------------------------------------------------------
# Bench tracing
# ----------------------------------------------------------------------
class TestBenchTracing:
    def test_single_cell_iteration_spans(self):
        from repro.harness.bench import measure_single_cell

        tracer = Tracer("bench")
        measure_single_cell(2_000, 500, 0, repeats=2, tracer=tracer)
        spans = tracer.to_dicts()
        assert [s["name"] for s in spans] == ["bench.iteration"] * 2
        assert [s["attrs"]["repeat"] for s in spans] == [1, 2]
        assert all(s["attrs"]["seconds"] >= 0 for s in spans)


# ----------------------------------------------------------------------
# Schema drift: the validator and emitter enforce one contract
# ----------------------------------------------------------------------
class TestSchemaDrift:
    """An event name absent from either schema side must fail hard.

    Before this regression suite, a type present in ``EVENT_TYPES`` but
    missing from ``REQUIRED_FIELDS`` crashed ``validate_lines`` with a
    KeyError instead of failing the stream with a diagnostic — the
    static obs-schema checker (RPR030-032) and the runtime validator now
    enforce the same contract from both sides.
    """

    def test_event_types_and_required_fields_agree(self):
        from repro.obs.events import EVENT_TYPES
        from repro.obs.validate import REQUIRED_FIELDS, schema_drift

        assert set(REQUIRED_FIELDS) == set(EVENT_TYPES)
        assert schema_drift() == []

    def test_type_known_to_emitter_but_not_validator_fails_cleanly(
        self, monkeypatch
    ):
        from repro.obs import events as events_mod
        from repro.obs import validate as validate_mod

        monkeypatch.setattr(
            events_mod,
            "EVENT_TYPES",
            frozenset(events_mod.EVENT_TYPES | {"future_event"}),
        )
        monkeypatch.setattr(
            validate_mod,
            "EVENT_TYPES",
            frozenset(validate_mod.EVENT_TYPES | {"future_event"}),
        )
        line = json.dumps(
            {"schema": EVENT_SCHEMA, "type": "future_event", "ts": 0.0, "pid": 1}
        )
        events, problems = validate_mod.validate_lines([line])
        assert events == []
        assert len(problems) == 1 and "absent from schema" in problems[0]

    def test_cli_exits_nonzero_on_drifted_schema(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.obs import validate as validate_mod

        monkeypatch.setattr(
            validate_mod,
            "EVENT_TYPES",
            frozenset(validate_mod.EVENT_TYPES | {"future_event"}),
        )
        path = tmp_path / "events.jsonl"
        path.write_text("")
        assert validate_main([str(path)]) == 1
        assert "schema drift" in capsys.readouterr().err

    def test_unknown_event_name_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps(
                {"schema": EVENT_SCHEMA, "type": "bogus", "ts": 0.0, "pid": 1}
            )
            + "\n"
        )
        assert validate_main([str(path)]) == 1
        assert "absent from schema" in capsys.readouterr().err
