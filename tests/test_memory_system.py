"""Integration-level tests for the policy-configurable memory system."""

import pytest

from repro.buffers import amb, exclusion, prefetch, victim
from repro.cache.line import BufferRole
from repro.system.config import MachineConfig, PAPER_MACHINE
from repro.system.memory_system import MemorySystem
from repro.system.policies import AssistConfig, BASELINE, ExclusionMode
from repro.workloads.trace import Trace

L1_SIZE = PAPER_MACHINE.l1.size


def run(system: MemorySystem, addresses, gap=3):
    for addr in addresses:
        system.access(addr, gap=gap)
    return system.finish()


class TestBaseline:
    def test_no_buffer_counts_only_caches(self):
        sys = MemorySystem(BASELINE)
        stats = run(sys, [0x1000, 0x1000, 0x2000])
        assert stats.l1.accesses == 3
        assert stats.l1.hits == 1
        assert stats.buffer.hits == 0
        assert sys.buffer is None

    def test_l2_catches_l1_evictions(self):
        sys = MemorySystem(BASELINE)
        a, b = 0x100000, 0x100000 + L1_SIZE
        stats = run(sys, [a, b, a, b, a])
        # After the two cold misses every access misses L1 but hits L2.
        assert stats.l2.accesses == 5
        assert stats.l2.hits == 3
        assert stats.memory_accesses == 2

    def test_classification_counters(self):
        sys = MemorySystem(BASELINE)
        a, b = 0x100000, 0x100000 + L1_SIZE
        stats = run(sys, [a, b] * 10)
        assert stats.conflict_misses_predicted == 18  # all but 2 cold misses
        assert stats.capacity_misses_predicted == 2


class TestVictimPolicies:
    def test_traditional_victim_catches_ping_pong(self):
        sys = MemorySystem(victim.traditional())
        a, b = 0x100000, 0x100000 + L1_SIZE
        stats = run(sys, [a, b] * 20)
        assert stats.buffer.victim_hits > 30
        assert stats.buffer.swaps > 30  # every victim hit swaps

    def test_no_swap_filter_eliminates_swaps(self):
        sys = MemorySystem(victim.filter_swaps())
        a, b = 0x100000, 0x100000 + L1_SIZE
        stats = run(sys, [a, b] * 20)
        # With swaps filtered, 'a' settles in the buffer and 'b' in L1:
        # every round is one buffer hit plus one L1 hit, and no swaps.
        assert stats.buffer.victim_hits == 19
        assert stats.l1.hits == 19
        assert stats.buffer.swaps == 0

    def test_fill_filter_skips_capacity_evictions(self):
        sys = MemorySystem(victim.filter_fills())
        # Three lines per set (768 = 3x256): the MCT entry never matches
        # the returning line, so every eviction is a capacity event.
        sweep = [0x200000 + i * 64 for i in range(768)]
        stats = run(sys, sweep + sweep)
        assert stats.buffer.fills == 0

    def test_fill_filter_admits_two_deep_sweep(self):
        # Two lines per set is the paper's conflict near-miss by the MCT
        # definition (a 2-way cache would hold both), even though Hill's
        # classic definition calls a 512-line sweep capacity.
        sys = MemorySystem(victim.filter_fills())
        sweep = [0x200000 + i * 64 for i in range(512)]
        stats = run(sys, sweep + sweep + sweep)
        assert stats.buffer.fills > 500

    def test_traditional_fills_on_every_valid_eviction(self):
        sys = MemorySystem(victim.traditional())
        sweep = [0x200000 + i * 64 for i in range(768)]
        stats = run(sys, sweep + sweep)
        assert stats.buffer.fills > 500

    def test_victim_hit_total_rate_beats_baseline(self):
        a, b = 0x100000, 0x100000 + L1_SIZE
        trace = [a, b] * 50
        base = run(MemorySystem(BASELINE), trace)
        with_vc = run(MemorySystem(victim.traditional()), trace)
        assert with_vc.total_hit_rate > base.total_hit_rate + 50


class TestPrefetchPolicies:
    def test_next_line_covers_streaming(self):
        sys = MemorySystem(prefetch.next_line())
        sweep = [0x200000 + i * 64 for i in range(300)]
        stats = run(sys, sweep)
        assert stats.buffer.prefetches_issued > 250
        assert stats.buffer.prefetches_used > 250
        assert stats.buffer.prefetch_hits > 250

    def test_filter_suppresses_conflict_prefetches(self):
        # Twelve ping-pong pairs in different sets: the 8-entry buffer
        # churns, so the unfiltered prefetcher keeps re-issuing on every
        # conflict miss while the filtered one only prefetches cold misses.
        trace = []
        for _ in range(10):
            for i in range(12):
                a = 0x100000 + i * 64
                trace += [a, a + L1_SIZE]
        unfiltered = run(MemorySystem(prefetch.next_line()), trace)
        filtered = run(
            MemorySystem(prefetch.figure4_policies()[4]), trace  # or-conflict
        )
        assert filtered.buffer.prefetches_issued < unfiltered.buffer.prefetches_issued

    def test_random_stream_wastes_prefetches(self):
        import random

        rnd = random.Random(3)
        trace = [0x400000 + rnd.randrange(0, 8192) * 64 for _ in range(800)]
        stats = run(MemorySystem(prefetch.next_line()), trace)
        assert stats.buffer.prefetches_wasted > stats.buffer.prefetches_used

    def test_no_prefetch_when_next_line_resident(self):
        sys = MemorySystem(prefetch.next_line())
        sys.access(0x200040)     # brings line 1 in
        sys.access(0x200000)     # miss line 0; next line already in L1
        stats = sys.finish()
        # Only the first miss's prefetch (of line 2) may be issued.
        assert stats.buffer.prefetches_issued <= 1


class TestExclusionPolicies:
    def test_capacity_bypass_keeps_l1_clean(self):
        sys = MemorySystem(exclusion.exclusion(ExclusionMode.CAPACITY))
        sweep = [0x200000 + i * 64 for i in range(100)]
        stats = run(sys, sweep)
        # Cold streaming misses are all capacity: everything bypasses.
        assert stats.l1.fills == 0
        assert stats.buffer.fills == 100

    def test_conflict_bypass_routes_ping_pong(self):
        sys = MemorySystem(exclusion.exclusion(ExclusionMode.CONFLICT))
        a, b = 0x100000, 0x100000 + L1_SIZE
        stats = run(sys, [a, b] * 20)
        assert stats.buffer.fills > 0
        assert stats.buffer.exclusion_hits > 0

    def test_bypass_buffer_serves_spatial_bursts(self):
        sys = MemorySystem(exclusion.exclusion(ExclusionMode.CAPACITY))
        # 4 word accesses per line, no reuse: bursts hit the bypass buffer.
        trace = []
        for i in range(100):
            base = 0x200000 + i * 64
            trace += [base, base + 8, base + 16, base + 24]
        stats = run(sys, trace)
        assert stats.buffer.exclusion_hits == 300

    def test_mct_install_on_bypass_enables_conflict_detection(self):
        cfg = exclusion.exclusion(ExclusionMode.CAPACITY)
        sys = MemorySystem(cfg)
        a = 0x100000
        sys.access(a)  # capacity miss -> bypassed, tag installed in MCT
        assert sys.mct.classify_is_conflict(a)

    def test_mct_install_ablation(self):
        cfg = AssistConfig(
            name="no-install",
            buffer_entries=16,
            exclusion=ExclusionMode.CAPACITY,
            mct_install_on_bypass=False,
        )
        sys = MemorySystem(cfg)
        sys.access(0x100000)
        assert not sys.mct.classify_is_conflict(0x100000)

    def test_mat_mode_tracks_every_access(self):
        sys = MemorySystem(exclusion.exclusion(ExclusionMode.MAT))
        run(sys, [0x1000, 0x1000, 0x2000])
        assert sys.mat is not None
        assert sys.mat.accesses == 3

    def test_history_mode_builds_table(self):
        sys = MemorySystem(exclusion.exclusion(ExclusionMode.CAPACITY_HISTORY))
        sweep = [0x200000 + i * 64 for i in range(300)]
        stats = run(sys, sweep * 2)
        assert sys.history is not None
        assert stats.buffer.fills > 0  # flagged regions eventually bypass


class TestAMBCombination:
    def test_vict_pref_splits_roles(self):
        sys = MemorySystem(amb.vict_pref())
        a, b = 0x100000, 0x100000 + L1_SIZE
        ping = [a, b] * 20
        sweep = [0x200000 + i * 64 for i in range(200)]
        stats = run(sys, ping + sweep + ping)
        assert stats.buffer.victim_hits > 0
        assert stats.buffer.prefetch_hits > 0

    def test_vic_pre_exc_uses_all_three_roles(self):
        sys = MemorySystem(amb.vic_pre_exc())
        a = 0x100000
        c = a + L1_SIZE  # conflicts with a
        # Churn sets 64+ so the bypass installs don't clobber set 0's
        # MCT entry (where a and c live).
        churn1 = [0x400000 + 0x1000 + i * 128 for i in range(16)]
        churn2 = [0x600000 + 0x1000 + i * 128 for i in range(16)]
        churn3 = [0x800000 + 0x1000 + i * 128 for i in range(16)]
        trace = (
            [a] + churn1 + [a]      # a: bypass, churn out, return as conflict -> L1
            + [c] + churn2 + [c]    # c likewise: conflict fill evicts a -> victim
            + [a]                   # victim-buffer hit
            + churn3
        )
        stats = run(sys, trace)
        assert stats.buffer.victim_hits > 0
        assert stats.buffer.exclusion_hits >= 0
        assert stats.buffer.fills > 20          # bypassed capacity misses
        assert stats.buffer.prefetches_issued > 0

    def test_policy_with_entries_resizes(self):
        p8 = amb.vict_pref(8)
        p16 = p8.with_entries(16)
        assert p16.buffer_entries == 16
        assert p16.name == p8.name
        assert MemorySystem(p16).buffer.capacity == 16


class TestWarmupReset:
    def test_reset_clears_stats_keeps_contents(self):
        sys = MemorySystem(victim.traditional())
        a, b = 0x100000, 0x100000 + L1_SIZE
        for addr in [a, b] * 10:
            sys.access(addr)
        sys.reset_measurement()
        assert sys.stats.l1.accesses == 0
        assert sys.timing.clock == 0.0
        # Contents survive: the next access to a warm line hits.
        sys.access(b)
        assert sys.stats.l1.hits + sys.stats.buffer.hits == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="uses the assist buffer"):
            AssistConfig(name="bad", buffer_entries=0, prefetch=True)
