"""Property-based tests (hypothesis) for the core data structures.

Each property pins an invariant that every mechanism in the paper relies
on: LRU stack inclusion, MCT soundness against a reference model, filter
algebra laws, buffer capacity bounds, trace determinism, and the
hit/miss equivalence of the two fully-associative implementations.
"""

from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro.buffers import amb, exclusion, prefetch, victim
from repro.buffers.assist import AssistBuffer, BufferEntry
from repro.cache.fully_assoc import FullyAssociativeLRU
from repro.cache.geometry import CacheGeometry
from repro.cache.line import BufferRole
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.filters import ALL_FILTERS, ConflictFilter
from repro.core.ground_truth import GroundTruthClassifier
from repro.core.mct import MissClassificationTable
from repro.harness import invariants
from repro.harness.invariants import InvariantViolation, check_system_stats
from repro.system.config import PAPER_MACHINE
from repro.system.simulator import simulate
from repro.workloads.trace import Trace

# Small address universe so collisions are frequent.
blocks = st.integers(min_value=0, max_value=63)
block_lists = st.lists(blocks, min_size=1, max_size=300)

GEO = CacheGeometry(size=1024, assoc=1, line_size=64)  # 16 sets


class TestFullyAssociativeLRUProperties:
    @given(block_lists, st.integers(min_value=1, max_value=16))
    def test_occupancy_never_exceeds_capacity(self, refs, capacity):
        fa = FullyAssociativeLRU(capacity)
        for b in refs:
            fa.access(b)
            assert fa.occupancy() <= capacity

    @given(block_lists, st.integers(min_value=1, max_value=16))
    def test_matches_reference_ordered_dict(self, refs, capacity):
        """FA-LRU hit/miss must match a textbook OrderedDict model."""
        fa = FullyAssociativeLRU(capacity)
        model: "OrderedDict[int, None]" = OrderedDict()
        for b in refs:
            expect_hit = b in model
            if expect_hit:
                model.move_to_end(b)
            else:
                if len(model) >= capacity:
                    model.popitem(last=False)
                model[b] = None
            hit, _ = fa.access(b)
            assert hit == expect_hit

    @given(block_lists)
    def test_inclusion_bigger_cache_hits_superset(self, refs):
        """LRU stack property: a hit in a k-entry LRU implies a hit in any
        larger LRU cache on the same reference stream."""
        small = FullyAssociativeLRU(4)
        large = FullyAssociativeLRU(8)
        for b in refs:
            small_hit, _ = small.access(b)
            large_hit, _ = large.access(b)
            assert not (small_hit and not large_hit)


class TestSetAssocProperties:
    @given(block_lists)
    def test_resident_after_access(self, refs):
        cache = SetAssociativeCache(GEO)
        for b in refs:
            cache.access(b * 64)
            assert cache.probe(b * 64)

    @given(block_lists)
    def test_no_duplicate_tags_within_set(self, refs):
        cache = SetAssociativeCache(GEO.with_assoc(2))
        for b in refs:
            cache.access(b * 64)
            for idx in range(cache.geometry.num_sets):
                tags = [
                    line.tag for line in cache.lines_of_set(idx) if line.valid
                ]
                assert len(tags) == len(set(tags))

    @given(block_lists)
    def test_higher_associativity_never_hurts_hits(self, refs):
        """Same capacity, LRU: 2-way hits >= DM hits is NOT universally
        true per-reference, but total hits over a stream must be equal or
        higher for fully-inclusive stacks per set... we assert the weaker,
        always-true form: the 2-way cache's hit count is within the stream
        and both behave deterministically."""
        dm = SetAssociativeCache(GEO)
        w2 = SetAssociativeCache(GEO.with_assoc(2))
        for b in refs:
            dm.access(b * 64)
            w2.access(b * 64)
        assert 0 <= dm.stats.hits <= len(refs)
        assert 0 <= w2.stats.hits <= len(refs)

    @given(block_lists)
    def test_occupancy_bounded(self, refs):
        cache = SetAssociativeCache(GEO)
        for b in refs:
            cache.access(b * 64)
        assert cache.occupancy() <= GEO.num_lines


class TestMCTProperties:
    @given(block_lists)
    def test_mct_matches_reference_model(self, refs):
        """The MCT must always equal a dict-based 'most recently evicted
        tag per set' model driven by the same cache."""
        mct = MissClassificationTable(GEO)
        model: dict[int, int] = {}
        cache = SetAssociativeCache(GEO, on_evict=mct.on_evict)
        for b in refs:
            addr = b * 64
            out = cache.lookup(addr)
            if not out.hit:
                predicted = mct.classify_is_conflict(addr)
                expected = model.get(GEO.set_index(addr)) == GEO.tag(addr)
                assert predicted == expected
                evicted = cache.fill(addr).evicted
                if evicted is not None:
                    model[GEO.set_index(addr)] = evicted.tag

    @given(block_lists, st.integers(min_value=1, max_value=8))
    def test_partial_tags_only_add_conflicts(self, refs, bits):
        """Truncating tags can only turn capacity answers into conflict
        answers, never the reverse."""
        full = MissClassificationTable(GEO)
        part = MissClassificationTable(GEO, tag_bits=bits)
        cache = SetAssociativeCache(GEO)
        for b in refs:
            addr = b * 64
            out = cache.lookup(addr)
            if not out.hit:
                if full.classify_is_conflict(addr):
                    assert part.classify_is_conflict(addr)
                evicted = cache.fill(addr).evicted
                if evicted is not None:
                    full.on_evict(GEO.set_index(addr), evicted)
                    part.on_evict(GEO.set_index(addr), evicted)


class TestGroundTruthProperties:
    @given(block_lists)
    def test_first_touch_always_compulsory(self, refs):
        gt = GroundTruthClassifier(GEO)
        seen: set[int] = set()
        for b in refs:
            addr = b * 64
            cls = gt.classify_miss(addr)
            if b not in seen:
                assert cls.value == "compulsory"
            seen.add(b)
            gt.observe(addr)

    @given(block_lists)
    def test_counts_sum(self, refs):
        gt = GroundTruthClassifier(GEO)
        for b in refs:
            gt.classify_miss(b * 64)
            gt.observe(b * 64)
        assert gt.total_classified == len(refs)


class TestFilterProperties:
    @given(st.booleans(), st.booleans())
    def test_or_dominates_and(self, new, evicted):
        kw = dict(new_is_conflict=new, evicted_conflict_bit=evicted)
        if ConflictFilter.AND_CONFLICT.matches(**kw):
            assert ConflictFilter.OR_CONFLICT.matches(**kw)

    @given(st.booleans(), st.booleans())
    def test_or_is_union_of_in_and_out(self, new, evicted):
        kw = dict(new_is_conflict=new, evicted_conflict_bit=evicted)
        assert ConflictFilter.OR_CONFLICT.matches(**kw) == (
            ConflictFilter.IN_CONFLICT.matches(**kw)
            or ConflictFilter.OUT_CONFLICT.matches(**kw)
        )

    @given(st.booleans(), st.booleans())
    def test_and_is_intersection(self, new, evicted):
        kw = dict(new_is_conflict=new, evicted_conflict_bit=evicted)
        assert ConflictFilter.AND_CONFLICT.matches(**kw) == (
            ConflictFilter.IN_CONFLICT.matches(**kw)
            and ConflictFilter.OUT_CONFLICT.matches(**kw)
        )


class TestAssistBufferProperties:
    ops = st.lists(
        st.tuples(st.sampled_from(["insert", "remove", "touch", "probe"]), blocks),
        max_size=200,
    )

    @given(ops, st.integers(min_value=1, max_value=8))
    def test_capacity_invariant(self, operations, capacity):
        buf = AssistBuffer(capacity)
        for op, block in operations:
            if op == "insert":
                buf.insert(BufferEntry(block=block, role=BufferRole.VICTIM))
            elif op == "remove":
                buf.remove(block)
            elif op == "touch":
                buf.touch(block)
            else:
                buf.probe(block)
            assert len(buf) <= capacity
            assert len(set(buf.blocks())) == len(buf.blocks())

    @given(ops)
    def test_probe_consistent_with_blocks(self, operations):
        buf = AssistBuffer(4)
        for op, block in operations:
            if op == "insert":
                buf.insert(BufferEntry(block=block, role=BufferRole.PREFETCH))
            elif op == "remove":
                buf.remove(block)
        for block in buf.blocks():
            assert buf.peek(block) is not None


#: Every named AssistConfig preset from the Section-5 figures/tables.
ALL_PRESETS = (
    victim.table1_policies()
    + prefetch.figure4_policies()
    + exclusion.figure5_policies()
    + amb.figure6_policies()
)

#: Wider universe than ``blocks`` so references span several tags per set
#: of the paper's 16KB L1 — conflict misses, evictions and buffer traffic
#: all actually occur.
sim_blocks = st.integers(min_value=0, max_value=1023)
sim_block_lists = st.lists(sim_blocks, min_size=1, max_size=300)


def _simulate_checked(refs, policy, warmup=0):
    """Run a block-reference list with invariant checking forced on."""
    trace = Trace([b * 64 for b in refs], name="prop")
    invariants.set_enabled(True)
    try:
        # MemorySystem.finish() validates via the debug-flag hook; the
        # explicit call below re-validates including the coupled laws.
        stats = simulate(trace, policy, warmup=warmup)
    finally:
        invariants.set_enabled(None)
    check_system_stats(
        stats, issue_rate=PAPER_MACHINE.timing.issue_rate
    )
    return stats


class TestInvariantProperties:
    """Conservation laws hold across random traces for every preset."""

    @pytest.mark.parametrize(
        "policy", ALL_PRESETS, ids=[p.name.replace(" ", "_") for p in ALL_PRESETS]
    )
    @settings(max_examples=5, deadline=None)
    @given(refs=sim_block_lists)
    def test_presets_satisfy_conservation_laws(self, policy, refs):
        _simulate_checked(refs, policy)

    @settings(max_examples=10, deadline=None)
    @given(refs=st.lists(sim_blocks, min_size=2, max_size=300))
    def test_warmup_runs_satisfy_conservation_laws(self, refs):
        _simulate_checked(refs, victim.filter_both(), warmup=len(refs) // 2)


class TestInvariantChecker:
    """Deliberately corrupted statistics must be rejected."""

    def good_stats(self):
        refs = [(i * 37) % 1024 for i in range(600)]
        return _simulate_checked(refs, amb.vict_pref())

    def check(self, stats):
        check_system_stats(stats, issue_rate=PAPER_MACHINE.timing.issue_rate)

    def test_good_stats_pass(self):
        self.check(self.good_stats())

    def test_hit_miss_conservation_violation(self):
        stats = self.good_stats()
        stats.l1.hits += 1
        with pytest.raises(InvariantViolation, match="hits"):
            self.check(stats)

    def test_negative_counter_rejected(self):
        stats = self.good_stats()
        stats.l2.misses -= stats.l2.misses + 1
        with pytest.raises(InvariantViolation, match="negative"):
            self.check(stats)

    def test_buffer_role_partition_violation(self):
        stats = self.good_stats()
        stats.buffer.victim_hits += 1
        with pytest.raises(InvariantViolation, match="victim"):
            self.check(stats)

    def test_buffer_hits_bounded_by_probes(self):
        stats = self.good_stats()
        stats.buffer.probes = stats.buffer.hits - 1 if stats.buffer.hits else 0
        stats.buffer.hits = stats.buffer.probes + 1
        with pytest.raises(InvariantViolation, match="probes"):
            self.check(stats)

    def test_classification_partition_violation(self):
        stats = self.good_stats()
        stats.conflict_misses_predicted += 1
        with pytest.raises(InvariantViolation, match="classified once"):
            self.check(stats)

    def test_cycle_accounting_closure_violation(self):
        stats = self.good_stats()
        stats.timing.stall_cycles += 100.0
        with pytest.raises(InvariantViolation, match="does not close"):
            self.check(stats)

    def test_timing_refs_coupling_violation(self):
        stats = self.good_stats()
        stats.timing.memory_refs += 1
        with pytest.raises(InvariantViolation):
            self.check(stats)

    def test_disabled_by_default_outside_harness(self):
        stats = self.good_stats()
        stats.l1.hits += 1  # corrupt — but the gated hook must not fire
        invariants.set_enabled(None)
        assert not invariants.check_enabled()
        invariants.maybe_check_system(stats)

    def test_env_flag_enables_checks(self, monkeypatch):
        monkeypatch.setenv(invariants.ENV_FLAG, "1")
        invariants.set_enabled(None)
        assert invariants.check_enabled()
        stats = self.good_stats()
        stats.l1.hits += 1
        with pytest.raises(InvariantViolation):
            invariants.maybe_check_system(stats)


class TestWorkloadProperties:
    @settings(deadline=None, max_examples=20)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_analog_determinism(self, seed):
        from repro.workloads.spec_analogs import build

        a = build("gcc", 500, seed=seed)
        b = build("gcc", 500, seed=seed)
        assert (a.addresses == b.addresses).all()
        assert (a.gaps == b.gaps).all()

    @settings(deadline=None, max_examples=20)
    @given(st.sampled_from(["tomcatv", "swim", "gcc", "li"]),
           st.integers(min_value=1, max_value=2000))
    def test_analog_length_exact(self, name, n):
        from repro.workloads.spec_analogs import build

        assert len(build(name, n)) == n
