"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.workloads.trace import Trace


@pytest.fixture
def dm16k() -> CacheGeometry:
    """The paper's L1: 16KB direct-mapped, 64-byte lines."""
    return CacheGeometry(size=16 * 1024, assoc=1, line_size=64)


@pytest.fixture
def w2_16k() -> CacheGeometry:
    return CacheGeometry(size=16 * 1024, assoc=2, line_size=64)


@pytest.fixture
def tiny() -> CacheGeometry:
    """A 4-set direct-mapped cache — small enough to reason about by hand."""
    return CacheGeometry(size=256, assoc=1, line_size=64)


@pytest.fixture
def tiny2way() -> CacheGeometry:
    return CacheGeometry(size=512, assoc=2, line_size=64)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(12345))


def make_trace(addresses, name="t") -> Trace:
    return Trace(list(addresses), name=name)


@pytest.fixture
def ping_pong(dm16k) -> Trace:
    """Two lines mapping to the same set, alternating: pure conflict misses."""
    a = 0x100000
    b = a + dm16k.size
    return make_trace([a, b] * 50, name="ping-pong")
