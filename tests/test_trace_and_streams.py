"""Tests for trace containers and primitive address streams."""

import numpy as np
import pytest

from repro.workloads.streams import (
    ConflictStream,
    HotSetStream,
    PointerChaseStream,
    SequentialBurstStream,
    StridedStream,
)
from repro.workloads.trace import MemoryRef, Trace, merge_round_robin


def rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


class TestTrace:
    def test_defaults(self):
        t = Trace([1, 2, 3])
        assert len(t) == 3
        assert t.is_load.all()
        assert (t.gaps == 3).all()

    def test_iteration_yields_refs(self):
        t = Trace([0x40], [False], [5])
        ref = next(iter(t))
        assert isinstance(ref, MemoryRef)
        assert ref.address == 0x40
        assert not ref.is_load
        assert ref.gap == 5

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Trace([1, 2], is_load=[True])

    def test_negative_address_raises(self):
        with pytest.raises(ValueError):
            Trace([-1])

    def test_negative_gap_raises(self):
        with pytest.raises(ValueError):
            Trace([1], gaps=[-1])

    def test_slicing(self):
        t = Trace(range(10))
        s = t[2:5]
        assert list(s.addresses) == [2, 3, 4]

    def test_single_index_rejected(self):
        with pytest.raises(TypeError):
            Trace([1, 2])[0]

    def test_total_instructions(self):
        t = Trace([1, 2], gaps=[3, 4])
        assert t.total_instructions == 2 + 7

    def test_total_instructions_survives_int32_overflow(self):
        # gaps is stored int16; the sum must accumulate at 64 bits even
        # on platforms whose default accumulator is int32.
        n = 70_000
        t = Trace(np.zeros(n, dtype=np.int64), gaps=np.full(n, 32_767))
        assert t.total_instructions == n * 32_767 + n
        assert t.total_instructions > 2**31

    def test_concat(self):
        t = Trace([1]).concat(Trace([2]))
        assert list(t.addresses) == [1, 2]

    def test_footprint_lines(self):
        t = Trace([0, 8, 64, 65, 128])
        assert t.footprint_lines(64) == 3

    def test_merge_round_robin(self):
        a = Trace([1, 2, 3])
        b = Trace([10, 20, 30])
        m = merge_round_robin([a, b])
        assert list(m.addresses) == [1, 10, 2, 20, 3, 30]

    def test_merge_requires_traces(self):
        with pytest.raises(ValueError):
            merge_round_robin([])


class TestStridedStream:
    def test_sequential_sweep_and_wrap(self):
        s = StridedStream(base=1000, stride=8, span=32)
        out = s.emit(6, rng())
        assert list(out) == [1000, 1008, 1016, 1024, 1000, 1008]

    def test_reset(self):
        s = StridedStream(base=0, stride=8, span=64)
        s.emit(3, rng())
        s.reset()
        assert s.emit(1, rng())[0] == 0

    def test_jump_prob_changes_position(self):
        s = StridedStream(base=0, stride=8, span=1 << 16, jump_prob=1.0)
        first = s.emit(4, rng(1))
        second = s.emit(4, rng(1))
        # With certain jumps, emits are not contiguous continuations.
        assert second[0] != first[-1] + 8 or True  # position teleported
        assert (np.diff(first) == 8).all()  # still linear within a burst

    def test_validation(self):
        with pytest.raises(ValueError):
            StridedStream(base=0, stride=0)
        with pytest.raises(ValueError):
            StridedStream(base=0, stride=8, span=4)
        with pytest.raises(ValueError):
            StridedStream(base=0, jump_prob=1.5)


class TestConflictStream:
    def test_arrays_alternate_same_set(self):
        s = ConflictStream(base=0, n_arrays=2, alignment=16 * 1024, lines=4,
                           burst=1, shuffle_lines=False, line_stride=1)
        out = s.emit(4, rng())
        assert list(out) == [0, 16 * 1024, 64, 16 * 1024 + 64]

    def test_line_stride_spaces_group_lines(self):
        s = ConflictStream(base=0, n_arrays=2, alignment=16 * 1024, lines=4,
                           burst=1, shuffle_lines=False, line_stride=3)
        out = s.emit(4, rng())
        assert list(out) == [0, 16 * 1024, 192, 16 * 1024 + 192]

    def test_burst_stays_in_line(self):
        s = ConflictStream(base=0, n_arrays=2, alignment=16 * 1024, lines=4,
                           burst=2, shuffle_lines=False)
        out = s.emit(4, rng())
        assert list(out) == [0, 8, 16 * 1024, 16 * 1024 + 8]

    def test_shuffled_lines_visit_every_line(self):
        s = ConflictStream(base=0, n_arrays=2, alignment=16 * 1024, lines=4,
                           burst=1, line_stride=1)
        out = s.emit(8, rng())
        assert sorted(set(o for o in out if o < 16 * 1024)) == [0, 64, 128, 192]

    def test_shuffled_order_is_deterministic(self):
        a = ConflictStream(base=0, lines=8).emit(32, rng())
        b = ConflictStream(base=0, lines=8).emit(32, rng())
        assert (a == b).all()

    def test_wraps_after_all_lines(self):
        s = ConflictStream(base=0, n_arrays=2, alignment=1024, lines=2,
                           burst=1, shuffle_lines=False, line_stride=1)
        out = s.emit(5, rng())
        assert out[4] == out[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ConflictStream(base=0, n_arrays=1)
        with pytest.raises(ValueError):
            ConflictStream(base=0, lines=0)
        with pytest.raises(ValueError):
            ConflictStream(base=0, burst=9)
        with pytest.raises(ValueError):
            ConflictStream(base=0, line_stride=0)


class TestPointerChaseStream:
    def test_visits_all_nodes_per_cycle(self):
        s = PointerChaseStream(base=0, n_nodes=8, node_size=64, burst=1, seed=2)
        out = s.emit(8, rng())
        assert sorted(out) == [i * 64 for i in range(8)]

    def test_cycle_repeats(self):
        s = PointerChaseStream(base=0, n_nodes=4, node_size=64, burst=1, seed=2)
        first = list(s.emit(4, rng()))
        second = list(s.emit(4, rng()))
        assert first == second

    def test_burst_words_within_node(self):
        s = PointerChaseStream(base=0, n_nodes=4, node_size=64, burst=2, seed=2)
        out = s.emit(4, rng())
        assert out[1] == out[0] + 8
        assert out[3] == out[2] + 8

    def test_deterministic_by_seed(self):
        a = PointerChaseStream(base=0, n_nodes=16, seed=5).emit(16, rng())
        b = PointerChaseStream(base=0, n_nodes=16, seed=5).emit(16, rng())
        assert (a == b).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            PointerChaseStream(base=0, n_nodes=0)
        with pytest.raises(ValueError):
            PointerChaseStream(base=0, burst=0)


class TestHotSetStream:
    def test_stays_within_bounds(self):
        s = HotSetStream(base=4096, size=1024)
        out = s.emit(200, rng())
        assert out.min() >= 4096
        assert out.max() < 4096 + 1024

    def test_word_aligned(self):
        s = HotSetStream(base=0, size=1024, word=8)
        assert (s.emit(50, rng()) % 8 == 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            HotSetStream(base=0, size=4, word=8)


class TestSequentialBurstStream:
    def test_burst_then_next_line(self):
        s = SequentialBurstStream(base=0, span=1024, burst=2)
        out = s.emit(6, rng())
        assert list(out) == [0, 8, 64, 72, 128, 136]

    def test_wraps_at_span(self):
        s = SequentialBurstStream(base=0, span=128, burst=1)
        out = s.emit(3, rng())
        assert list(out) == [0, 64, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialBurstStream(base=0, burst=0)
