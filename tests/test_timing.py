"""Unit tests for the cycle-accounting timing model."""

import pytest

from repro.system.config import TimingConfig
from repro.system.timing import TimingModel


def model(**kw):
    return TimingModel(TimingConfig(**kw))


class TestInstructionFlow:
    def test_clean_code_runs_at_issue_rate(self):
        t = model(issue_rate=4.0)
        for _ in range(100):
            t.step(3)  # 4 instructions per ref
        stats = t.finish()
        assert stats.instructions == 400
        assert stats.cycles == pytest.approx(100.0)
        assert stats.ipc == pytest.approx(4.0)

    def test_memory_refs_counted(self):
        t = model()
        t.step(0)
        t.step(0)
        assert t.stats.memory_refs == 2


class TestWindowRule:
    def test_short_latency_fully_hidden(self):
        t = model(issue_rate=1.0, rob_window=32)
        t.step(0)
        t.issue_miss(5.0)  # completes long before the window closes
        for _ in range(50):
            t.step(0)
        assert t.finish().stall_cycles == 0

    def test_long_miss_stalls_at_window_edge(self):
        t = model(issue_rate=1.0, rob_window=10)
        t.step(0)           # clock 1
        t.issue_miss(100.0)  # completes at 101
        for _ in range(30):
            t.step(0)
        stats = t.finish()
        # The core slides to instruction 12 (clock 12) then stalls to 101.
        assert stats.stall_cycles == pytest.approx(89.0)
        assert stats.cycles >= 101.0

    def test_overlapping_misses_share_stall(self):
        """Two misses back to back: MLP hides the second's latency."""
        t = model(issue_rate=1.0, rob_window=10)
        t.step(0)
        t.issue_miss(100.0)   # completes ~101
        t.step(0)
        t.issue_miss(100.0)   # completes ~102
        for _ in range(40):
            t.step(0)
        stats = t.finish()
        # Serial exposure would be ~190; overlapped it is ~100.
        assert stats.stall_cycles < 120.0

    def test_finish_drains_pending(self):
        t = model(issue_rate=1.0)
        t.step(0)
        t.issue_miss(50.0)
        stats = t.finish()
        assert stats.cycles >= 51.0


class TestMSHRs:
    def test_mshr_exhaustion_stalls_demand(self):
        t = model(issue_rate=1.0, mshrs=2, rob_window=1000)
        t.step(0)
        t.issue_miss(100.0)
        t.issue_miss(100.0)
        assert not t.mshr_available()
        t.issue_miss(100.0)  # must wait for the first to complete
        assert t.stats.stall_cycles > 0

    def test_prefetch_discarded_when_full(self):
        t = model(issue_rate=1.0, mshrs=1, rob_window=1000)
        t.step(0)
        t.issue_miss(100.0)
        assert t.issue_prefetch(100.0) is None

    def test_prefetch_holds_mshr(self):
        t = model(issue_rate=1.0, mshrs=2, rob_window=1000)
        t.step(0)
        assert t.issue_prefetch(100.0) is not None
        assert t.issue_prefetch(100.0) is not None
        assert t.issue_prefetch(100.0) is None  # full

    def test_prefetch_mshr_freed_after_completion(self):
        t = model(issue_rate=1.0, mshrs=1, rob_window=1000)
        t.step(0)
        assert t.issue_prefetch(5.0) is not None
        for _ in range(10):
            t.step(0)  # clock passes completion
        assert t.mshr_available()

    def test_prefetch_never_stalls_retirement(self):
        t = model(issue_rate=1.0, rob_window=5)
        t.step(0)
        t.issue_prefetch(1000.0)
        for _ in range(50):
            t.step(0)
        assert t.finish().stall_cycles == 0


class TestResources:
    def test_bus_serialises(self):
        t = model(bus_transfer_cycles=4)
        s1 = t.acquire_bus(0.0)
        s2 = t.acquire_bus(0.0)
        assert s1 == 0.0
        assert s2 == 4.0
        assert t.stats.contention_cycles == pytest.approx(4.0)

    def test_bank_occupancy(self):
        t = model()
        s1 = t.occupy_bank(0, 2)
        s2 = t.occupy_bank(0, 2)
        s3 = t.occupy_bank(1, 2)  # different bank: free
        assert s1 == 0.0 and s2 == 2.0 and s3 == 0.0

    def test_buffer_port_occupancy(self):
        t = model()
        assert t.occupy_buffer(2) == 0.0
        assert t.occupy_buffer(2) == 2.0

    def test_short_op_hidden_within_window(self):
        t = model(issue_rate=1.0, rob_window=32)
        t.step(0)
        t.note_short_op(t.clock + 2.0)
        for _ in range(10):
            t.step(0)
        assert t.finish().stall_cycles == 0


class TestResetMeasurement:
    def test_reset_zeroes_clock_and_pending(self):
        t = model(issue_rate=1.0)
        t.step(0)
        t.issue_miss(100.0)
        t.reset_measurement()
        assert t.clock == 0.0
        assert t.instructions == 0
        assert t.mshr_available()
        stats = t.finish()
        assert stats.cycles == 0.0
        assert stats.stall_cycles == 0.0


class TestConfigValidation:
    def test_rejects_bad_issue_rate(self):
        with pytest.raises(ValueError):
            TimingConfig(issue_rate=0)
        with pytest.raises(ValueError):
            TimingConfig(issue_rate=9.0, width=8)

    def test_rejects_memory_faster_than_l2(self):
        with pytest.raises(ValueError):
            TimingConfig(l2_latency=20, memory_latency=10)

    def test_slow_bus_variant(self):
        cfg = TimingConfig().with_slow_bus()
        assert cfg.bus_transfer_cycles > TimingConfig().bus_transfer_cycles
