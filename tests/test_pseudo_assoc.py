"""Unit tests for the pseudo-associative (column-associative) cache."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.pseudo_assoc import (
    PacHit,
    PacVariant,
    PseudoAssociativeCache,
)


@pytest.fixture
def geo():
    return CacheGeometry(size=16 * 1024, assoc=1, line_size=64)


def pac(geo, variant=PacVariant.CLASSIC):
    return PseudoAssociativeCache(geo, variant)


class TestConstruction:
    def test_rejects_associative_geometry(self):
        g = CacheGeometry(size=16 * 1024, assoc=2, line_size=64)
        with pytest.raises(ValueError):
            PseudoAssociativeCache(g)

    def test_secondary_index_flips_top_bit(self, geo):
        c = pac(geo)
        assert c.secondary_index(0) == geo.num_sets // 2
        pi = c.primary_index(0x1040)
        assert c.secondary_index(0x1040) == pi ^ (geo.num_sets // 2)


class TestHitPaths:
    def test_primary_hit(self, geo):
        c = pac(geo)
        c.access(0x1000)
        out = c.access(0x1000)
        assert out.kind is PacHit.PRIMARY
        assert c.primary_hits == 1

    def test_conflict_pair_secondary_hit_and_swap(self, geo):
        c = pac(geo)
        a = 0x100000
        b = a + geo.size  # same primary slot
        c.access(a)       # a in primary
        c.access(b)       # a demoted to secondary, b in primary
        out = c.access(a)
        assert out.kind is PacHit.SECONDARY
        assert out.swapped
        # After the swap a is back in primary.
        assert c.probe(a) is PacHit.PRIMARY
        assert c.probe(b) is PacHit.SECONDARY

    def test_ping_pong_never_misses_after_warmup(self, geo):
        c = pac(geo)
        a = 0x100000
        b = a + geo.size
        c.access(a)
        c.access(b)
        for addr in (a, b) * 20:
            assert c.access(addr).kind is not PacHit.MISS

    def test_probe_is_non_mutating(self, geo):
        c = pac(geo)
        assert c.probe(0x1000) is PacHit.MISS
        assert c.stats.accesses == 0


class TestClassicEviction:
    def test_demotion_evicts_rehash_occupant(self, geo):
        c = pac(geo)
        a = 0x100000
        b = a + geo.size
        d = a + 2 * geo.size
        c.access(a)   # a primary
        c.access(b)   # a -> secondary, b primary
        out = c.access(d)  # demotes b, evicts a (the rehash occupant)
        assert out.kind is PacHit.MISS
        assert out.evicted_block == geo.block_number(a)
        assert c.probe(b) is PacHit.SECONDARY
        assert c.probe(d) is PacHit.PRIMARY


class TestMCTVariant:
    def test_conflict_bit_from_per_slot_mct(self, geo):
        c = pac(geo, PacVariant.MCT)
        a = 0x100000
        b = a + geo.size
        d = a + 2 * geo.size
        c.access(a)
        c.access(b)
        c.access(d)   # evicts a from its slot; MCT[slot] = a
        c.access(b)   # secondary hit keeps things alive
        out = c.access(a)  # a matches MCT at its primary -> conflict bit
        assert out.kind is PacHit.MISS

    def test_conflict_bit_reprieve_beats_classic_on_go(self, geo):
        """§5.4's claim, checked on the analog where it is strongest: the
        'go' analog's hot working set straddles slot pairs, and the classic
        demotion rule keeps killing resident hot lines; the conflict-bit
        reprieve recovers them (measured: ~18% -> ~7% miss rate)."""
        from repro.workloads.spec_analogs import build

        t = build("go", 20_000)
        results = {}
        for variant in (PacVariant.CLASSIC, PacVariant.MCT):
            c = pac(geo, variant)
            for addr in t.addresses:
                c.access(int(addr))
            results[variant] = c.stats.miss_rate
        assert results[PacVariant.MCT] < results[PacVariant.CLASSIC]

    def test_lru_variant_matches_two_way_content(self, geo):
        """PAC-LRU must hit/miss identically to a 2-way cache over the
        paired sets (same capacity, same replacement)."""
        import random

        from repro.cache.fully_assoc import FullyAssociativeLRU

        c = pac(geo, PacVariant.LRU)
        # Model each slot-pair as its own 2-entry FA-LRU.
        pairs = {}
        rnd = random.Random(11)
        half = geo.num_sets // 2
        for _ in range(4000):
            block = rnd.randrange(0, 4096)
            addr = block * 64
            pi = c.primary_index(addr)
            key = min(pi, pi ^ half)
            model = pairs.setdefault(key, FullyAssociativeLRU(2))
            expect_hit, _ = model.access(geo.block_number(addr))
            out = c.access(addr)
            assert (out.kind is not PacHit.MISS) == expect_hit


class TestStatsAndIntrospection:
    def test_miss_rate_tracks(self, geo):
        c = pac(geo)
        c.access(0x1000)
        c.access(0x1000)
        assert c.stats.accesses == 2
        assert c.stats.hits == 1
        assert c.secondary_hit_fraction == 0.0

    def test_occupancy(self, geo):
        c = pac(geo)
        c.access(0x1000)
        c.access(0x2040)
        assert c.occupancy() == 2
