"""Tests for the fault-tolerant experiment harness.

Covers the acceptance criteria of the harness:

* a forced fault (exception or hang) in one cell leaves the other cells
  completed, is reflected as FAILED/TIMEOUT in ``report.json``, and
  exits non-zero only under ``--strict``;
* a subsequent ``--resume`` re-runs only the failed cell;
* two runs with the same seed produce byte-identical cell artifacts.
"""

import json
import os

import pytest

from repro.experiments.base import ExperimentParams, ExperimentResult
from repro.experiments.runner import main
from repro.harness.cells import (
    VARIANTS,
    CellSpec,
    FaultInjection,
    InjectedFault,
    expand_cells,
    known_experiments,
    resolve,
    run_cell,
)
from repro.harness.checkpoint import SCHEMA_VERSION, CheckpointError, RunDirectory
from repro.harness.executor import HarnessConfig, backoff_delay, run_cells
from repro.harness.report import CellReport, CellStatus, RunReport

TINY = ExperimentParams(n_refs=4_000, warmup=1_000, suite=["gcc"])

#: No backoff sleeps, one retry, subprocess isolation.
FAST = HarnessConfig(retries=1, backoff_s=0.0)
FAST_INLINE = HarnessConfig(retries=1, backoff_s=0.0, isolate=False)


def sample_result() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="toy",
        title="a toy table",
        headers=["bench", "rate", "count"],
        paper_reference="none",
    )
    result.add_row("gcc", 12.5, 3)
    result.add_row("swim", 0.0, 0)
    result.notes.append("a note")
    return result


class TestCellRegistry:
    def test_every_experiment_has_cells(self):
        for name in known_experiments():
            cells = expand_cells([name])
            assert cells, name
            for spec in cells:
                assert callable(resolve(spec))

    def test_multi_table_experiments_split(self):
        ids = [c.cell_id for c in expand_cells(["fig4", "fig6"])]
        assert ids == ["fig4.accuracy", "fig4.speedup", "fig6.amb8", "fig6.amb16"]

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            expand_cells(["fig99"])

    def test_run_cell_returns_result(self):
        result = run_cell(CellSpec("table1", "main"), TINY)
        assert result.experiment_id == "table1"
        assert result.rows

    def test_cell_order_matches_legacy_registry(self):
        # The "all" sweep must regenerate tables in the pre-harness order.
        assert known_experiments() == sorted(VARIANTS)


class TestResultRoundTrip:
    def test_lossless(self):
        result = sample_result()
        clone = ExperimentResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert clone.to_dict() == result.to_dict()
        assert clone.rows == result.rows
        assert isinstance(clone.cell("gcc", "count"), int)
        assert isinstance(clone.cell("gcc", "rate"), float)

    def test_row_width_validated(self):
        payload = sample_result().to_dict()
        payload["rows"][0] = ["gcc", 1.0]
        with pytest.raises(ValueError):
            ExperimentResult.from_dict(payload)

    def test_params_round_trip(self):
        for params in (TINY, ExperimentParams()):
            assert ExperimentParams.from_dict(params.to_dict()) == params

    def test_params_from_dict_revalidates(self):
        bad = TINY.to_dict()
        bad["warmup"] = bad["n_refs"]
        with pytest.raises(ValueError):
            ExperimentParams.from_dict(bad)


class TestFaultInjection:
    def test_parse(self):
        inject = FaultInjection.parse("fig1.main:flaky:2")
        assert inject == FaultInjection("fig1.main", "flaky", 2)
        assert FaultInjection.parse("a.b:hang").kind == "hang"

    @pytest.mark.parametrize("spec", ["", "noseparator", "a.b:explode", "a.b:flaky:0"])
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            FaultInjection.parse(spec)

    def test_trigger_scoping(self):
        inject = FaultInjection("table1.main", "fail")
        inject.trigger(CellSpec("fig1", "main"), attempt=1)  # no-op
        with pytest.raises(InjectedFault):
            inject.trigger(CellSpec("table1", "main"), attempt=1)

    def test_flaky_stops_failing(self):
        inject = FaultInjection("t.m", "flaky", times=2)
        with pytest.raises(InjectedFault):
            inject.trigger(CellSpec("t", "m"), attempt=2)
        inject.trigger(CellSpec("t", "m"), attempt=3)  # succeeds


class TestBackoff:
    def test_deterministic_and_exponential(self):
        cfg = HarnessConfig(backoff_s=0.1, backoff_factor=2.0, jitter=0.5)
        d1 = backoff_delay(cfg, "fig1.main", 1, seed=0)
        assert d1 == backoff_delay(cfg, "fig1.main", 1, seed=0)
        assert d1 != backoff_delay(cfg, "fig1.main", 1, seed=1)
        d2 = backoff_delay(cfg, "fig1.main", 2, seed=0)
        assert 0.1 <= d1 <= 0.1 * 1.5
        assert 0.2 <= d2 <= 0.2 * 1.5

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HarnessConfig(timeout_s=0)
        with pytest.raises(ValueError):
            HarnessConfig(retries=-1)
        with pytest.raises(ValueError):
            HarnessConfig(backoff_factor=0.5)


class TestRunDirectory:
    def test_save_load_round_trip(self, tmp_path):
        rd = RunDirectory(tmp_path / "run")
        rd.prepare(TINY, resume=False)
        result = sample_result()
        path = rd.save_cell("toy.main", result)
        assert path.exists()
        loaded = rd.load_cell("toy.main")
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        assert rd.completed_cells() == ["toy.main"]

    def test_missing_and_corrupt_artifacts_count_as_absent(self, tmp_path):
        rd = RunDirectory(tmp_path)
        rd.prepare(TINY, resume=False)
        assert rd.load_cell("nope.main") is None
        rd.cell_path("bad.main").write_text("{not json")
        assert rd.load_cell("bad.main") is None
        rd.cell_path("old.main").write_text(
            json.dumps({"schema": SCHEMA_VERSION + 1, "cell": "old.main",
                        "result": sample_result().to_dict()})
        )
        assert rd.load_cell("old.main") is None

    def test_resume_requires_manifest(self, tmp_path):
        with pytest.raises(CheckpointError, match="nothing to resume"):
            RunDirectory(tmp_path / "empty").prepare(TINY, resume=True)

    def test_params_mismatch_refused(self, tmp_path):
        rd = RunDirectory(tmp_path)
        rd.prepare(TINY, resume=False)
        other = ExperimentParams(n_refs=5_000, warmup=1_000, suite=["gcc"])
        with pytest.raises(CheckpointError, match="not be comparable"):
            RunDirectory(tmp_path).prepare(other, resume=True)


class TestExecutor:
    CELLS = [CellSpec("table1", "main"), CellSpec("fig3", "main")]

    @pytest.mark.parametrize("config", [FAST, FAST_INLINE], ids=["isolated", "inline"])
    def test_clean_run(self, config):
        report = run_cells([CellSpec("table1", "main")], TINY, config)
        assert [c.status for c in report.cells] == [CellStatus.OK]
        assert report.ok and report.exit_code(strict=True) == 0

    def test_fault_in_one_cell_leaves_others_completed(self):
        inject = FaultInjection("table1.main", "fail")
        report = run_cells(self.CELLS, TINY, FAST, inject=inject)
        by_id = {c.cell_id: c for c in report.cells}
        assert by_id["table1.main"].status is CellStatus.FAILED
        assert by_id["table1.main"].attempts == 2  # retried before giving up
        assert "InjectedFault" in by_id["table1.main"].error
        assert by_id["fig3.main"].status is CellStatus.OK
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_flaky_cell_is_retried_to_success(self):
        inject = FaultInjection("table1.main", "flaky", times=1)
        report = run_cells([CellSpec("table1", "main")], TINY, FAST, inject=inject)
        (cell,) = report.cells
        assert cell.status is CellStatus.RETRIED
        assert cell.attempts == 2
        assert cell.error is None
        assert report.ok

    def test_hang_is_killed_as_timeout(self):
        config = HarnessConfig(timeout_s=1.0, retries=0, backoff_s=0.0)
        inject = FaultInjection("table1.main", "hang")
        report = run_cells(self.CELLS, TINY, config, inject=inject)
        by_id = {c.cell_id: c for c in report.cells}
        assert by_id["table1.main"].status is CellStatus.TIMEOUT
        assert by_id["fig3.main"].status is CellStatus.OK

    def test_checkpoint_resume_reruns_only_failed_cell(self, tmp_path):
        rd = RunDirectory(tmp_path)
        rd.prepare(TINY, resume=False)
        inject = FaultInjection("fig3.main", "fail")
        first = run_cells(self.CELLS, TINY, FAST, run_dir=rd, inject=inject)
        assert {c.cell_id for c in first.degraded} == {"fig3.main"}
        assert rd.load_cell("table1.main") is not None
        assert rd.load_cell("fig3.main") is None

        second = run_cells(self.CELLS, TINY, FAST, run_dir=rd, resume=True)
        by_id = {c.cell_id: c for c in second.cells}
        assert by_id["table1.main"].status is CellStatus.SKIPPED
        assert by_id["fig3.main"].status is CellStatus.OK
        assert rd.load_cell("fig3.main") is not None

        # report.json is deterministic: the resumed cell serialises
        # under its origin status (OK), not SKIPPED, and carries no
        # durations — so a recovered run converges byte-for-byte.
        report_payload = json.loads(rd.report_path.read_text())
        assert report_payload["ok"] is True
        assert report_payload["summary"]["skipped"] == 0
        assert report_payload["summary"]["ok"] == 2
        statuses = {c["cell"]: c["status"] for c in report_payload["cells"]}
        assert statuses == {"table1.main": "OK", "fig3.main": "OK"}
        assert all("duration_s" not in c for c in report_payload["cells"])

    def test_worker_results_match_inline_results(self):
        spec = CellSpec("table1", "main")
        isolated = run_cells([spec], TINY, FAST)
        assert isolated.ok
        inline = run_cell(spec, TINY)
        # Compare through the report callback capture.
        captured = {}
        run_cells([spec], TINY, FAST,
                  on_cell=lambda s, c, r: captured.update(result=r))
        assert captured["result"].to_dict() == inline.to_dict()

    def test_same_seed_artifacts_are_byte_identical(self, tmp_path):
        paths = []
        for sub in ("a", "b"):
            rd = RunDirectory(tmp_path / sub)
            rd.prepare(TINY, resume=False)
            report = run_cells([CellSpec("table1", "main")], TINY, FAST, run_dir=rd)
            assert report.ok
            paths.append(rd.cell_path("table1.main"))
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestReport:
    def make_report(self):
        report = RunReport(params=TINY.to_dict())
        report.add(CellReport("fig1.main", CellStatus.OK, attempts=1, duration_s=1.0))
        report.add(CellReport("fig2.main", CellStatus.TIMEOUT, attempts=2,
                              duration_s=4.0, error="no result within 2s"))
        report.add(CellReport("fig3.main", CellStatus.SKIPPED, attempts=0))
        return report

    def test_counts_and_exit_codes(self):
        report = self.make_report()
        assert not report.ok
        assert [c.cell_id for c in report.degraded] == ["fig2.main"]
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_to_dict_summary(self):
        payload = self.make_report().to_dict()
        assert payload["schema"] == 2
        assert payload["summary"] == {
            "ok": 1, "retried": 0, "timeout": 1, "failed": 0, "skipped": 1,
        }
        assert payload["cells"][1]["error"] == "no result within 2s"

    def test_resumed_cell_serializes_under_origin_status(self):
        report = RunReport(params=TINY.to_dict())
        report.add(
            CellReport(
                "fig1.main", CellStatus.SKIPPED, attempts=0,
                origin_status="RETRIED", origin_attempts=3,
            )
        )
        payload = report.to_dict()
        assert payload["cells"][0]["status"] == "RETRIED"
        assert payload["cells"][0]["attempts"] == 3
        assert payload["summary"]["retried"] == 1
        assert payload["summary"]["skipped"] == 0
        # The in-memory status (and thus the printed table) stays SKIPPED.
        assert "SKIPPED" in report.format_table()

    def test_breaker_skipped_cell_is_degraded(self):
        report = RunReport(params=TINY.to_dict())
        report.add(
            CellReport(
                "fig1.main", CellStatus.SKIPPED, attempts=0,
                error="infrastructure circuit breaker open",
            )
        )
        assert not report.ok
        assert report.exit_code(strict=True) == 1
        assert report.to_dict()["cells"][0]["status"] == "SKIPPED"

    def test_format_table(self):
        text = self.make_report().format_table()
        assert "== harness report ==" in text
        assert "TIMEOUT" in text and "SKIPPED" in text
        assert "degraded: fig2.main [TIMEOUT]" in text


class TestCLIHarness:
    TAIL = ["--refs", "4000", "--warmup", "1000", "--suite", "gcc",
            "--backoff", "0.01"]
    ARGS = ["table1"] + TAIL

    def test_run_dir_and_report(self, tmp_path, capsys):
        rc = main(self.ARGS + ["--run-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Victim-cache hit rates" in out
        assert "== harness report ==" in out
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["cells"][0]["status"] == "OK"

    def test_injected_fault_strict_and_resume(self, tmp_path, capsys):
        args = ["table1", "fig3"] + self.TAIL + ["--run-dir", str(tmp_path)]
        rc = main(args + ["--inject-fault", "fig3.main:fail", "--strict"])
        assert rc == 1
        payload = json.loads((tmp_path / "report.json").read_text())
        statuses = {c["cell"]: c["status"] for c in payload["cells"]}
        assert statuses == {"table1.main": "OK", "fig3.main": "FAILED"}
        capsys.readouterr()

        rc = main(args + ["--resume", "--strict"])
        assert rc == 0
        payload = json.loads((tmp_path / "report.json").read_text())
        statuses = {c["cell"]: c["status"] for c in payload["cells"]}
        # The resumed cell serialises under its origin status — the
        # final report is indistinguishable from an uninterrupted run.
        assert statuses == {"table1.main": "OK", "fig3.main": "OK"}

    def test_resume_with_positional_dir(self, tmp_path, capsys):
        rc = main(self.ARGS + ["--run-dir", str(tmp_path)])
        assert rc == 0
        capsys.readouterr()
        rc = main(self.ARGS + ["--resume", str(tmp_path)])
        assert rc == 0
        assert "SKIPPED" in capsys.readouterr().out

    def test_resume_requires_dir(self):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--resume"])

    def test_invalid_engine_env_fails_at_spawn(self, monkeypatch, capsys):
        # A typo'd REPRO_SIM_ENGINE must abort the campaign before any
        # worker is spawned (argparse exit 2), naming the valid choices
        # — not surface as a per-cell ValueError inside workers.
        from repro.system.simulator import ENGINE_ENV_VAR

        monkeypatch.setenv(ENGINE_ENV_VAR, "vecotr")
        with pytest.raises(SystemExit) as exc:
            main(self.ARGS)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "vecotr" in err
        assert "auto, scalar, vector" in err

    def test_explicit_engine_flag_overrides_bad_env(self, monkeypatch, capsys):
        # --engine exports over the inherited value, so a valid explicit
        # choice must win over (and repair) a stale environment.
        from repro.system.simulator import ENGINE_ENV_VAR

        monkeypatch.setenv(ENGINE_ENV_VAR, "vecotr")
        rc = main(self.ARGS + ["--engine", "scalar"])
        assert rc == 0
        assert os.environ[ENGINE_ENV_VAR] == "scalar"

    def test_bench_rejects_invalid_engine_env(self, monkeypatch, capsys):
        from repro.harness.bench import main as bench_main
        from repro.system.simulator import ENGINE_ENV_VAR

        monkeypatch.setenv(ENGINE_ENV_VAR, "vecotr")
        rc = bench_main(["--refs", "200", "--warmup", "50", "--skip-sweep"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "vecotr" in err and "auto, scalar, vector" in err

    def test_timeout_flag_kills_hung_cell(self, tmp_path, capsys):
        rc = main(self.ARGS + [
            "--inject-fault", "table1.main:hang",
            "--timeout", "1", "--retries", "0", "--strict",
        ])
        assert rc == 1
        assert "TIMEOUT" in capsys.readouterr().out
