"""Tests for ``repro.analysis`` (simlint): engine, checkers, CLI.

Every registered RPR code must fire on at least one failing fixture and
stay silent on the matching passing fixture — that is the contract that
keeps the checker catalog honest.  The CLI tests cover ``--json``,
``--select``/``--ignore``, exit codes and noqa suppression.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import all_checkers, catalog, run
from repro.analysis.cli import main
from repro.analysis.core import compute_tags, suppressed, Violation

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def codes_for(*files: str) -> set:
    """All violation codes produced by running the full checker set."""
    paths = [str(FIXTURES / f) for f in files]
    result = run(paths, all_checkers())
    return {v.code for v in result.violations}


# ----------------------------------------------------------------------
# Checker contract: every code fires on a failing fixture, none on the
# passing one.  An entry may name a single fixture file or a tuple of
# files that must be analysed together (cross-file checkers).
# ----------------------------------------------------------------------
def as_files(entry) -> tuple:
    return entry if isinstance(entry, tuple) else (entry,)


FAMILIES = [
    ("stats_fail.py", "stats_ok.py", {"RPR001", "RPR002", "RPR003"}),
    (
        "determinism_fail.py",
        "determinism_ok.py",
        {"RPR010", "RPR011", "RPR012", "RPR013"},
    ),
    (
        "concurrency_fail.py",
        "concurrency_ok.py",
        {"RPR020", "RPR021", "RPR022"},
    ),
    # The service's event loop: blocking calls inside async defs.
    ("asyncio_fail.py", "asyncio_ok.py", {"RPR080", "RPR081"}),
    ("obs_schema_fail.py", "obs_schema_ok.py", {"RPR030", "RPR031", "RPR032"}),
    ("hotpath_fail.py", "hotpath_ok.py", {"RPR040", "RPR041", "RPR042"}),
    ("durability_fail.py", "durability_ok.py", {"RPR050", "RPR051"}),
    # The mrc package is registered simcore scope: determinism and
    # hot-path loop discipline must reach it (PR 5).
    (
        "mrc_fail.py",
        "mrc_ok.py",
        {"RPR010", "RPR011", "RPR012", "RPR013", "RPR040"},
    ),
    (
        "numpy_fail.py",
        "numpy_ok.py",
        {"RPR060", "RPR061", "RPR062", "RPR063", "RPR064"},
    ),
    # Cross-file family: the scalar reference engine (shared) is joined
    # with a vector-side module; the contract only activates when both
    # engine scopes are present.
    (
        ("stats_contract_shared.py", "stats_contract_fail.py"),
        ("stats_contract_shared.py", "stats_contract_ok.py"),
        {"RPR070", "RPR071", "RPR072"},
    ),
]


@pytest.mark.parametrize("fail_fixture,ok_fixture,expected", FAMILIES)
def test_family_fires_on_fail_fixture(fail_fixture, ok_fixture, expected):
    assert codes_for(*as_files(fail_fixture)) == expected


@pytest.mark.parametrize("fail_fixture,ok_fixture,expected", FAMILIES)
def test_family_silent_on_ok_fixture(fail_fixture, ok_fixture, expected):
    assert codes_for(*as_files(ok_fixture)) == set()


def test_new_family_fixture_counts_match_ci_selfcheck():
    # Exact per-code counts for the dataflow-backed families; the
    # simlint-selfcheck step in .github/workflows/ci.yml pins the same
    # numbers — update both together.
    def counts(*files: str) -> Counter:
        paths = [str(FIXTURES / f) for f in files]
        return Counter(v.code for v in run(paths, all_checkers()).violations)

    assert counts("numpy_fail.py") == {
        "RPR060": 2,
        "RPR061": 2,
        "RPR062": 1,
        "RPR063": 1,
        "RPR064": 1,
    }
    assert counts("stats_contract_shared.py", "stats_contract_fail.py") == {
        "RPR070": 3,
        "RPR071": 1,
        "RPR072": 1,
    }


def test_every_registered_code_has_a_firing_fixture():
    files: list = []
    for fail, _, _ in FAMILIES:
        files.extend(f for f in as_files(fail) if f not in files)
    fired = codes_for(*files)
    assert fired == set(catalog()), (
        "every code in the catalog must be proven to fire by a fixture"
    )


def test_violations_are_sorted_and_positioned():
    result = run([str(FIXTURES / "determinism_fail.py")], all_checkers())
    positions = [(v.path, v.line, v.col, v.code) for v in result.violations]
    assert positions == sorted(positions)
    assert all(v.line >= 1 and v.col >= 1 for v in result.violations)


# ----------------------------------------------------------------------
# Suppression
# ----------------------------------------------------------------------
def test_noqa_suppresses_bare_and_coded():
    assert codes_for("noqa_ok.py") == set()


def test_noqa_with_wrong_code_does_not_suppress():
    assert codes_for("noqa_partial.py") == {"RPR010"}


def test_suppressed_helper_matches_codes():
    v = Violation("RPR010", "m", "f.py", 1, 1, "c")
    assert suppressed(v, ["x = 1  # repro: noqa"])
    assert suppressed(v, ["x = 1  # repro: noqa[RPR010]"])
    assert suppressed(v, ["x = 1  # repro: noqa[RPR001, RPR010]"])
    assert not suppressed(v, ["x = 1  # repro: noqa[RPR001]"])
    assert not suppressed(v, ["x = 1  # noqa"])


# ----------------------------------------------------------------------
# Scoping
# ----------------------------------------------------------------------
def test_scope_tags_from_paths():
    assert "simcore" in compute_tags("src/repro/cache/stats.py", "")
    assert "harness" in compute_tags("src/repro/harness/executor.py", "")
    assert "obs" in compute_tags("src/repro/obs/events.py", "")
    assert compute_tags("tests/test_foo.py", "") == frozenset({"test"})


def test_mrc_package_is_simcore_scope():
    # The stack-distance engine is simulation core: determinism and
    # hot-path rules apply, and the package name rides along as a tag.
    tags = compute_tags("src/repro/mrc/stack.py", "")
    assert {"src", "simcore", "mrc"} <= tags


def test_scope_directive_overrides_path():
    tags = compute_tags("anything.py", "# repro-analysis-scope: simcore src")
    assert tags == frozenset({"simcore", "src"})


def test_fixtures_are_skipped_on_directory_walks():
    # The deliberate violations in tests/fixtures/analysis must not fail
    # a whole-tree run; only explicit file arguments reach them.
    result = run([str(FIXTURES.parent.parent)], all_checkers())
    fixture_hits = [v for v in result.violations if "fixtures" in v.path]
    assert fixture_hits == []


# ----------------------------------------------------------------------
# The repo's own invariant: the tree lints clean.
# ----------------------------------------------------------------------
def test_repo_tree_is_clean():
    repo_root = Path(__file__).parent.parent
    result = run(
        [str(repo_root / "src"), str(repo_root / "tests")],
        all_checkers(),
        root=repo_root,
    )
    assert result.errors == []
    assert result.violations == [], "\n".join(
        v.format() for v in result.violations
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exit_zero_on_clean(capsys):
    assert main([str(FIXTURES / "stats_ok.py")]) == 0
    captured = capsys.readouterr()
    assert "OK" in captured.err


def test_cli_exit_one_on_violations(capsys):
    assert main([str(FIXTURES / "stats_fail.py")]) == 1
    captured = capsys.readouterr()
    assert "RPR001" in captured.out
    assert "FAIL" in captured.err


def test_cli_exit_two_on_missing_path(capsys):
    assert main(["definitely/not/a/path"]) == 2


def test_cli_json_output(capsys):
    assert main([str(FIXTURES / "stats_fail.py"), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    codes = {v["code"] for v in payload["violations"]}
    assert codes == {"RPR001", "RPR002", "RPR003"}
    first = payload["violations"][0]
    assert {"code", "message", "path", "line", "col", "checker"} <= set(first)


def test_cli_select_filters_codes(capsys):
    assert main([str(FIXTURES / "stats_fail.py"), "--select", "RPR001"]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out and "RPR002" not in out and "RPR003" not in out


def test_cli_select_prefix_family(capsys):
    rc = main([str(FIXTURES / "determinism_fail.py"), "--select", "RPR01"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "RPR010" in out and "RPR013" in out


def test_cli_ignore_can_silence_everything(capsys):
    assert main([str(FIXTURES / "stats_fail.py"), "--ignore", "RPR"]) == 0


@pytest.mark.parametrize("option", ["--select", "--ignore"])
@pytest.mark.parametrize("bogus", ["RPR9", "rpr01", "RPRX", "RPR0601"])
def test_cli_unknown_prefix_exits_two(option, bogus, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([str(FIXTURES / "stats_fail.py"), option, bogus])
    assert excinfo.value.code == 2
    assert "matches no known code" in capsys.readouterr().err


def test_cli_format_json_matches_json_flag(capsys):
    assert main([str(FIXTURES / "stats_fail.py"), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert {v["code"] for v in payload["violations"]} == {
        "RPR001",
        "RPR002",
        "RPR003",
    }


def test_cli_format_github_emits_workflow_commands(capsys):
    assert main([str(FIXTURES / "stats_fail.py"), "--format", "github"]) == 1
    out = capsys.readouterr().out
    lines = [line for line in out.splitlines() if line]
    assert lines and all(line.startswith("::error file=") for line in lines)
    assert any("title=RPR001" in line for line in lines)
    assert all(",line=" in line and ",col=" in line for line in lines)


def test_cli_format_github_clean_tree_prints_nothing(capsys):
    assert main([str(FIXTURES / "stats_ok.py"), "--format", "github"]) == 0
    assert capsys.readouterr().out == ""


def test_cli_format_sarif_is_valid_minimal_log(capsys):
    assert main([str(FIXTURES / "stats_fail.py"), "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    (run_obj,) = payload["runs"]
    rule_ids = {r["id"] for r in run_obj["tool"]["driver"]["rules"]}
    assert rule_ids == set(catalog())
    results = run_obj["results"]
    assert {r["ruleId"] for r in results} == {"RPR001", "RPR002", "RPR003"}
    loc = results[0]["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"].endswith("stats_fail.py")
    assert loc["region"]["startLine"] >= 1


def test_cli_list_checkers(capsys):
    assert main(["--list-checkers"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR001", "RPR010", "RPR020", "RPR030", "RPR040"):
        assert code in out


def test_cli_syntax_error_reports_and_exits_two(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def nope(:\n")
    assert main([str(bad)]) == 2
    assert "syntax error" in capsys.readouterr().err
