# repro-analysis-scope: src simcore
"""Failing fixture for hot-path hygiene: RPR040, RPR041."""


class Simulator:
    def run(self, refs) -> int:
        total = 0
        for _ in refs:
            total += self.stats.l1.hits  # RPR040: chain re-read per ref
            total -= self.stats.l1.hits
        return total


def report(value: int) -> None:
    print(value)  # RPR041: library code printing to stdout


def replay(trace, warmup: int) -> int:
    refs = trace.addresses.tolist()
    total = 0
    for addr in refs[:warmup]:  # RPR042: materialised list sliced twice
        total += addr
    for addr in refs[warmup:]:
        total -= addr
    return total
