# repro-analysis-scope: src simcore
"""Failing fixture for numpy hygiene: RPR060, RPR061, RPR062, RPR063, RPR064."""

import numpy as np


def order_by_set(sets: "np.ndarray") -> "np.ndarray":
    # No kind= at all: numpy picks introsort.
    return np.argsort(sets)  # RPR060


def order_quick(sets: "np.ndarray") -> "np.ndarray":
    # An explicit *unstable* kind is just as wrong.
    return sets.argsort(kind="quicksort")  # RPR060


def count_hits(hits: "np.ndarray") -> int:
    mask = hits > 0
    # bool reduction accumulates at the platform C long (int32 on
    # 64-bit Windows).
    return int(mask.sum())  # RPR061


def prefix_misses(miss_flags: "np.ndarray") -> "np.ndarray":
    small = miss_flags.astype(np.int16)
    return np.cumsum(small)  # RPR061


def widen_per_chunk(table: "np.ndarray") -> int:
    total = 0
    for lo in range(0, 64, 8):
        wide = table.astype(np.int64)  # RPR062: loop-invariant copy
        total += int(wide[lo])
    return total


def pick_first_conflicts(distances: "np.ndarray") -> "np.ndarray":
    conflict = distances > 4
    # Materialises the masked selection, then slices the copy.
    return distances[conflict][:8]  # RPR063


def halve_counts(counts: "np.ndarray") -> "np.ndarray":
    scaled = counts.astype(np.int64)
    scaled /= 2  # RPR064: in-place true division on an int array
    return scaled
