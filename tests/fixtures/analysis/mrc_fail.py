# repro-analysis-scope: src simcore mrc
"""Failing fixture for the mrc scope: RPR010-013 and RPR040.

The miss-ratio-curve engine is simulation core: its sampled curves must
be byte-reproducible from the seed alone, and its per-reference loop is
a hot path.  Each helper below is the anti-pattern the registered scope
must catch.
"""

import os
import time

import numpy as np


def timestamp_points() -> float:
    return time.perf_counter()  # RPR010: wall clock in the engine


def sample_filter():
    return np.random.default_rng()  # RPR011: unseeded sampling RNG


def hash_salt() -> bytes:
    return os.urandom(8)  # RPR012: unseedable OS entropy


def curve_sizes(sizes: set) -> list:
    return list(set(sizes))  # RPR013: hash-ordered size ladder


class Sampler:
    def replay(self, refs) -> int:
        misses = 0
        for _ in refs:
            misses += self.profile.curve.cold  # RPR040: chain per ref
            misses -= self.profile.curve.cold
        return misses
