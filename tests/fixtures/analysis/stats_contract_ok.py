# repro-analysis-scope: src simcore engine-vector
"""Vector-engine side that honours the contract (runs with
``stats_contract_shared.py``): every scalar-written counter has a
vector-side write or whole-object delegation, no extras, no typos, and
an identical measurement cadence."""


def replay_clock() -> "ClockStats":
    clock = ClockStats()
    clock.cycles = 5
    clock.stalls = 1
    return clock


def stats_at(p: int) -> "SystemStats":
    stats = SystemStats()
    l1 = stats.l1
    l1.accesses = p
    l1.hits = p
    l1.misses = p - l1.hits
    stats.memory_accesses = p
    stats.timing = replay_clock()
    return stats


def vector_measure(ticker, faults, total):
    heartbeat_every = ticker.every if ticker is not None and ticker.every > 0 else 0
    tick_every = faults.sim_tick_every()
    for boundary in measure_boundaries(total, heartbeat_every, tick_every):
        emit(boundary)
