# repro-analysis-scope: src
"""Passing fixture for stats-completeness."""

from dataclasses import dataclass, fields


@dataclass
class GoodStats:
    hits: int = 0
    misses: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def merge(self, other: "GoodStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class PositionConfig:
    """Not stats-like (no Stats suffix): a rewinding reset is fine."""

    base: int = 0
    stride: int = 32

    def reset(self) -> None:
        self.base = 0
