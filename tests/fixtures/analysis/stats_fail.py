# repro-analysis-scope: src
"""Failing fixture for stats-completeness: RPR001, RPR002, RPR003."""

from dataclasses import dataclass


@dataclass
class BrokenStats:
    hits: int = 0
    misses: int = 0
    latency_sum: float = 0.0  # RPR003: float counter

    def reset(self) -> None:  # RPR001: hand-enumerated
        self.hits = 0
        self.misses = 0

    def merge(self, other: "BrokenStats") -> None:  # RPR002: drops latency_sum
        self.hits += other.hits
        self.misses += other.misses
