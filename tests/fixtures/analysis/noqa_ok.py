# repro-analysis-scope: src simcore
"""Every violation here is suppressed: the file must lint clean.

Exercises both the bare ``# repro: noqa`` form and the code-scoped
``# repro: noqa[CODE]`` form, plus a scoped suppression that does NOT
match (left in ``noqa_partial.py``, not here).
"""

import time


def stamp() -> float:
    return time.time()  # repro: noqa[RPR010] - fixture: deliberately suppressed


def report(value: int) -> None:
    print(value)  # repro: noqa
