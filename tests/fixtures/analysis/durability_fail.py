# repro-analysis-scope: src harness
"""Failing fixture for durability: RPR050, RPR051."""

import json
import os
from pathlib import Path


def save_report(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload))  # RPR050: bare truncating write


def save_manifest(path: Path, text: str) -> None:
    with open(path, "w") as fh:  # RPR050: raw open for writing
        fh.write(text)


def sloppy_atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(".tmp")
    tmp.write_bytes(text.encode())  # RPR050
    os.replace(tmp, path)  # RPR051: no fsync before the rename
