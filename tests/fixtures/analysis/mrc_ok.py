# repro-analysis-scope: src simcore mrc
"""Passing fixture for the mrc scope: seeded, ordered, hoisted."""

import numpy as np


def sample_filter(seed: int) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(seed))


def hash_salt(seed: int) -> int:
    return (seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF


def curve_sizes(sizes: set) -> list:
    return sorted(sizes)


class Sampler:
    def replay(self, refs) -> int:
        misses = 0
        cold = self.profile.curve.cold
        for _ in refs:
            misses += cold
        return misses
