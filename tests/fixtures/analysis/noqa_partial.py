# repro-analysis-scope: src simcore
"""A noqa for the *wrong* code must not suppress the finding."""

import time


def stamp() -> float:
    return time.time()  # repro: noqa[RPR041] - wrong code: RPR010 still fires
