# repro-analysis-scope: src simcore engine-scalar
"""Scalar-engine side of the stats-contract fixtures (RPR070-RPR072).

Declares the stats schema (a miniature ``SystemStats`` tree) and the
scalar reference engine's writes + measurement cadence.  The vector
side lives in ``stats_contract_fail.py`` / ``stats_contract_ok.py``;
the contract checker joins the two in ``finalize``.
"""

from dataclasses import dataclass, field


@dataclass
class LevelStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0


@dataclass
class ClockStats:
    cycles: int = 0
    stalls: int = 0


@dataclass
class SystemStats:
    l1: LevelStats = field(default_factory=LevelStats)
    timing: ClockStats = field(default_factory=ClockStats)
    memory_accesses: int = 0


class ScalarEngine:
    """Reference engine: writes accesses/hits/misses, memory_accesses,
    and the full clock — but never ``writebacks`` (tag-only model)."""

    def __init__(self) -> None:
        self.stats = SystemStats()
        self.clock = ClockStats()

    def access(self, hit: bool) -> None:
        stats = self.stats
        stats.l1.accesses += 1
        if hit:
            stats.l1.hits += 1
        else:
            stats.l1.misses += 1
        stats.memory_accesses += 1

    def finish(self) -> None:
        self.clock.cycles += 1
        self.clock.stalls += 1
        self.stats.timing = self.clock


def scalar_measure(ticker, faults, total):
    heartbeat_every = ticker.every if ticker is not None and ticker.every > 0 else 0
    tick_every = faults.sim_tick_every()
    for boundary in measure_boundaries(total, heartbeat_every, tick_every):
        checkpoint(boundary)
