# repro-analysis-scope: src obs
"""Passing fixture for obs-schema: both sides agree exactly."""

EVENT_TYPES = frozenset({"run_start", "run_end"})

REQUIRED_FIELDS = {
    "run_start": ("params",),
    "run_end": ("ok",),
}


def emit_all(log) -> None:
    log.emit("run_start", params={})
    log.emit("run_end", ok=True)
