# repro-analysis-scope: src simcore
"""Failing fixture for determinism: RPR010, RPR011, RPR012, RPR013."""

import os
import random
import time

import numpy as np


def stamp() -> float:
    return time.time()  # RPR010


def jitter() -> float:
    return random.random()  # RPR011: process-global RNG


def rng_unseeded():
    return np.random.default_rng()  # RPR011: no seed


def legacy_draw() -> float:
    return np.random.rand()  # RPR011: legacy global generator


def entropy() -> bytes:
    return os.urandom(8)  # RPR012


def ordered(blocks: set) -> list:
    out = []
    for block in {1, 2, 3}:  # RPR013: set iteration order
        out.append(block)
    return out + list(set(blocks))  # RPR013: list(set(...))
