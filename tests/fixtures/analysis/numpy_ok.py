# repro-analysis-scope: src simcore
"""Passing fixture for numpy hygiene: stable sorts, pinned accumulators,
hoisted conversions, single-step indexing, out-of-place arithmetic."""

import numpy as np


def order_by_set(sets: "np.ndarray") -> "np.ndarray":
    return np.argsort(sets, kind="stable")


def order_merge(sets: "np.ndarray") -> "np.ndarray":
    return sets.argsort(kind="mergesort")


def count_hits(hits: "np.ndarray") -> int:
    mask = hits > 0
    return int(mask.sum(dtype=np.int64))


def prefix_misses(miss_flags: "np.ndarray") -> "np.ndarray":
    return np.cumsum(miss_flags.astype(np.int64))


def sum_wide(values: "np.ndarray") -> int:
    # Proven 64-bit operand: no dtype= needed.
    wide = values.astype(np.int64)
    return int(wide.sum())


def widen_once(table: "np.ndarray") -> int:
    wide = table.astype(np.int64)
    total = 0
    for lo in range(0, 64, 8):
        total += int(wide[lo])
    return total


def widen_fresh_chunks(chunks: "np.ndarray") -> int:
    total = 0
    for chunk in chunks:
        # The receiver is rebound every iteration: nothing to hoist.
        scaled = chunk.astype(np.int64)
        total += int(scaled[0])
    return total


def pick_first_conflicts(distances: "np.ndarray") -> "np.ndarray":
    conflict_idx = np.flatnonzero(distances > 4)
    return distances[conflict_idx[:8]]


def halve_counts(counts: "np.ndarray") -> "np.ndarray":
    scaled = counts.astype(np.int64)
    return scaled // 2


def scale_ratios(ratios: "np.ndarray") -> "np.ndarray":
    # Float target: in-place division never changes the dtype.
    weights = ratios.astype(np.float64)
    weights /= 2.0
    return weights
