# repro-analysis-scope: src simcore
"""Passing fixture for determinism: everything seeded and ordered."""

import random

import numpy as np


def jitter(seed: int) -> float:
    return random.Random(seed).random()


def rng(seed: int) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(seed))


def ordered(blocks: set) -> list:
    return sorted(blocks)
