# repro-analysis-scope: src serve
"""Failing fixture for asyncio discipline: RPR080, RPR081."""

import time
from pathlib import Path


async def poll_for_work(path: Path) -> str:
    time.sleep(0.1)  # RPR080: blocks every session on the loop
    with open(path) as handle:  # RPR081: sync file I/O on the loop
        return handle.read()


async def persist_answer(path: Path, data: str) -> None:
    path.write_text(data)  # RPR081: Path convenience I/O on the loop
