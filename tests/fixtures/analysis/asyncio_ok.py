# repro-analysis-scope: src serve
"""Passing fixture: async code that never blocks the event loop."""

import asyncio
import time
from pathlib import Path


async def poll_for_work() -> float:
    await asyncio.sleep(0.1)  # yields, never blocks
    return time.monotonic()  # reading the clock is not sleeping


def load_blocking(path: Path) -> str:
    """Sync helper: file I/O is fine off the event loop."""
    return path.read_text()


async def persist_answer(path: Path, data: str) -> None:
    # The executor-helper pattern: the blocking work lives in a nested
    # sync def and runs off-loop.
    def write_blocking() -> None:
        path.write_text(data)

    loop = asyncio.get_running_loop()
    await loop.run_in_executor(None, write_blocking)
