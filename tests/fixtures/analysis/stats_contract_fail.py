# repro-analysis-scope: src simcore engine-vector
"""Vector-engine side, broken three ways (RPR070, RPR071, RPR072).

Run together with ``stats_contract_shared.py``: misses the scalar
engine's ``l1.misses`` write, writes ``l1.writebacks`` (which the
scalar engine never does) and the undeclared ``l1.hitz`` (typo), and
derives the heartbeat cadence differently.
"""


def replay_clock() -> "ClockStats":
    clock = ClockStats()
    clock.cycles = 5
    clock.stalls = 1
    return clock


def stats_at(p: int) -> "SystemStats":
    stats = SystemStats()
    l1 = stats.l1
    l1.accesses = p
    l1.hits = p  # no l1.misses write anywhere -> RPR070
    l1.writebacks = p  # scalar engine never writes this -> RPR070
    l1.hitz = p  # undeclared field (typo) -> RPR071
    stats.memory_accesses = p
    stats.timing = replay_clock()
    return stats


def vector_measure(ticker, faults, total):
    heartbeat_every = ticker.every if ticker is not None else 0  # RPR072
    tick_every = faults.sim_tick_every()
    for boundary in measure_boundaries(total, heartbeat_every, tick_every):
        emit(boundary)
