# repro-analysis-scope: src simcore
"""Passing fixture for hot-path hygiene: hoisted chain, no prints."""


class Simulator:
    def run(self, refs) -> int:
        total = 0
        l1_stats = self.stats.l1
        for _ in refs:
            total += l1_stats.hits
            total -= l1_stats.hits
        return total
