# repro-analysis-scope: src simcore
"""Passing fixture for hot-path hygiene: hoisted chain, no prints."""


from itertools import islice


class Simulator:
    def run(self, refs) -> int:
        total = 0
        l1_stats = self.stats.l1
        for _ in refs:
            total += l1_stats.hits
            total -= l1_stats.hits
        return total


def replay(trace, warmup: int) -> int:
    # A single slice of a tolist() result is fine (no repeat copying),
    # and consuming one shared iterator is the preferred shape.
    refs = iter(trace.addresses.tolist())
    total = sum(islice(refs, warmup))
    for addr in refs:
        total -= addr
    return total
