# repro-analysis-scope: src harness
"""Passing fixture for concurrency: lifecycle under the lock."""

import threading
from concurrent.futures import ThreadPoolExecutor

_proc_lifecycle_lock = threading.Lock()


def supervised(ctx, spec) -> None:
    proc = ctx.Process(target=spec)
    with _proc_lifecycle_lock:
        proc.start()
    proc.terminate()  # signal-only: no waitpid, allowed outside the lock
    with _proc_lifecycle_lock:
        proc.join(5)
        proc.close()


def schedule(specs) -> dict:
    results = {}
    results_lock = threading.Lock()

    def work(spec) -> None:
        with results_lock:
            results[spec] = 1

    with ThreadPoolExecutor() as pool:
        for spec in specs:
            pool.submit(work, spec)
    return results
