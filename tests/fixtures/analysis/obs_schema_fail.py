# repro-analysis-scope: src obs
"""Failing fixture for obs-schema: RPR030, RPR031, RPR032."""

EVENT_TYPES = frozenset({"run_start", "ghost_event"})  # RPR031/RPR032

REQUIRED_FIELDS = {
    "run_start": ("params",),
    "orphan_event": (),  # RPR031/RPR032
}


def emit_all(log) -> None:
    log.emit("run_start", params={})
    log.emit("mystery_event", x=1)  # RPR030: not in the schema
