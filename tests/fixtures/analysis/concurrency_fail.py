# repro-analysis-scope: src harness
"""Failing fixture for concurrency: RPR020, RPR021, RPR022."""

import os
from concurrent.futures import ThreadPoolExecutor


def reap_directly(pid: int) -> None:
    os.waitpid(pid, 0)  # RPR020


def race(ctx, spec) -> None:
    proc = ctx.Process(target=spec)
    proc.start()  # RPR021: start outside the lifecycle lock
    proc.join()  # RPR021
    proc.close()  # RPR021


def schedule(specs) -> dict:
    results = {}

    def work(spec) -> None:
        results[spec] = 1  # RPR022: bare shared-dict mutation

    with ThreadPoolExecutor() as pool:
        for spec in specs:
            pool.submit(work, spec)
    return results
