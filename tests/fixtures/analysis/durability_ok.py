# repro-analysis-scope: src harness
"""Passing fixture for durability: fsync'd writes, append-mode logs."""

import json
import os
from pathlib import Path


def atomic_write_text(path: Path, text: str) -> None:
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w") as fh:  # repro: noqa[RPR050] - the helper itself
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)  # ok: data fsync'd above


def save_report(path: Path, payload: dict) -> None:
    atomic_write_text(path, json.dumps(payload))


def append_event(path: Path, line: str) -> None:
    with open(path, "a") as fh:  # ok: append-mode event stream
        fh.write(line)


def read_manifest(path: Path) -> dict:
    with open(path) as fh:  # ok: reads are not writes
        return dict(json.load(fh))
