"""Tests for the Hill-definition oracle and the accuracy harness."""

from repro.cache.geometry import CacheGeometry
from repro.core.accuracy import measure_accuracy, sweep_tag_bits
from repro.core.classification import MissClass
from repro.core.ground_truth import GroundTruthClassifier


class TestGroundTruth:
    def test_first_touch_is_compulsory(self, tiny):
        gt = GroundTruthClassifier(tiny)
        assert gt.classify_miss(0x1000) is MissClass.COMPULSORY
        gt.observe(0x1000)

    def test_conflict_when_fa_would_hit(self, tiny):
        """Ping-pong in one set of a 4-line cache: FA keeps both lines."""
        gt = GroundTruthClassifier(tiny)
        a = 0x1000
        b = a + tiny.size
        for addr in (a, b):
            gt.classify_miss(addr)
            gt.observe(addr)
        # Second round: both lines are FA-resident -> conflict.
        assert gt.classify_miss(a) is MissClass.CONFLICT
        gt.observe(a)
        assert gt.classify_miss(b) is MissClass.CONFLICT

    def test_capacity_when_fa_would_miss(self, tiny):
        """A sweep longer than the whole cache: revisits are capacity."""
        gt = GroundTruthClassifier(tiny)
        lines = tiny.num_lines
        sweep = [0x1000 + i * tiny.line_size for i in range(lines * 3)]
        for addr in sweep:
            gt.classify_miss(addr)
            gt.observe(addr)
        assert gt.classify_miss(sweep[0]) is MissClass.CAPACITY

    def test_counters(self, tiny):
        gt = GroundTruthClassifier(tiny)
        gt.classify_miss(0x1000)
        gt.observe(0x1000)
        assert gt.miss_breakdown() == {
            "compulsory": 1,
            "conflict": 0,
            "capacity": 0,
        }
        assert gt.total_classified == 1


class TestAccuracyHarness:
    def test_pure_ping_pong_is_perfectly_classified(self, dm16k, ping_pong):
        res = measure_accuracy(ping_pong.addresses, dm16k)
        # After the two compulsory misses, every miss is a true conflict
        # and the MCT catches every one of them.
        assert res.conflict_accuracy == 100.0
        assert res.classification.true_conflicts == len(ping_pong) - 2
        assert res.compulsory_misses == 2

    def test_pure_streaming_is_capacity(self, dm16k):
        addrs = [0x100000 + i * 64 for i in range(2000)] * 2
        res = measure_accuracy(addrs, dm16k)
        assert res.classification.true_conflicts == 0
        assert res.capacity_accuracy == 100.0
        assert res.miss_rate == 100.0

    def test_hits_are_not_classified(self, dm16k):
        addrs = [0x1000, 0x1000, 0x1000]
        res = measure_accuracy(addrs, dm16k)
        assert res.classification.total == 1
        assert res.cache.hits == 2

    def test_conflict_fraction(self, dm16k, ping_pong):
        res = measure_accuracy(ping_pong.addresses, dm16k)
        assert res.conflict_fraction > 90

    def test_two_way_cache_accuracy(self, w2_16k):
        """Three-way ping-pong in a 2-way cache: conflicts identified."""
        a = 0x100000
        addrs = [a, a + w2_16k.size, a + 2 * w2_16k.size] * 30
        res = measure_accuracy(addrs, w2_16k)
        assert res.conflict_accuracy == 100.0

    def test_sweep_tag_bits_shapes(self, dm16k):
        addrs = ([0x100000, 0x100000 + dm16k.size] * 30
                 + [0x200000 + i * 64 for i in range(600)])
        results = sweep_tag_bits(addrs, dm16k, [1, 8, None])
        assert len(results) == 3
        # Fewer bits can only shift classifications toward conflict:
        # capacity accuracy must be monotonically non-decreasing in bits.
        caps = [r.capacity_accuracy for r in results]
        assert caps[0] <= caps[1] <= caps[2]
        # Conflict accuracy is never hurt by fewer bits.
        confs = [r.conflict_accuracy for r in results]
        assert confs[0] >= confs[2]

    def test_deterministic(self, dm16k, ping_pong):
        r1 = measure_accuracy(ping_pong.addresses, dm16k)
        r2 = measure_accuracy(ping_pong.addresses, dm16k)
        assert r1.classification == r2.classification
