"""Tests for the mixer and the SPEC95-analog workloads."""

import numpy as np
import pytest

from repro.cache.geometry import CacheGeometry
from repro.workloads.mixes import Component, interleave, region_base
from repro.workloads.spec_analogs import (
    ACCURACY_SUITE,
    EVAL_SUITE,
    SUITE,
    build,
    build_suite,
)
from repro.workloads.streams import HotSetStream, StridedStream


class TestComponent:
    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            Component(HotSetStream(base=0), weight=0)

    def test_rejects_bad_store_fraction(self):
        with pytest.raises(ValueError):
            Component(HotSetStream(base=0), store_fraction=1.5)


class TestInterleave:
    def comp(self, base, weight=1.0):
        return Component(StridedStream(base=base, stride=8, span=1 << 16), weight)

    def test_length_and_determinism(self):
        comps = [self.comp(0), self.comp(1 << 22)]
        t1 = interleave(comps, 1000, seed=3)
        t2 = interleave(comps, 1000, seed=3)
        assert len(t1) == 1000
        assert (t1.addresses == t2.addresses).all()
        assert (t1.is_load == t2.is_load).all()

    def test_different_seed_differs(self):
        comps = [self.comp(0), self.comp(1 << 22)]
        t1 = interleave(comps, 1000, seed=3)
        t2 = interleave(comps, 1000, seed=4)
        assert (t1.addresses != t2.addresses).any()

    def test_weights_respected(self):
        heavy = Component(HotSetStream(base=0, size=1024), weight=9.0)
        light = Component(HotSetStream(base=1 << 22, size=1024), weight=1.0)
        t = interleave([heavy, light], 8000, seed=0)
        heavy_frac = (t.addresses < (1 << 22)).mean()
        assert 0.8 < heavy_frac < 0.98

    def test_gaps_follow_stream(self):
        fast = Component(HotSetStream(base=0, size=1024, gap=2))
        t = interleave([fast], 100, seed=0)
        assert (t.gaps == 2).all()

    def test_store_fraction_zero_means_all_loads(self):
        c = Component(HotSetStream(base=0, size=1024), store_fraction=0.0)
        t = interleave([c], 500, seed=0)
        assert t.is_load.all()

    def test_store_fraction_mixes_stores(self):
        c = Component(HotSetStream(base=0, size=1024), store_fraction=0.5)
        t = interleave([c], 2000, seed=0)
        frac = 1.0 - t.is_load.mean()
        assert 0.4 < frac < 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            interleave([], 10)
        with pytest.raises(ValueError):
            interleave([self.comp(0)], -1)
        with pytest.raises(ValueError):
            interleave([self.comp(0)], 10, chunk=0)


class TestRegionBase:
    def test_distinct_regions(self):
        bases = [region_base(i) for i in range(8)]
        assert len(set(b >> 22 for b in bases)) == 8

    def test_default_skew_varies(self):
        g = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)
        sets = {g.set_index(region_base(i)) for i in range(4)}
        assert len(sets) == 4

    def test_explicit_set_offset(self):
        g = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)
        assert g.set_index(region_base(3, set_offset=192)) == 192

    def test_rejects_negative_slot(self):
        with pytest.raises(ValueError):
            region_base(-1)


class TestSuite:
    def test_registry_covers_17_benchmarks(self):
        assert len(SUITE) == 17
        assert set(EVAL_SUITE) <= set(ACCURACY_SUITE) == set(SUITE)

    def test_every_benchmark_builds(self):
        for name in SUITE:
            t = build(name, 2000)
            assert len(t) == 2000
            assert t.name == name

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            build("spice", 100)

    def test_build_suite_defaults_to_eval(self):
        traces = build_suite(n_refs=500)
        assert set(traces) == set(EVAL_SUITE)

    def test_determinism(self):
        a = build("tomcatv", 5000, seed=1)
        b = build("tomcatv", 5000, seed=1)
        assert (a.addresses == b.addresses).all()

    def test_category_metadata(self):
        assert SUITE["tomcatv"].category == "fp"
        assert SUITE["gcc"].category == "int"


class TestCalibration:
    """The analogs' contract with the paper's methodology."""

    GEO = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)

    def _miss_rate(self, name, n=30_000):
        from repro.cache.set_assoc import SetAssociativeCache

        cache = SetAssociativeCache(self.GEO)
        for addr in build(name, n).addresses:
            cache.access(int(addr))
        return cache.stats.miss_rate

    def test_tomcatv_is_memory_hungry(self):
        assert self._miss_rate("tomcatv") > 30  # paper: ~38%

    def test_m88ksim_is_not(self):
        assert self._miss_rate("m88ksim") < 6

    def test_suite_has_conflict_and_capacity_mix(self):
        """Every EVAL benchmark must show a nontrivial mix of both miss
        kinds — the paper's selection criterion for Section 5."""
        from repro.core.accuracy import measure_accuracy

        for name in EVAL_SUITE:
            t = build(name, 30_000)
            res = measure_accuracy(t.addresses, self.GEO)
            assert 4.0 < res.conflict_fraction < 96.0, name
