"""The vectorised engine is a byte-identical drop-in for the scalar loop.

The vector engine (:mod:`repro.system.vector`) re-derives every counter
of :class:`~repro.cache.stats.SystemStats` with set-partitioned numpy
algebra instead of a per-reference Python loop.  Nothing here tolerates
approximation: every test compares ``json.dumps(..., sort_keys=True)``
of the full ``as_dict()`` tree, so a single off-by-one in any counter —
or a float that differs in the last ulp of the timing replay — fails.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import events as obs_events
from repro.obs.config import ObsConfig
from repro.obs.validate import main as validate_main
from repro.obs.validate import reconcile_events, validate_lines
from repro.system.config import MachineConfig, PAPER_MACHINE, SLOW_BUS_MACHINE
from repro.system.policies import AssistConfig, BASELINE, ExclusionMode
from repro.system.simulator import ENGINE_ENV_VAR, simulate
from repro.system.vector import (
    simulate_vector,
    vector_ineligibility,
    vector_supported,
)
from repro.workloads.spec_analogs import EVAL_SUITE, build
from repro.workloads.trace import Trace


def canon(stats) -> str:
    """Canonical byte string for equality: sorted-keys JSON of as_dict."""
    return json.dumps(stats.as_dict(), sort_keys=True)


def machine_with_assoc(assoc: int, base: MachineConfig = PAPER_MACHINE):
    """The base machine with its L1 widened to ``assoc`` ways."""
    return replace(base, l1=replace(base.l1, assoc=assoc))


#: References as (block, is_load, gap) so the random traces exercise the
#: writeback algebra and the issue-gap timing replay, not just hits.
sim_refs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1023),
        st.booleans(),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=400,
)


def make_trace(refs) -> Trace:
    return Trace(
        [b * 64 for b, _, _ in refs],
        is_load=[ld for _, ld, _ in refs],
        gaps=[g for _, _, g in refs],
        name="prop",
    )


class TestByteIdentity:
    """vector == scalar, byte for byte, over random and suite traces."""

    @settings(max_examples=40, deadline=None)
    @given(refs=sim_refs, data=st.data())
    def test_random_traces_random_warmup(self, refs, data):
        warmup = data.draw(st.integers(min_value=0, max_value=len(refs) - 1))
        trace = make_trace(refs)
        scalar = simulate(trace, BASELINE, warmup=warmup, engine="scalar")
        vector = simulate_vector(trace, BASELINE, warmup=warmup)
        assert canon(vector) == canon(scalar)

    @settings(max_examples=40, deadline=None)
    @given(refs=sim_refs, data=st.data())
    def test_random_traces_random_assoc(self, refs, data):
        # The general set-associative pass (deaths-FIFO victims) against
        # the scalar per-way LRU replay, over every supported width.
        warmup = data.draw(st.integers(min_value=0, max_value=len(refs) - 1))
        assoc = data.draw(st.sampled_from([1, 2, 4, 8]))
        machine = machine_with_assoc(assoc)
        trace = make_trace(refs)
        scalar = simulate(trace, BASELINE, machine, warmup=warmup, engine="scalar")
        vector = simulate_vector(trace, BASELINE, machine, warmup=warmup)
        assert canon(vector) == canon(scalar)

    @settings(max_examples=15, deadline=None)
    @given(refs=sim_refs, data=st.data())
    def test_random_traces_partial_tags_assoc(self, refs, data):
        # Partial MCT tags bias classification toward conflict — the
        # stress case for the victim-tag masking in the associative pass.
        bits = data.draw(st.sampled_from([1, 4, 8, 63]))
        policy = AssistConfig(name=f"tag{bits}", mct_tag_bits=bits)
        machine = machine_with_assoc(data.draw(st.sampled_from([2, 4])))
        trace = make_trace(refs)
        scalar = simulate(trace, policy, machine, warmup=0, engine="scalar")
        vector = simulate_vector(trace, policy, machine, warmup=0)
        assert canon(vector) == canon(scalar)

    @settings(max_examples=10, deadline=None)
    @given(refs=sim_refs)
    def test_random_traces_slow_bus(self, refs):
        trace = make_trace(refs)
        scalar = simulate(
            trace, BASELINE, SLOW_BUS_MACHINE, warmup=0, engine="scalar"
        )
        vector = simulate_vector(trace, BASELINE, SLOW_BUS_MACHINE, warmup=0)
        assert canon(vector) == canon(scalar)

    @settings(max_examples=10, deadline=None)
    @given(refs=sim_refs)
    def test_random_traces_slow_bus_assoc(self, refs):
        machine = machine_with_assoc(4, SLOW_BUS_MACHINE)
        trace = make_trace(refs)
        scalar = simulate(trace, BASELINE, machine, warmup=0, engine="scalar")
        vector = simulate_vector(trace, BASELINE, machine, warmup=0)
        assert canon(vector) == canon(scalar)

    @pytest.mark.parametrize("bench", EVAL_SUITE)
    @pytest.mark.parametrize("warmup", [0, 1, 1500])
    def test_suite_benchmarks(self, bench, warmup):
        trace = build(bench, 6_000, 0)
        scalar = simulate(trace, BASELINE, warmup=warmup, engine="scalar")
        vector = simulate(trace, BASELINE, warmup=warmup, engine="vector")
        assert canon(vector) == canon(scalar)

    @pytest.mark.parametrize("bench", EVAL_SUITE)
    @pytest.mark.parametrize("assoc", [2, 4, 8])
    def test_suite_benchmarks_assoc(self, bench, assoc):
        machine = machine_with_assoc(assoc)
        trace = build(bench, 6_000, 0)
        scalar = simulate(trace, BASELINE, machine, warmup=500, engine="scalar")
        vector = simulate(trace, BASELINE, machine, warmup=500, engine="vector")
        assert canon(vector) == canon(scalar)

    def test_general_pass_subsumes_direct_mapped(self):
        # At assoc == 1 the deaths-FIFO pass and the shift-compare fast
        # path must produce identical flag arrays — the dispatch choice
        # between them is purely a performance decision.
        import numpy as np

        from repro.system.vector import (
            _l1_direct_mapped_pass,
            _l1_set_assoc_pass,
        )

        trace = build("gcc", 5_000, 1)
        blocks = trace.addresses >> PAPER_MACHINE.l1.offset_bits
        writes = np.logical_not(trace.is_load)
        dm = _l1_direct_mapped_pass(blocks, writes, PAPER_MACHINE.l1, BASELINE)
        general = _l1_set_assoc_pass(blocks, writes, PAPER_MACHINE.l1, BASELINE)
        for name, a, b in zip(("hit", "evict", "wb", "conflict"), dm, general):
            assert np.array_equal(a, b), name


class TestEngineDispatch:
    def test_vector_supported_gating(self):
        from repro.buffers import victim

        assert vector_supported(BASELINE, PAPER_MACHINE)
        # Any assist buffer disqualifies the cell (per-reference buffer
        # state is inherently sequential)...
        assert not vector_supported(victim.filter_both(), PAPER_MACHINE)
        # ...but a set-associative L1 no longer does: the general pass
        # replays per-set LRU with stack distances.
        l2ish = replace(PAPER_MACHINE, l1=PAPER_MACHINE.l2)
        assert vector_supported(BASELINE, l2ish)
        assert vector_supported(BASELINE, machine_with_assoc(8))

    @pytest.mark.parametrize(
        ("policy_kwargs", "expect"),
        [
            ({"victim_fills": True}, "victim fills"),
            ({"prefetch": True}, "next-line prefetch"),
            ({"exclusion": ExclusionMode.CAPACITY}, "capacity exclusion"),
            ({}, "raw assist buffer"),
        ],
        ids=["victim-fills", "prefetch", "exclusion", "raw-buffer"],
    )
    def test_ineligibility_blames_the_feature(self, policy_kwargs, expect):
        policy = AssistConfig(name="culprit", buffer_entries=4, **policy_kwargs)
        reason = vector_ineligibility(policy, PAPER_MACHINE)
        assert reason is not None
        assert expect in reason
        assert "'culprit'" in reason

    def test_eligible_policy_has_no_ineligibility_reason(self):
        assert vector_ineligibility(BASELINE, PAPER_MACHINE) is None
        assert vector_ineligibility(BASELINE, machine_with_assoc(4)) is None

    def test_unknown_engine_rejected(self):
        trace = build("gcc", 100, 0)
        with pytest.raises(ValueError, match="bogus"):
            simulate(trace, BASELINE, engine="bogus")

    def test_vector_demand_raises_with_blame(self):
        # engine="vector" is a demand, not a preference: an ineligible
        # cell must fail loudly and say which feature forced scalar.
        from repro.buffers import victim

        trace = build("gcc", 2_000, 0)
        with pytest.raises(ValueError, match="assist buffer") as excinfo:
            simulate(trace, victim.filter_both(), warmup=100, engine="vector")
        assert "engine='auto'" in str(excinfo.value)

    def test_simulate_vector_raises_with_blame(self):
        from repro.buffers import victim

        trace = build("gcc", 500, 0)
        with pytest.raises(ValueError, match="not vector-eligible"):
            simulate_vector(trace, victim.filter_both(), warmup=0)

    def test_auto_falls_back_for_unsupported_policy(self):
        from repro.buffers import victim

        trace = build("gcc", 2_000, 0)
        policy = victim.filter_both()
        auto = simulate(trace, policy, warmup=100, engine="auto")
        scalar = simulate(trace, policy, warmup=100, engine="scalar")
        assert canon(auto) == canon(scalar)

    def test_env_var_steers_auto_but_not_explicit(self, monkeypatch):
        trace = build("swim", 2_000, 0)
        monkeypatch.setenv(ENGINE_ENV_VAR, "scalar")
        via_env = simulate(trace, BASELINE, warmup=100)
        scalar = simulate(trace, BASELINE, warmup=100, engine="scalar")
        assert canon(via_env) == canon(scalar)
        # Explicit engine= wins over the environment.
        monkeypatch.setenv(ENGINE_ENV_VAR, "vector")
        explicit = simulate(trace, BASELINE, warmup=100, engine="scalar")
        assert canon(explicit) == canon(scalar)

    def test_env_var_validated(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "turbo")
        with pytest.raises(ValueError, match="turbo"):
            simulate(build("gcc", 100, 0), BASELINE)


class TestInstrumentedCampaign:
    """A metrics-on vector run emits the same event stream contract."""

    def _run(
        self,
        tmp_path,
        engine,
        heartbeat_every=512,
        machine=PAPER_MACHINE,
        policy=BASELINE,
        tag="",
    ):
        path = tmp_path / f"events_{engine}{tag}.jsonl"
        trace = build("gcc", 4_000, 3)
        obs_events.activate(
            ObsConfig(events_path=str(path), heartbeat_every=heartbeat_every),
            cell="vector-test",
        )
        try:
            stats = simulate(trace, policy, machine, warmup=500, engine=engine)
        finally:
            obs_events.deactivate()
        return path, stats

    @staticmethod
    def _canonical_events(path):
        events, problems = validate_lines(path.read_text().splitlines())
        assert problems == []
        volatile = {"ts", "pid", "sim", "wall_s", "refs_per_sec"}
        return [
            {k: v for k, v in e.items() if k not in volatile} for e in events
        ]

    def test_event_streams_identical(self, tmp_path):
        vec_path, vec_stats = self._run(tmp_path, "vector")
        sc_path, sc_stats = self._run(tmp_path, "scalar")
        assert canon(vec_stats) == canon(sc_stats)
        assert self._canonical_events(vec_path) == self._canonical_events(
            sc_path
        )

    def test_event_streams_identical_assoc(self, tmp_path):
        # Same contract on a 2-way L1, where the general set-associative
        # pass (not the shift-compare fast path) feeds the replay.
        machine = machine_with_assoc(2)
        vec_path, vec_stats = self._run(tmp_path, "vector", machine=machine)
        sc_path, sc_stats = self._run(tmp_path, "scalar", machine=machine)
        assert canon(vec_stats) == canon(sc_stats)
        assert self._canonical_events(vec_path) == self._canonical_events(
            sc_path
        )

    def test_auto_fallback_emits_blame_event(self, tmp_path):
        from repro.buffers import victim

        policy = victim.filter_both()
        path, _ = self._run(tmp_path, "auto", policy=policy, tag="_fallback")
        events, problems = validate_lines(path.read_text().splitlines())
        assert problems == []
        falls = [e for e in events if e["type"] == "engine_fallback"]
        assert len(falls) == 1
        assert falls[0]["policy"] == policy.name
        assert "assist buffer" in falls[0]["reason"]
        # The extra event must not break stream reconciliation.
        assert reconcile_events(events) == (1, [])

    def test_eligible_auto_run_emits_no_fallback_event(self, tmp_path):
        path, _ = self._run(tmp_path, "auto", tag="_eligible")
        events, problems = validate_lines(path.read_text().splitlines())
        assert problems == []
        assert [e for e in events if e["type"] == "engine_fallback"] == []

    def test_validate_reconcile_cli_passes(self, tmp_path, capsys):
        path, _ = self._run(tmp_path, "vector")
        assert validate_main([str(path), "--reconcile"]) == 0
        events, _ = validate_lines(path.read_text().splitlines())
        assert reconcile_events(events) == (1, [])

    def test_heartbeat_cadence_preserved(self, tmp_path):
        path, _ = self._run(tmp_path, "vector", heartbeat_every=700)
        events, problems = validate_lines(path.read_text().splitlines())
        assert problems == []
        beats = [e for e in events if e["type"] == "heartbeat"]
        # 3500 measured refs at a 700 cadence: beats at 700..2800 (the
        # 3500 boundary is the end of the run, which emits sim_end, not
        # a heartbeat) — the vector engine replays the same contract.
        assert [b["refs_done"] for b in beats] == [700, 1400, 2100, 2800]
