"""Tests for the shared-cache multithreading system (§5.6)."""

import pytest

from repro.buffers.amb import vict_pref
from repro.system.multithreaded import (
    SharedRunResult,
    sharing_penalties,
    simulate_shared,
)
from repro.system.policies import BASELINE
from repro.workloads.spec_analogs import build
from repro.workloads.trace import Trace


class TestSimulateShared:
    def test_requires_threads(self):
        with pytest.raises(ValueError):
            simulate_shared([])

    def test_requires_unique_names(self):
        with pytest.raises(ValueError):
            simulate_shared([build("go", 100), build("go", 100)])

    def test_rejects_bad_warmup_fraction(self):
        with pytest.raises(ValueError):
            simulate_shared([build("go", 100)], warmup_fraction=1.0)

    def test_per_thread_counters_sum_to_combined(self):
        traces = [build("go", 5_000), build("li", 5_000)]
        res = simulate_shared(traces, BASELINE)
        assert isinstance(res, SharedRunResult)
        total_accesses = sum(t.accesses for t in res.threads)
        assert total_accesses == res.combined.l1.accesses == 10_000
        assert sum(t.l1_hits for t in res.threads) == res.combined.l1.hits
        assert sum(t.misses for t in res.threads) == res.combined.l1.misses
        assert (
            sum(t.conflict_misses for t in res.threads)
            == res.combined.conflict_misses_predicted
        )

    def test_thread_lookup(self):
        res = simulate_shared([build("go", 1_000), build("li", 1_000)])
        assert res.thread("go").name == "go"
        with pytest.raises(KeyError):
            res.thread("gcc")

    def test_truncates_to_shortest(self):
        res = simulate_shared([build("go", 2_000), build("li", 500)])
        assert res.combined.l1.accesses == 1_000

    def test_warmup_fraction_discards_prefix(self):
        traces = [build("go", 4_000), build("li", 4_000)]
        res = simulate_shared(traces, BASELINE, warmup_fraction=0.5)
        assert res.combined.l1.accesses == 4_000  # second half only

    def test_sharing_manufactures_conflicts(self):
        """Two solo-quiet programs develop cross-thread conflicts when
        sharing — the §5.6 premise."""
        a, b = build("go", 8_000), build("li", 8_000)
        shared = simulate_shared([a, b], BASELINE, warmup_fraction=0.25)
        solo_conf = 0
        for t in (a, b):
            res = simulate_shared([t], BASELINE, warmup_fraction=0.25)
            solo_conf += res.combined.conflict_misses_predicted
        assert shared.combined.conflict_misses_predicted > solo_conf

    def test_amb_recovers_part_of_the_penalty(self):
        traces = [build("tomcatv", 8_000), build("gcc", 8_000)]
        base = simulate_shared(traces, BASELINE, warmup_fraction=0.25)
        amb = simulate_shared(traces, vict_pref(), warmup_fraction=0.25)
        base_miss = sum(t.miss_rate for t in base.threads)
        amb_miss = sum(t.miss_rate for t in amb.threads)
        assert amb_miss < base_miss

    def test_total_conflict_rate(self):
        res = simulate_shared([build("tomcatv", 3_000), build("gcc", 3_000)])
        assert 0 < res.total_conflict_rate < 100


class TestSharingPenalties:
    def test_reports_per_thread(self):
        traces = [build("go", 6_000), build("li", 6_000)]
        pens = sharing_penalties(traces, warmup_fraction=0.25)
        assert [p.name for p in pens] == ["go", "li"]
        for p in pens:
            assert p.shared_miss_rate >= 0
            assert p.penalty == pytest.approx(
                p.shared_miss_rate - p.solo_miss_rate
            )

    def test_conflicting_pair_pays_a_penalty(self):
        # go and li both keep hot sets low in the index space; sharing a
        # DM cache forces cross-thread conflicts.
        traces = [build("go", 8_000), build("li", 8_000)]
        pens = sharing_penalties(traces, warmup_fraction=0.25)
        assert sum(p.penalty for p in pens) > 1.0


class TestExperimentModules:
    def test_sec56_runs(self):
        from repro.experiments.base import ExperimentParams
        from repro.experiments.sec56_multithreaded import run

        res = run(ExperimentParams(n_refs=6_000, warmup=2_000))
        assert len(res.rows) == 4
        penalty = res.headers.index("penalty")
        assert all(row[penalty] > -1.0 for row in res.rows)

    def test_assoc_sweep_runs(self):
        from repro.experiments.assoc_sweep import run
        from repro.experiments.base import ExperimentParams

        res = run(ExperimentParams(n_refs=8_000, warmup=0,
                                   suite=["tomcatv", "gcc"]))
        assert res.column("assoc") == [1, 2, 4, 8]
        # Conflict share falls with associativity but persists (§5.6).
        shares = res.column("conflict share %")
        assert shares[0] > shares[-1] > 0
        # Biased replacement never loses at higher associativity.
        lru = res.column("LRU miss %")
        biased = res.column("biased miss %")
        for i in (2, 3):  # 4-way, 8-way
            assert biased[i] <= lru[i] + 0.3

    def test_runner_registry_includes_extensions(self):
        from repro.experiments.runner import EXPERIMENTS

        assert "sec56" in EXPERIMENTS
        assert "assoc" in EXPERIMENTS
