"""Unit tests for the MAT (Johnson & Hwu) and miss-history tables."""

import pytest

from repro.buffers.history import MissHistoryTable
from repro.buffers.mat import MemoryAccessTable
from repro.core.classification import MissClass


class TestMAT:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            MemoryAccessTable(entries=1000)
        with pytest.raises(ValueError):
            MemoryAccessTable(region_size=1000)

    def test_counts_accumulate_per_region(self):
        mat = MemoryAccessTable()
        for _ in range(5):
            mat.record_access(0x1000)
        assert mat.count_for(0x1000) == 5
        assert mat.count_for(0x1000 + 512) == 5  # same 1KB region
        assert mat.count_for(0x1000 + 1024) == 0  # next region

    def test_counter_saturates(self):
        mat = MemoryAccessTable(max_count=3)
        for _ in range(10):
            mat.record_access(0)
        assert mat.count_for(0) == 3

    def test_replacement_inherits_half(self):
        mat = MemoryAccessTable(entries=4, region_size=1024)
        for _ in range(8):
            mat.record_access(0)          # region 0, slot 0
        conflicting = 4 * 1024            # region 4 -> same slot 0
        mat.record_access(conflicting)
        assert mat.count_for(conflicting) == 8 // 2 + 1
        assert mat.count_for(0) == 0      # tag replaced
        assert mat.replacements == 1

    def test_bypass_decision(self):
        mat = MemoryAccessTable()
        hot, cold = 0x10000, 0x20000
        for _ in range(10):
            mat.record_access(hot)
        mat.record_access(cold)
        assert mat.should_bypass(cold, hot)       # cold line vs hot victim
        assert not mat.should_bypass(hot, cold)   # hot line vs cold victim

    def test_no_bypass_into_empty_way(self):
        mat = MemoryAccessTable()
        assert not mat.should_bypass(0x1000, None)

    def test_equal_counts_do_not_bypass(self):
        mat = MemoryAccessTable()
        mat.record_access(0x10000)
        mat.record_access(0x20000)
        assert not mat.should_bypass(0x10000, 0x20000)

    def test_reset(self):
        mat = MemoryAccessTable()
        mat.record_access(0x1000)
        mat.reset()
        assert mat.count_for(0x1000) == 0
        assert mat.accesses == 0


class TestHistoryTable:
    def test_rejects_compulsory_tracking(self):
        with pytest.raises(ValueError):
            MissHistoryTable(MissClass.COMPULSORY)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            MissHistoryTable(MissClass.CAPACITY, threshold=5, max_count=3)

    def test_flags_after_threshold(self):
        h = MissHistoryTable(MissClass.CAPACITY, threshold=2)
        h.record_miss(0x1000, MissClass.CAPACITY)
        assert not h.is_flagged(0x1000)
        h.record_miss(0x1000, MissClass.CAPACITY)
        assert h.is_flagged(0x1000)

    def test_compulsory_counts_as_capacity(self):
        h = MissHistoryTable(MissClass.CAPACITY, threshold=2)
        h.record_miss(0x1000, MissClass.COMPULSORY)
        h.record_miss(0x1000, MissClass.COMPULSORY)
        assert h.is_flagged(0x1000)

    def test_opposite_class_decrements(self):
        h = MissHistoryTable(MissClass.CAPACITY, threshold=2)
        for _ in range(3):
            h.record_miss(0x1000, MissClass.CAPACITY)
        h.record_miss(0x1000, MissClass.CONFLICT)
        h.record_miss(0x1000, MissClass.CONFLICT)
        assert not h.is_flagged(0x1000)

    def test_conflict_tracking_variant(self):
        h = MissHistoryTable(MissClass.CONFLICT, threshold=2)
        h.record_miss(0x1000, MissClass.CONFLICT)
        h.record_miss(0x1000, MissClass.CONFLICT)
        assert h.is_flagged(0x1000)
        h2 = MissHistoryTable(MissClass.CONFLICT, threshold=2)
        h2.record_miss(0x1000, MissClass.CAPACITY)
        assert not h2.is_flagged(0x1000)

    def test_regions_are_independent(self):
        h = MissHistoryTable(MissClass.CAPACITY, threshold=1)
        h.record_miss(0x1000, MissClass.CAPACITY)
        assert h.is_flagged(0x1000)
        assert not h.is_flagged(0x1000 + 1024)

    def test_tag_replacement_resets_count(self):
        h = MissHistoryTable(MissClass.CAPACITY, entries=4, threshold=1)
        h.record_miss(0, MissClass.CAPACITY)
        assert h.is_flagged(0)
        # Region 4 maps to the same slot in a 4-entry table.
        h.record_miss(4 * 1024, MissClass.CAPACITY)
        assert not h.is_flagged(0)

    def test_saturation(self):
        h = MissHistoryTable(MissClass.CAPACITY, max_count=3, threshold=2)
        for _ in range(10):
            h.record_miss(0x1000, MissClass.CAPACITY)
        h.record_miss(0x1000, MissClass.CONFLICT)
        assert h.is_flagged(0x1000)  # 3 -> 2, still at threshold

    def test_reset(self):
        h = MissHistoryTable(MissClass.CAPACITY, threshold=1)
        h.record_miss(0x1000, MissClass.CAPACITY)
        h.reset()
        assert not h.is_flagged(0x1000)
