"""Unit + property tests for ``repro.analysis.dataflow``.

The property test is the anchor for the whole framework: for randomly
generated straight-line/branching programs, whenever the abstract
interpreter claims a module-level name is a constant, executing the
program must agree — the lattice is allowed to lose precision
(``UNKNOWN``), never to be wrong.
"""

from __future__ import annotations

import ast

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dataflow import (
    UNKNOWN,
    Array,
    Const,
    DataflowAnalysis,
    Instance,
    Unknown,
    collect_classes,
    join,
)


def flow(source: str) -> DataflowAnalysis:
    return DataflowAnalysis(ast.parse(source))


# ----------------------------------------------------------------------
# Constant folding and aliasing
# ----------------------------------------------------------------------
def test_constant_folding_through_arithmetic():
    f = flow("x = 2\ny = x * 3 + 1\nz = y - x")
    assert f.binding("x") == Const(2)
    assert f.binding("y") == Const(7)
    assert f.binding("z") == Const(5)


def test_alias_assignment_copies_value():
    f = flow("a = 41\nb = a\nb += 1")
    assert f.binding("b") == Const(42)
    assert f.binding("a") == Const(41)


def test_unbound_name_is_unknown():
    f = flow("x = 1")
    assert f.binding("never_bound") is UNKNOWN


# ----------------------------------------------------------------------
# Numpy arrays: construction, astype, provenance
# ----------------------------------------------------------------------
def test_array_construction_and_astype_dtype():
    f = flow(
        "import numpy as np\n"
        "a = np.zeros(8, dtype=np.int16)\n"
        "b = a\n"
        "c = b.astype(np.int64)\n"
    )
    a = f.binding("a")
    assert isinstance(a, Array) and a.dtype == "int16"
    b = f.binding("b")
    assert isinstance(b, Array) and b.dtype == "int16"
    c = f.binding("c")
    assert isinstance(c, Array) and c.dtype == "int64"


def test_astype_trusted_without_receiver_provenance():
    # The receiver is untracked, but .astype(np.int64) is numpy-specific
    # enough to pin the result dtype (the vector.py cumsum pattern).
    f = flow("import numpy as np\nwide = mystery.astype(np.int64)\n")
    wide = f.binding("wide")
    assert isinstance(wide, Array) and wide.dtype == "int64"


def test_comparison_yields_bool_array():
    f = flow(
        "import numpy as np\n"
        "a = np.arange(16)\n"
        "mask = a > 4\n"
    )
    mask = f.binding("mask")
    assert isinstance(mask, Array) and mask.dtype == "bool"


# ----------------------------------------------------------------------
# Branch joins and loop demotion
# ----------------------------------------------------------------------
def test_if_join_keeps_agreeing_consts_and_drops_disagreeing():
    f = flow(
        "if flag:\n"
        "    x = 1\n"
        "    z = 4\n"
        "else:\n"
        "    x = 1\n"
        "    z = 5\n"
    )
    assert f.binding("x") == Const(1)
    assert isinstance(f.binding("z"), Unknown)


def test_loop_demotes_carried_names():
    f = flow("x = 1\nfor i in range(3):\n    x = x + 1\n")
    assert isinstance(f.binding("x"), Unknown)


def test_join_is_commutative_on_mixed_values():
    vals = [UNKNOWN, Const(1), Const(2), Array("int64", "zeros")]
    for a in vals:
        for b in vals:
            assert join(a, b) == join(b, a)


# ----------------------------------------------------------------------
# Instances: class table, alias paths, attribute-write log
# ----------------------------------------------------------------------
_DATACLASS_SRC = """
from dataclasses import dataclass, field


@dataclass
class Inner:
    hits: int = 0
    misses: int = 0


@dataclass
class Outer:
    inner: Inner = field(default_factory=Inner)
    total: int = 0


o = Outer()
i = o.inner
i.hits = 3
o.total += 1
"""


def test_instance_paths_through_attribute_aliases():
    f = flow(_DATACLASS_SRC)
    o = f.binding("o")
    assert isinstance(o, Instance)
    assert (o.cls, o.root, o.path) == ("Outer", "Outer", ())
    i = f.binding("i")
    assert isinstance(i, Instance)
    assert (i.cls, i.root, i.path) == ("Inner", "Outer", ("inner",))


def test_attribute_write_log_records_base_and_attr():
    f = flow(_DATACLASS_SRC)
    writes = {
        (w.base.cls, w.attr, w.augmented)
        for w in f.attribute_writes
        if isinstance(w.base, Instance)
    }
    assert ("Inner", "hits", False) in writes
    assert ("Outer", "total", True) in writes


def test_extra_classes_resolve_cross_module_constructors():
    schema = collect_classes(ast.parse(_DATACLASS_SRC))
    f = DataflowAnalysis(
        ast.parse("x = Outer()\nx.total = 9\n"), extra_classes=schema
    )
    x = f.binding("x")
    assert isinstance(x, Instance) and x.cls == "Outer"


def test_collect_classes_reads_dataclass_shape():
    schema = collect_classes(ast.parse(_DATACLASS_SRC))
    assert schema["Inner"].is_dataclass
    assert set(schema["Inner"].fields) == {"hits", "misses"}
    assert schema["Outer"].fields["inner"] == "Inner"


# ----------------------------------------------------------------------
# Property: abstract constants agree with concrete execution
# ----------------------------------------------------------------------
NAMES = ("a", "b", "c", "d")
_OPS = ("+", "-", "*")
small_int = st.integers(min_value=-50, max_value=50)


@st.composite
def straightline_programs(draw) -> str:
    """Module-level assignments: literals, aliases, binops, augassigns."""
    count = draw(st.integers(min_value=1, max_value=10))
    bound: list = []
    lines = []
    for _ in range(count):
        target = draw(st.sampled_from(NAMES))
        kinds = ["lit"]
        if bound:
            kinds += ["alias", "binop"]
        if target in bound:
            kinds.append("aug")
        kind = draw(st.sampled_from(kinds))
        if kind == "lit":
            lines.append(f"{target} = {draw(small_int)}")
        elif kind == "alias":
            lines.append(f"{target} = {draw(st.sampled_from(bound))}")
        elif kind == "binop":
            src = draw(st.sampled_from(bound))
            op = draw(st.sampled_from(_OPS))
            lines.append(f"{target} = {src} {op} {draw(small_int)}")
        else:
            op = draw(st.sampled_from(_OPS))
            lines.append(f"{target} {op}= {draw(small_int)}")
        if target not in bound:
            bound.append(target)
    return "\n".join(lines)


@st.composite
def branching_programs(draw) -> str:
    head = draw(straightline_programs())
    then_body = draw(straightline_programs())
    else_body = draw(straightline_programs())
    cond = draw(small_int)

    def indent(block: str) -> str:
        return "\n".join("    " + line for line in block.splitlines())

    return (
        f"{head}\n"
        f"if {cond} > 0:\n{indent(then_body)}\n"
        f"else:\n{indent(else_body)}"
    )


def _exec_namespace(source: str) -> dict:
    namespace: dict = {}
    exec(compile(source, "<fixture>", "exec"), namespace)
    return namespace


@settings(max_examples=200, deadline=None)
@given(branching_programs())
def test_const_bindings_are_sound(source):
    analysis = flow(source)
    namespace = _exec_namespace(source)
    for name in NAMES:
        value = analysis.binding(name)
        if isinstance(value, Const):
            assert name in namespace, source
            assert namespace[name] == value.value, source


@settings(max_examples=200, deadline=None)
@given(straightline_programs())
def test_straightline_consts_are_complete(source):
    # Without branches or loops nothing forces a join: every bound name
    # must resolve to the exact executed value.
    analysis = flow(source)
    namespace = _exec_namespace(source)
    for name in NAMES:
        if name in namespace:
            assert analysis.binding(name) == Const(namespace[name]), source
        else:
            assert isinstance(analysis.binding(name), Unknown)
