"""Cross-model integration tests.

These pin the relationships *between* the library's models — the
equivalences and orderings that must hold if each piece is implemented
correctly — rather than any single module's behaviour.
"""

import pytest

from repro.buffers import victim
from repro.cache.geometry import CacheGeometry
from repro.cache.pseudo_assoc import PacVariant
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.accuracy import measure_accuracy
from repro.system.config import MachineConfig, PAPER_MACHINE
from repro.system.memory_system import MemorySystem
from repro.system.pac_system import simulate_pac
from repro.system.policies import BASELINE
from repro.system.simulator import simulate
from repro.workloads.spec_analogs import build


class TestModelEquivalences:
    def test_memory_system_l1_matches_standalone_cache(self):
        """The baseline MemorySystem's L1 behaviour must equal a bare
        SetAssociativeCache on the same reference stream."""
        trace = build("gcc", 15_000)
        system = MemorySystem(BASELINE)
        bare = SetAssociativeCache(PAPER_MACHINE.l1)
        for addr in trace.addresses:
            system.access(int(addr))
            bare.access(int(addr))
        assert system.stats.l1.hits == bare.stats.hits
        assert system.stats.l1.misses == bare.stats.misses

    def test_pac_lru_matches_two_way_miss_rate(self):
        """PAC with true-LRU slot choice is content-equivalent to a 2-way
        cache over paired sets; its miss rate must land very close to the
        2-way system's on real workloads."""
        from dataclasses import replace

        trace = build("li", 20_000)
        two_way = replace(
            PAPER_MACHINE,
            l1=CacheGeometry(size=16 * 1024, assoc=2, line_size=64),
        )
        pac = simulate_pac(trace, PacVariant.LRU)
        w2 = simulate(trace, BASELINE, two_way)
        assert abs(pac.l1.miss_rate - w2.l1.miss_rate) < 1.5

    def test_mct_predictions_match_accuracy_harness(self):
        """The MemorySystem's conflict/capacity counters must agree with
        the standalone accuracy harness run on the same stream."""
        trace = build("tomcatv", 15_000)
        system = MemorySystem(BASELINE)
        for addr in trace.addresses:
            system.access(int(addr))
        acc = measure_accuracy(trace.addresses, PAPER_MACHINE.l1)
        c = acc.classification
        predicted_conflicts = c.conflict_as_conflict + c.capacity_as_conflict
        assert system.stats.conflict_misses_predicted == predicted_conflicts


class TestSystemOrderings:
    """Orderings that must hold across whole-system runs."""

    def test_bigger_buffer_never_hurts_much(self):
        trace = build("tomcatv", 30_000)
        small = simulate(trace, victim.traditional(4), warmup=10_000)
        large = simulate(trace, victim.traditional(16), warmup=10_000)
        assert large.total_hit_rate >= small.total_hit_rate - 0.5

    def test_two_way_l1_beats_dm_on_conflict_heavy_code(self):
        from dataclasses import replace

        trace = build("tomcatv", 30_000)
        two_way = replace(
            PAPER_MACHINE,
            l1=CacheGeometry(size=16 * 1024, assoc=2, line_size=64),
        )
        dm = simulate(trace, BASELINE, warmup=10_000)
        w2 = simulate(trace, BASELINE, two_way, warmup=10_000)
        assert w2.l1.miss_rate < dm.l1.miss_rate

    def test_warmup_improves_measured_hit_rate(self):
        # Use a hot-set-dominated analog, where the cold-start transient
        # is the dominant source of early misses.
        trace = build("m88ksim", 30_000)
        cold = simulate(trace, BASELINE)
        warm = simulate(trace, BASELINE, warmup=15_000)
        assert warm.l1.hit_rate >= cold.l1.hit_rate

    def test_slower_memory_lowers_ipc(self):
        from dataclasses import replace

        from repro.system.config import TimingConfig

        trace = build("compress", 20_000)
        fast = simulate(trace, BASELINE, warmup=5_000)
        slow_machine = MachineConfig(
            timing=replace(TimingConfig(), memory_latency=400)
        )
        slow = simulate(trace, BASELINE, slow_machine, warmup=5_000)
        assert slow.timing.ipc < fast.timing.ipc

    def test_memory_traffic_conserved_without_prefetch(self):
        """Without prefetching or bypass, every L1 miss that misses the
        buffer goes to L2 exactly once."""
        trace = build("gcc", 15_000)
        stats = simulate(trace, victim.traditional())
        expected_l2 = stats.l1.misses - stats.buffer.hits
        assert stats.l2.accesses == expected_l2


class TestDeterminismEndToEnd:
    def test_full_system_run_is_bit_stable(self):
        trace = build("wave5", 10_000)
        a = simulate(trace, victim.filter_both(), warmup=3_000)
        b = simulate(trace, victim.filter_both(), warmup=3_000)
        assert a.timing.cycles == b.timing.cycles
        assert a.l1.hits == b.l1.hits
        assert a.buffer.swaps == b.buffer.swaps

    def test_seed_changes_trace_but_not_shape(self):
        t0 = build("gcc", 10_000, seed=0)
        t1 = build("gcc", 10_000, seed=1)
        assert (t0.addresses != t1.addresses).any()
        s0 = simulate(t0, BASELINE)
        s1 = simulate(t1, BASELINE)
        # Same generator parameters: miss rates within a few points.
        assert abs(s0.l1.miss_rate - s1.l1.miss_rate) < 6.0
