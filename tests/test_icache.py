"""Tests for the instruction-cache streams and MCT applicability (§4)."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.accuracy import measure_accuracy
from repro.workloads.icache import (
    FETCH_BYTES,
    Function,
    conflicting_call_workload,
    program,
)

ICACHE = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)


class TestFunction:
    def test_fetch_addresses_cover_body(self):
        f = Function("f", base=0x1000, size=64)
        addrs = f.fetch_addresses()
        assert addrs == [0x1000, 0x1010, 0x1020, 0x1030]

    def test_loop_re_executes_tail(self):
        f = Function("f", base=0x1000, size=64, loop_body=32, loop_trips=2)
        addrs = f.fetch_addresses()
        # straight-line once, then the 32-byte tail twice more
        assert addrs == [
            0x1000, 0x1010, 0x1020, 0x1030,
            0x1020, 0x1030, 0x1020, 0x1030,
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            Function("f", base=0, size=8)
        with pytest.raises(ValueError):
            Function("f", base=0, size=64, loop_body=128)


class TestProgram:
    def test_concatenates_calls(self):
        f = Function("f", base=0x1000, size=32)
        g = Function("g", base=0x2000, size=32)
        t = program([f, g], [0, 1, 0])
        assert len(t) == 6
        assert int(t.addresses[0]) == 0x1000
        assert int(t.addresses[2]) == 0x2000
        assert (t.gaps == 0).all()

    def test_requires_functions(self):
        with pytest.raises(ValueError):
            program([], [0])


class TestMCTOnInstructionStreams:
    def test_aliasing_functions_classified_as_conflicts(self):
        """The caller/callee alias is the I-cache conflict near-miss; the
        MCT classifies it just as well as on data streams."""
        trace = conflicting_call_workload(ICACHE.size, with_cold_code=False)
        res = measure_accuracy(trace.addresses, ICACHE)
        assert res.miss_rate > 10
        assert res.conflict_fraction > 90       # nearly all misses conflict
        assert res.conflict_accuracy > 95       # and the MCT catches them

    def test_mixed_stream_keeps_both_kinds(self):
        trace = conflicting_call_workload(ICACHE.size, with_cold_code=True)
        res = measure_accuracy(trace.addresses, ICACHE)
        assert 10 < res.conflict_fraction < 95
        assert res.conflict_accuracy > 85
        assert res.capacity_accuracy > 85

    def test_loops_hit_after_first_trip(self):
        from repro.cache.set_assoc import SetAssociativeCache

        f = Function("f", base=0x1000, size=512, loop_body=256, loop_trips=10)
        t = program([f], [0])
        cache = SetAssociativeCache(ICACHE)
        for addr in t.addresses:
            cache.access(int(addr))
        # One compulsory miss per line; every loop trip after that hits.
        assert cache.stats.misses == 512 // 64
        assert cache.stats.hit_rate > 80

    def test_victim_buffer_covers_icache_conflicts(self):
        """§4's remark, end to end: a victim-filtered assist buffer works
        on the instruction stream too."""
        from repro.buffers.victim import traditional
        from repro.system.simulator import simulate

        # Small hot functions (4 lines each): a footprint an 8-entry
        # victim buffer can actually cover, like the paper's data-side
        # victim experiments.
        trace = conflicting_call_workload(
            ICACHE.size, hot_size=256, with_cold_code=False
        )
        base_ = simulate(trace, __import__("repro.system.policies",
                                           fromlist=["BASELINE"]).BASELINE)
        vc = simulate(trace, traditional())
        assert vc.buffer.victim_hits > 0
        assert vc.total_hit_rate > base_.total_hit_rate
