"""Unit tests for the Miss Classification Table."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.line import EvictedLine
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.classification import MissClass
from repro.core.mct import MissClassificationTable


class TestClassification:
    def test_cold_table_says_capacity(self, dm16k):
        mct = MissClassificationTable(dm16k)
        assert mct.classify(0x1000) is MissClass.CAPACITY

    def test_matching_eviction_says_conflict(self, dm16k):
        mct = MissClassificationTable(dm16k)
        a = 0x10000
        mct.record_eviction(dm16k.set_index(a), dm16k.tag(a))
        assert mct.classify(a) is MissClass.CONFLICT

    def test_non_matching_tag_says_capacity(self, dm16k):
        mct = MissClassificationTable(dm16k)
        a = 0x10000
        b = a + dm16k.size  # same set, different tag
        mct.record_eviction(dm16k.set_index(a), dm16k.tag(a))
        assert mct.classify(b) is MissClass.CAPACITY

    def test_only_most_recent_eviction_kept(self, dm16k):
        mct = MissClassificationTable(dm16k)
        a = 0x10000
        b = a + dm16k.size
        idx = dm16k.set_index(a)
        mct.record_eviction(idx, dm16k.tag(a))
        mct.record_eviction(idx, dm16k.tag(b))
        assert mct.classify(a) is MissClass.CAPACITY
        assert mct.classify(b) is MissClass.CONFLICT

    def test_entries_are_per_set(self, dm16k):
        mct = MissClassificationTable(dm16k)
        a = 0x10000
        other_set = a + dm16k.line_size
        mct.record_eviction(dm16k.set_index(a), dm16k.tag(a))
        assert mct.classify(other_set) is MissClass.CAPACITY

    def test_install_marks_future_conflict(self, dm16k):
        mct = MissClassificationTable(dm16k)
        addr = 0x4440
        mct.install(addr)
        assert mct.classify(addr) is MissClass.CONFLICT

    def test_clear(self, dm16k):
        mct = MissClassificationTable(dm16k)
        mct.install(0x1000)
        mct.clear()
        assert mct.classify(0x1000) is MissClass.CAPACITY

    def test_counts(self, dm16k):
        mct = MissClassificationTable(dm16k)
        mct.install(0x1000)
        mct.classify(0x1000)
        mct.classify(0x2000)
        assert mct.classifications == 2
        assert mct.conflict_hits == 1


class TestPartialTags:
    def test_full_behaviour_with_enough_bits(self, dm16k):
        full = MissClassificationTable(dm16k)
        wide = MissClassificationTable(dm16k, tag_bits=30)
        a = 0x10000
        for m in (full, wide):
            m.record_eviction(dm16k.set_index(a), dm16k.tag(a))
        assert full.classify(a) == wide.classify(a) == MissClass.CONFLICT

    def test_few_bits_cause_false_conflicts(self, dm16k):
        mct = MissClassificationTable(dm16k, tag_bits=1)
        a = 0x10000                      # tag 4
        b = a + 2 * dm16k.size           # tag 6 — same low bit (0)
        assert dm16k.tag(a) & 1 == dm16k.tag(b) & 1
        mct.record_eviction(dm16k.set_index(a), dm16k.tag(a))
        assert mct.classify(b) is MissClass.CONFLICT  # false match

    def test_distinct_low_bits_still_distinguished(self, dm16k):
        mct = MissClassificationTable(dm16k, tag_bits=1)
        a = 0x10000                      # tag 4 (even)
        b = a + dm16k.size               # tag 5 (odd)
        mct.record_eviction(dm16k.set_index(a), dm16k.tag(a))
        assert mct.classify(b) is MissClass.CAPACITY

    def test_rejects_zero_bits(self, dm16k):
        with pytest.raises(ValueError):
            MissClassificationTable(dm16k, tag_bits=0)


class TestStorage:
    def test_paper_storage_figure(self):
        """§3: 10 bits/entry on a 64KB DM cache = 1.25KB."""
        g = CacheGeometry(size=64 * 1024, assoc=1, line_size=64)
        mct = MissClassificationTable(g, tag_bits=10)
        assert mct.storage_bits(valid_bit=False) == 10 * 1024  # 1.25 KB
        assert mct.storage_bits(valid_bit=False) / 8 / 1024 == 1.25

    def test_two_way_has_half_the_entries(self):
        g1 = CacheGeometry(size=64 * 1024, assoc=1, line_size=64)
        g2 = CacheGeometry(size=64 * 1024, assoc=2, line_size=64)
        b1 = MissClassificationTable(g1, tag_bits=10).storage_bits(valid_bit=False)
        b2 = MissClassificationTable(g2, tag_bits=10).storage_bits(valid_bit=False)
        assert b2 == b1 // 2

    def test_full_tag_storage_positive(self, dm16k):
        assert MissClassificationTable(dm16k).storage_bits() > 0


class TestCacheIntegration:
    def test_on_evict_hook_wiring(self, dm16k):
        mct = MissClassificationTable(dm16k)
        cache = SetAssociativeCache(dm16k, on_evict=mct.on_evict)
        a = 0x10000
        b = a + dm16k.size
        cache.access(a)
        cache.access(b)  # evicts a -> MCT
        assert mct.classify(a) is MissClass.CONFLICT
        assert mct.classify(b) is MissClass.CAPACITY

    def test_ping_pong_always_conflict_after_warm(self, dm16k):
        mct = MissClassificationTable(dm16k)
        cache = SetAssociativeCache(dm16k, on_evict=mct.on_evict)
        a = 0x10000
        b = a + dm16k.size
        cache.access(a)
        cache.access(b)
        for addr in (a, b) * 10:
            assert mct.classify(addr) is MissClass.CONFLICT
            cache.access(addr)

    def test_adapter_accepts_evicted_line(self, dm16k):
        mct = MissClassificationTable(dm16k)
        a = 0x10000
        mct.on_evict(dm16k.set_index(a), EvictedLine(tag=dm16k.tag(a)))
        assert mct.classify_is_conflict(a)
