"""The crash matrix: inject -> crash -> doctor -> resume -> converge.

This is the tentpole proof of the fault-injection subsystem: for every
(site, kind) combination, a run killed by a deterministic injected fault
must be repairable by ``python -m repro.harness.doctor`` and must, after
``--resume``, converge to the *byte-identical* artifacts (``report.json``,
``manifest.json``, every ``cells/*.json``) of a fault-free run — except
for the few survivable worker-spawn faults where the harness retries
through the fault and honestly records RETRIED, in which case the
results and checksums (but not the origin stubs) must match.

Injected runs execute as subprocesses: ``kill`` and ``partial`` faults at
supervisor sites take the whole process down with ``os._exit``.  The
doctor and the resume run execute in-process (no fault plan armed).

A representative slice of the matrix runs in tier-1; the remaining
combinations are the CI chaos job (``REPRO_CHAOS=1``).  A Hypothesis
property test at the bottom drives the same loop with *random* fault
plans.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.runner import main as runner_main
from repro.faults import FAULT_KINDS
from repro.faults.sites import SITES
from repro.harness.checkpoint import RunDirectory
from repro.harness.doctor import main as doctor_main
from repro.obs.validate import main as validate_main

REPO = Path(__file__).resolve().parent.parent

#: One campaign shape for the whole matrix: two cells (a single-config
#: experiment and a grid one), serial, strict, with the event stream on
#: so every injection site is actually reachable.
ARGS = [
    "table1", "fig3",
    "--refs", "4000", "--warmup", "1000", "--suite", "gcc",
    "--backoff", "0.01", "--jobs", "1", "--strict",
    "--metrics", "--heartbeat-every", "1000",
]

#: Seed per site, chosen so the fault fires *after* the durable state it
#: tears has something to recover from: manifest_update seed 1 (nth hit
#: 2) survives prepare()'s initial manifest write, event_append seed 1
#: survives the supervisor's run_start.
SITE_SEED = {"manifest_update": 1, "event_append": 1}

#: Survivable spawn faults: the supervisor retries straight through them,
#: so the run completes with an honest RETRIED status instead of
#: crashing — origin stubs then legitimately differ from the baseline.
RETRY_SURVIVABLE = {
    ("worker_spawn", "enospc"),
    ("worker_spawn", "exception"),
    ("worker_spawn", "partial"),
}

FULL_MATRIX = [
    f"{site}:{kind}:{SITE_SEED.get(site, 0)}"
    for site in sorted(SITES)
    for kind in FAULT_KINDS
]

#: Always-on slice: every site, both crash shapes (kill/partial) for the
#: durable-write sites, one survivable spawn fault.
REPRESENTATIVE = [
    "checkpoint_write:kill:0",
    "checkpoint_write:partial:0",
    "manifest_update:kill:1",
    "manifest_update:partial:1",
    "report_finalize:kill:0",
    "event_append:partial:1",
    "sim_tick:kill:0",
    "worker_spawn:enospc:0",
]

CHAOS_ONLY = [c for c in FULL_MATRIX if c not in REPRESENTATIVE]


@pytest.fixture(autouse=True)
def _no_env_plan(monkeypatch):
    monkeypatch.delenv("REPRO_INJECT", raising=False)


def run_injected(
    run_dir: Path, plan: str, args: list = ARGS
) -> subprocess.CompletedProcess:
    """One campaign with the plan armed, in its own interpreter."""
    env = {**os.environ, "PYTHONPATH": str(REPO / "src")}
    env.pop("REPRO_INJECT", None)
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.runner",
         *args, "--run-dir", str(run_dir), "--inject", plan],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def artifact_bytes(run_dir: Path) -> Dict[str, bytes]:
    """Every durable artifact's exact bytes (events.jsonl excluded: it
    carries timestamps and pids and is checked by reconciliation)."""
    out = {
        "report.json": (run_dir / "report.json").read_bytes(),
        "manifest.json": (run_dir / "manifest.json").read_bytes(),
    }
    for path in sorted((run_dir / "cells").glob("*.json")):
        out[f"cells/{path.name}"] = path.read_bytes()
    return out


def assert_results_match(run_dir: Path, baseline_dir: Path) -> None:
    """Weak (semantic) convergence: same cells, same result payloads and
    checksums, every cell completed — origin stubs may differ."""
    base = json.loads((baseline_dir / "report.json").read_text())
    rep = json.loads((run_dir / "report.json").read_text())
    assert rep["ok"] is True
    cell_ids = {c["cell"] for c in base["cells"]}
    assert {c["cell"] for c in rep["cells"]} == cell_ids
    assert all(c["status"] in ("OK", "RETRIED") for c in rep["cells"])
    for cell_id in cell_ids:
        b = json.loads(RunDirectory(baseline_dir).cell_path(cell_id).read_text())
        r = json.loads(RunDirectory(run_dir).cell_path(cell_id).read_text())
        assert r["result"] == b["result"]
        assert r["checksum"] == b["checksum"]


def crash_doctor_resume(combo: str, run_dir: Path, baseline_dir: Path) -> None:
    """The full loop one matrix entry must survive."""
    site, kind = combo.split(":")[:2]
    proc = run_injected(run_dir, combo)
    if kind == "kill":
        assert proc.returncode != 0, (
            f"{combo}: injected kill did not take the run down\n{proc.stderr}"
        )
    if kind == "delay":
        assert proc.returncode == 0, f"{combo}: delay must not fail\n{proc.stderr}"

    assert doctor_main([str(run_dir)]) == 0, f"{combo}: doctor could not repair"
    rc = runner_main([*ARGS, "--run-dir", str(run_dir), "--resume"])
    assert rc == 0, f"{combo}: resume after repair failed"

    assert not list(run_dir.glob("*.tmp")) and not list(
        (run_dir / "cells").glob("*.tmp")
    )
    if (site, kind) in RETRY_SURVIVABLE:
        assert_results_match(run_dir, baseline_dir)
    else:
        assert artifact_bytes(run_dir) == artifact_bytes(baseline_dir), (
            f"{combo}: recovered artifacts differ from the fault-free run"
        )
    assert validate_main([str(run_dir / "events.jsonl"), "--reconcile"]) == 0, (
        f"{combo}: recovered event stream does not reconcile"
    )


@pytest.fixture(scope="module")
def baseline_dir(tmp_path_factory) -> Path:
    """One fault-free run of the campaign; every matrix entry must
    converge to these bytes."""
    run_dir = tmp_path_factory.mktemp("baseline")
    os.environ.pop("REPRO_INJECT", None)
    rc = runner_main([*ARGS, "--run-dir", str(run_dir)])
    assert rc == 0
    return run_dir


@pytest.mark.parametrize("combo", REPRESENTATIVE)
def test_crash_matrix_representative(combo, tmp_path, baseline_dir, capsys):
    crash_doctor_resume(combo, tmp_path, baseline_dir)


#: Same campaign with a heartbeat cadence (700) that does NOT divide the
#: sim_tick fault cadence (1000): the two clocks interleave instead of
#: coinciding, which is exactly the shape the shared boundary walk in
#: ``repro.system.simulator.measure_boundaries`` must keep straight.
DUAL_CADENCE_ARGS = [
    "table1",
    "--refs", "4000", "--warmup", "1000", "--suite", "gcc",
    "--backoff", "0.01", "--jobs", "1", "--strict",
    "--metrics", "--heartbeat-every", "700",
]


def test_sim_tick_honours_offset_heartbeat_cadence(tmp_path, capsys):
    """Dual-cadence pin: heartbeats keep their own 700-ref clock while
    the armed sim_tick site fires on its independent 1000-ref clock —
    the measured loop must honour both, and the crash/doctor/resume
    loop must still converge byte-for-byte."""
    baseline = tmp_path / "baseline"
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    os.environ.pop("REPRO_INJECT", None)
    assert runner_main([*DUAL_CADENCE_ARGS, "--run-dir", str(baseline)]) == 0

    proc = run_injected(run_dir, "sim_tick:kill:0", args=DUAL_CADENCE_ARGS)
    assert proc.returncode != 0, f"sim_tick kill did not fire\n{proc.stderr}"
    # The dying sim got through its 700-ref heartbeat before the tick at
    # 1000 killed it: both cadences ran, in order, in one measured loop.
    crashed = [
        json.loads(line)
        for line in (run_dir / "events.jsonl").read_text().splitlines()
    ]
    beats = [e["refs_done"] for e in crashed if e.get("type") == "heartbeat"]
    # One beat per attempt (the harness retries through the kill): every
    # attempt got exactly to 700 and died at the 1000-ref tick.
    assert beats and set(beats) == {700}, beats

    assert doctor_main([str(run_dir)]) == 0
    assert (
        runner_main([*DUAL_CADENCE_ARGS, "--run-dir", str(run_dir), "--resume"])
        == 0
    )
    assert artifact_bytes(run_dir) == artifact_bytes(baseline)
    assert validate_main([str(run_dir / "events.jsonl"), "--reconcile"]) == 0
    # The fault-free stream shows the full 700-cadence heartbeat train
    # (3000 measured refs -> 700..2800) in every simulated cell.
    events = [
        json.loads(line)
        for line in (baseline / "events.jsonl").read_text().splitlines()
    ]
    trains = [e["refs_done"] for e in events if e.get("type") == "heartbeat"]
    assert trains and set(trains) == {700, 1400, 2100, 2800}


@pytest.mark.skipif(
    os.environ.get("REPRO_CHAOS") != "1",
    reason="full chaos matrix runs in the CI chaos job (REPRO_CHAOS=1)",
)
@pytest.mark.parametrize("combo", CHAOS_ONLY)
def test_crash_matrix_full(combo, tmp_path, baseline_dir, capsys):
    crash_doctor_resume(combo, tmp_path, baseline_dir)


# ----------------------------------------------------------------------
# Property: ANY seeded plan is recoverable (satellite: hypothesis tests)
# ----------------------------------------------------------------------
def _spec_text(site: str, kind: str, seed: int, repeat: int) -> str:
    # manifest_update must survive prepare()'s first write or the fault
    # model degenerates to "the run never started" (nothing durable to
    # recover) — pin its seed to an nth-hit of 2.
    if site == "manifest_update":
        seed = 1 + 3 * (seed % 2)
    return f"{site}:{kind}:{seed}:{repeat}"


plan_strategy = st.lists(
    st.builds(
        _spec_text,
        site=st.sampled_from(sorted(SITES)),
        kind=st.sampled_from(FAULT_KINDS),
        seed=st.integers(min_value=0, max_value=4),
        repeat=st.integers(min_value=1, max_value=2),
    ),
    min_size=1,
    max_size=2,
    unique_by=lambda spec: spec.split(":")[0],
).map(",".join)


@settings(
    max_examples=3,
    deadline=None,
    derandomize=True,
    # capsys only captures (never feeds) the runner's table output, so
    # not resetting it between examples is harmless.
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)
@given(plan=plan_strategy)
def test_random_fault_plan_recovers(plan, baseline_dir, capsys):
    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp) / "run"
        run_dir.mkdir()
        run_injected(run_dir, plan)
        assert doctor_main([str(run_dir)]) == 0, f"{plan}: doctor failed"
        rc = runner_main([*ARGS, "--run-dir", str(run_dir), "--resume"])
        assert rc == 0, f"{plan}: resume failed"
        report = json.loads((run_dir / "report.json").read_text())
        if any(c["status"] == "RETRIED" for c in report["cells"]):
            assert_results_match(run_dir, baseline_dir)
        else:
            assert artifact_bytes(run_dir) == artifact_bytes(baseline_dir)
        assert validate_main([str(run_dir / "events.jsonl"), "--reconcile"]) == 0
