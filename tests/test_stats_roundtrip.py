"""Property tests: reset()/merge() round-trips for every stats counter.

The aggregation bugfix sweep's guarantee is structural: reset() and
merge() iterate :func:`dataclasses.fields`, so *every* counter — current
and future — participates in warmup resets and multi-thread/multi-shard
rollups.  These properties pin that down by generating random counter
values for every field of every stats dataclass and checking:

* ``merge`` is exact field-wise addition (no counter dropped),
* ``merge`` with a fresh instance is the identity,
* ``reset`` zeroes every field and preserves its type,
* the same holds recursively for :class:`SystemStats`, and
* replaying an ``events.jsonl`` counter-delta stream reproduces the
  final ``SystemStats.as_dict()`` exactly (the obs reconciliation
  contract, here exercised end-to-end through a real simulation).
"""

import json
from dataclasses import fields

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.stats import (
    BufferStats,
    CacheStats,
    ClassificationStats,
    SystemStats,
    TimingStats,
)
from repro.obs import events as obs_events
from repro.obs.config import ObsConfig
from repro.obs.metrics import accumulate_deltas, flatten_counters
from repro.buffers.victim import traditional
from repro.system.policies import BASELINE
from repro.system.simulator import simulate
from repro.workloads.spec_analogs import build

FLAT_STATS = [CacheStats, BufferStats, ClassificationStats, TimingStats]

counters = st.integers(min_value=0, max_value=10**9)


def populate(cls, values):
    """Build an instance with one drawn value per dataclass field."""
    obj = cls()
    for f, value in zip(fields(cls), values):
        current = getattr(obj, f.name)
        if isinstance(current, (int, float)) and not isinstance(current, bool):
            setattr(obj, f.name, type(current)(value))
    return obj


def numeric_fields(obj):
    return [
        f.name
        for f in fields(obj)
        if isinstance(getattr(obj, f.name), (int, float))
    ]


def flat_values(cls, draw_count):
    return st.lists(
        counters, min_size=draw_count, max_size=draw_count
    )


@pytest.mark.parametrize("cls", FLAT_STATS)
class TestFlatStatsRoundTrip:
    def test_merge_is_fieldwise_sum(self, cls):
        @given(
            st.lists(counters, min_size=len(fields(cls)), max_size=len(fields(cls))),
            st.lists(counters, min_size=len(fields(cls)), max_size=len(fields(cls))),
        )
        def property(a_values, b_values):
            a, b = populate(cls, a_values), populate(cls, b_values)
            expected = {
                name: getattr(a, name) + getattr(b, name)
                for name in numeric_fields(a)
            }
            a.merge(b)
            for name, value in expected.items():
                assert getattr(a, name) == value, name

        property()

    def test_merge_fresh_is_identity(self, cls):
        @given(
            st.lists(counters, min_size=len(fields(cls)), max_size=len(fields(cls)))
        )
        def property(values):
            a = populate(cls, values)
            before = {name: getattr(a, name) for name in numeric_fields(a)}
            a.merge(cls())
            assert {name: getattr(a, name) for name in before} == before

        property()

    def test_reset_zeroes_every_field_preserving_type(self, cls):
        @given(
            st.lists(counters, min_size=len(fields(cls)), max_size=len(fields(cls)))
        )
        def property(values):
            a = populate(cls, values)
            originals = {name: type(getattr(a, name)) for name in numeric_fields(a)}
            a.reset()
            for name, original_type in originals.items():
                value = getattr(a, name)
                assert value == 0, name
                assert type(value) is original_type, name

        property()


def system_stats_values():
    """One drawn value per *leaf* counter of SystemStats."""
    leaves = len(flatten_counters(SystemStats().as_dict()))
    return st.lists(counters, min_size=leaves, max_size=leaves)


def populate_system(values):
    stats = SystemStats()
    it = iter(values)
    for f in fields(stats):
        value = getattr(stats, f.name)
        if hasattr(value, "merge"):
            for leaf in fields(value):
                current = getattr(value, leaf.name)
                setattr(value, leaf.name, type(current)(next(it)))
        else:
            setattr(stats, f.name, next(it))
    return stats


class TestSystemStatsRoundTrip:
    @given(system_stats_values(), system_stats_values())
    @settings(max_examples=50, deadline=None)
    def test_merge_sums_every_leaf_counter(self, a_values, b_values):
        a, b = populate_system(a_values), populate_system(b_values)
        expected = {
            key: value + flatten_counters(b.as_dict())[key]
            for key, value in flatten_counters(a.as_dict()).items()
        }
        a.merge(b)
        assert flatten_counters(a.as_dict()) == expected

    @given(system_stats_values())
    @settings(max_examples=50, deadline=None)
    def test_reset_zeroes_every_leaf_counter(self, values):
        stats = populate_system(values)
        stats.reset()
        assert all(v == 0 for v in flatten_counters(stats.as_dict()).values())

    @given(system_stats_values())
    @settings(max_examples=50, deadline=None)
    def test_merge_fresh_is_identity(self, values):
        stats = populate_system(values)
        before = flatten_counters(stats.as_dict())
        stats.merge(SystemStats())
        assert flatten_counters(stats.as_dict()) == before

    def test_every_leaf_is_numeric(self):
        # as_dict() (the obs counter schema) must stay flattenable: a
        # non-numeric field added to any stats dataclass should be caught
        # here, not discovered as a TypeError inside a metrics run.
        flatten_counters(SystemStats().as_dict())


class TestEventReplayReconstruction:
    """Replaying events.jsonl deltas rebuilds the final SystemStats."""

    @pytest.mark.parametrize(
        "bench,policy,seed",
        [("gcc", BASELINE, 0), ("compress", traditional(), 7)],
    )
    def test_replay_equals_final_as_dict(self, tmp_path, bench, policy, seed):
        path = tmp_path / "events.jsonl"
        trace = build(bench, 3_000, seed)
        obs_events.activate(
            ObsConfig(events_path=str(path), heartbeat_every=333)
        )
        try:
            stats = simulate(trace, policy, warmup=400)
        finally:
            obs_events.deactivate()

        events = [json.loads(line) for line in path.read_text().splitlines()]
        deltas = [e["delta"] for e in events if e["type"] == "counters"]
        replayed = accumulate_deltas(deltas)
        final = flatten_counters(stats.as_dict())
        # Exact equality — including float timing counters, which only
        # ever change in the closing delta.
        assert {k: v for k, v in final.items() if v != 0} == replayed
        (sim_end,) = [e for e in events if e["type"] == "sim_end"]
        assert sim_end["final"] == final
