"""Unit tests for the statistics containers."""

from repro.cache.stats import (
    BufferStats,
    CacheStats,
    ClassificationStats,
    SystemStats,
    TimingStats,
)


class TestCacheStats:
    def test_rates(self):
        s = CacheStats(accesses=10, hits=7, misses=3)
        assert s.hit_rate == 70.0
        assert s.miss_rate == 30.0

    def test_zero_division_safe(self):
        assert CacheStats().hit_rate == 0.0

    def test_reset(self):
        s = CacheStats(accesses=10, hits=7)
        s.reset()
        assert s.accesses == 0 and s.hits == 0

    def test_merge(self):
        a = CacheStats(accesses=5, hits=2, misses=3)
        b = CacheStats(accesses=1, hits=1)
        a.merge(b)
        assert a.accesses == 6 and a.hits == 3


class TestBufferStats:
    def test_table1_rates_use_total_accesses(self):
        b = BufferStats(hits=64, swaps=17, fills=66)
        assert b.hit_rate(1000) == 6.4
        assert b.swap_rate(1000) == 1.7
        assert b.fill_rate(1000) == 6.6

    def test_prefetch_accuracy(self):
        b = BufferStats(prefetches_issued=100, prefetches_used=40)
        assert b.prefetch_accuracy == 40.0
        assert BufferStats().prefetch_accuracy == 0.0

    def test_probe_hit_rate(self):
        b = BufferStats(probes=50, hits=10)
        assert b.hit_rate_of_probes == 20.0


class TestClassificationStats:
    def test_record_and_accuracies(self):
        c = ClassificationStats()
        for _ in range(9):
            c.record(predicted_conflict=True, actual_conflict=True)
        c.record(predicted_conflict=False, actual_conflict=True)
        for _ in range(8):
            c.record(predicted_conflict=False, actual_conflict=False)
        for _ in range(2):
            c.record(predicted_conflict=True, actual_conflict=False)
        assert c.true_conflicts == 10
        assert c.true_capacities == 10
        assert c.conflict_accuracy == 90.0
        assert c.capacity_accuracy == 80.0
        assert c.overall_accuracy == 85.0
        assert c.total == 20

    def test_empty_is_zero(self):
        c = ClassificationStats()
        assert c.conflict_accuracy == 0.0
        assert c.overall_accuracy == 0.0

    def test_merge(self):
        a = ClassificationStats(conflict_as_conflict=1)
        b = ClassificationStats(conflict_as_conflict=2, capacity_as_capacity=3)
        a.merge(b)
        assert a.conflict_as_conflict == 3
        assert a.capacity_as_capacity == 3


class TestTimingStats:
    def test_ipc_cpi(self):
        t = TimingStats(cycles=100.0, instructions=300)
        assert t.ipc == 3.0
        assert t.cpi == 100.0 / 300.0

    def test_zero_safe(self):
        assert TimingStats().ipc == 0.0
        assert TimingStats().cpi == 0.0


class TestSystemStats:
    def test_total_hit_rate_combines_l1_and_buffer(self):
        s = SystemStats()
        s.l1 = CacheStats(accesses=100, hits=80)
        s.buffer = BufferStats(hits=10)
        assert s.total_hit_rate == 90.0
        assert s.effective_miss_rate == 10.0
