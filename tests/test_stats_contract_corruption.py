"""Mutation tests for the cross-engine stats contract (RPR070/RPR072).

The acceptance bar for the checker: corrupting any single SystemStats
counter write in ``system/vector.py`` must make RPR070 fire, and
drifting a cadence constant must make RPR072 fire.  Scope tags are
derived from paths, so the relevant sources are mirrored into a
throwaway ``src/repro`` tree before mutation.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional

import pytest

from repro.analysis import all_checkers, run

REPO = Path(__file__).parent.parent
MIRRORED = (
    "src/repro/cache/stats.py",
    "src/repro/cache/set_assoc.py",
    "src/repro/system/simulator.py",
    "src/repro/system/memory_system.py",
    "src/repro/system/timing.py",
    "src/repro/system/vector.py",
)
VECTOR = "src/repro/system/vector.py"

#: A stats-counter store in the vector engine: every receiver named
#: l1/l2/stats/timing in vector.py is (an alias into) the SystemStats
#: tree or the TimingStats object delegated into it.
_WRITE_RE = re.compile(r"^(\s*)(l1|l2|stats|timing)\.(\w+) = ")


def counter_write_lines() -> List[int]:
    lines = (REPO / VECTOR).read_text().splitlines()
    return [i for i, line in enumerate(lines) if _WRITE_RE.match(line)]


def run_mirror(tmp_path: Path, vector_text: Optional[str] = None):
    paths = []
    for rel in MIRRORED:
        dst = tmp_path / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        text = (REPO / rel).read_text()
        if vector_text is not None and rel == VECTOR:
            text = vector_text
        dst.write_text(text)
        paths.append(str(dst))
    result = run(paths, all_checkers(), select=["RPR07"], root=tmp_path)
    assert result.errors == []
    return result.violations


def test_mirror_sees_enough_counter_writes():
    # Keep the mutation matrix honest: if a refactor renames the
    # receivers this list collapses and every mutation test silently
    # degenerates.
    assert len(counter_write_lines()) >= 15


def test_unmutated_mirror_is_clean(tmp_path):
    assert run_mirror(tmp_path) == []


@pytest.mark.parametrize("lineno", counter_write_lines())
def test_dropping_any_counter_write_fires_rpr070(tmp_path, lineno):
    lines = (REPO / VECTOR).read_text().splitlines(keepends=True)
    mutated = _WRITE_RE.sub(r"\1\2.\3_dropped = ", lines[lineno])
    assert mutated != lines[lineno]
    lines[lineno] = mutated
    violations = run_mirror(tmp_path, "".join(lines))
    assert "RPR070" in {v.code for v in violations}, mutated


def test_cadence_drift_fires_rpr072(tmp_path):
    text = (REPO / VECTOR).read_text()
    drifted = text.replace(
        "tick_every = faults.sim_tick_every()", "tick_every = 64"
    )
    assert drifted != text
    violations = run_mirror(tmp_path, drifted)
    assert "RPR072" in {v.code for v in violations}
