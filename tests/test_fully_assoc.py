"""Unit tests for the fully-associative LRU tag store."""

import pytest

from repro.cache.fully_assoc import FullyAssociativeLRU


class TestBasics:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            FullyAssociativeLRU(0)

    def test_miss_then_hit(self):
        fa = FullyAssociativeLRU(4)
        hit, evicted = fa.access(1)
        assert not hit and evicted is None
        hit, evicted = fa.access(1)
        assert hit and evicted is None

    def test_eviction_at_capacity(self):
        fa = FullyAssociativeLRU(2)
        fa.access(1)
        fa.access(2)
        hit, evicted = fa.access(3)
        assert not hit
        assert evicted == 1  # LRU

    def test_lru_order_respects_hits(self):
        fa = FullyAssociativeLRU(2)
        fa.access(1)
        fa.access(2)
        fa.access(1)  # 1 becomes MRU
        _, evicted = fa.access(3)
        assert evicted == 2

    def test_probe_does_not_touch(self):
        fa = FullyAssociativeLRU(2)
        fa.access(1)
        fa.access(2)
        assert fa.probe(1)
        _, evicted = fa.access(3)
        assert evicted == 1  # probe did not refresh 1

    def test_touch_refreshes(self):
        fa = FullyAssociativeLRU(2)
        fa.access(1)
        fa.access(2)
        assert fa.touch(1)
        _, evicted = fa.access(3)
        assert evicted == 2

    def test_touch_missing_returns_false(self):
        fa = FullyAssociativeLRU(2)
        assert not fa.touch(42)

    def test_invalidate(self):
        fa = FullyAssociativeLRU(2)
        fa.access(1)
        assert fa.invalidate(1)
        assert not fa.probe(1)
        assert not fa.invalidate(1)

    def test_lru_block_and_contents(self):
        fa = FullyAssociativeLRU(3)
        for b in (5, 6, 7):
            fa.access(b)
        fa.access(5)
        assert fa.lru_block() == 6
        assert fa.contents_lru_to_mru() == [6, 7, 5]

    def test_lru_block_empty(self):
        assert FullyAssociativeLRU(2).lru_block() is None

    def test_len_contains_flush(self):
        fa = FullyAssociativeLRU(4)
        fa.access(1)
        fa.access(2)
        assert len(fa) == 2
        assert 1 in fa
        fa.flush()
        assert len(fa) == 0

    def test_stats(self):
        fa = FullyAssociativeLRU(1)
        fa.access(1)
        fa.access(1)
        fa.access(2)
        assert fa.stats.accesses == 3
        assert fa.stats.hits == 1
        assert fa.stats.misses == 2
        assert fa.stats.evictions == 1


class TestEquivalenceWithSetAssoc:
    def test_matches_one_set_cache(self):
        """An FA-LRU must behave exactly like a 1-set LRU cache."""
        from repro.cache.geometry import CacheGeometry
        from repro.cache.set_assoc import SetAssociativeCache

        g = CacheGeometry(size=8 * 64, assoc=8, line_size=64)
        sa = SetAssociativeCache(g)
        fa = FullyAssociativeLRU(8)
        import random

        rnd = random.Random(99)
        for _ in range(2000):
            block = rnd.randrange(0, 24)
            sa_hit = sa.access(block * 64).hit
            fa_hit, _ = fa.access(block)
            assert sa_hit == fa_hit
