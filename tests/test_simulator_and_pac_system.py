"""Tests for the trace-driven runners (assist-buffer and PAC systems)."""

import pytest

from repro.buffers import victim
from repro.cache.pseudo_assoc import PacVariant
from repro.system.config import PAPER_MACHINE, MachineConfig, TimingConfig
from repro.system.pac_system import PacMemorySystem, simulate_pac
from repro.system.policies import BASELINE
from repro.system.simulator import geomean, mean, simulate, simulate_policies, speedup
from repro.workloads.trace import Trace

L1_SIZE = PAPER_MACHINE.l1.size


def trace(addresses, **kw):
    return Trace(list(addresses), **kw)


class TestSimulate:
    def test_returns_finished_stats(self):
        t = trace([0x1000, 0x1000, 0x2000])
        stats = simulate(t, BASELINE)
        assert stats.l1.accesses == 3
        assert stats.timing.cycles > 0
        assert stats.timing.instructions == t.total_instructions

    def test_warmup_excluded_from_stats(self):
        t = trace([0x1000] * 10)
        stats = simulate(t, BASELINE, warmup=5)
        assert stats.l1.accesses == 5
        assert stats.l1.hits == 5  # warm line

    def test_warmup_bounds_checked(self):
        t = trace([0x1000])
        with pytest.raises(ValueError):
            simulate(t, BASELINE, warmup=2)

    def test_warmup_consuming_whole_trace_rejected(self):
        # Regression: warmup == len(trace) used to be accepted and
        # produced an all-zero measurement (division hazards downstream).
        t = trace([0x1000] * 8)
        with pytest.raises(ValueError, match="at least one"):
            simulate(t, BASELINE, warmup=len(t))
        with pytest.raises(ValueError):
            simulate(t, BASELINE, warmup=-1)
        stats = simulate(t, BASELINE, warmup=len(t) - 1)
        assert stats.l1.accesses == 1

    def test_deterministic(self):
        t = trace([0x1000 + (i * 2741) % 65536 for i in range(500)])
        a = simulate(t, victim.traditional())
        b = simulate(t, victim.traditional())
        assert a.timing.cycles == b.timing.cycles
        assert a.l1.hits == b.l1.hits

    @pytest.mark.parametrize("warmup", [0, 500])
    def test_matches_boxed_reference_loop(self, warmup):
        """Regression: the tolist() hot loop must be observably identical
        to the old per-reference numpy-scalar-boxing loop — the stats are
        compared through their serialized (byte) form."""
        import json

        from repro.system.memory_system import MemorySystem

        n = 2_000
        t = trace(
            [0x1000 + (i * 2741) % 65536 for i in range(n)],
            is_load=[i % 3 != 0 for i in range(n)],
            gaps=[i % 7 for i in range(n)],
        )
        for policy in (BASELINE, victim.traditional()):
            fast = simulate(t, policy, warmup=warmup)
            system = MemorySystem(policy, PAPER_MACHINE)
            addresses, is_load, gaps = t.addresses, t.is_load, t.gaps
            for i in range(warmup):
                system.access(
                    int(addresses[i]), is_load=bool(is_load[i]), gap=int(gaps[i])
                )
            if warmup:
                system.reset_measurement()
            for i in range(warmup, n):
                system.access(
                    int(addresses[i]), is_load=bool(is_load[i]), gap=int(gaps[i])
                )
            reference = system.finish()
            assert (
                json.dumps(fast.as_dict(), sort_keys=True).encode()
                == json.dumps(reference.as_dict(), sort_keys=True).encode()
            )

    def test_hot_loop_sheds_triple_copy(self):
        """Regression for the tolist()-then-double-slice bug: simulate()
        used to materialise each trace column once via tolist() and then
        AGAIN via [:warmup] and [warmup:] slices — three full copies per
        column.  The fix feeds one shared zip iterator through islice,
        so peak allocation must undercut the old shape by at least the
        size of one warmup slice's pointer block, with stats untouched."""
        import json
        import tracemalloc

        from repro.system.memory_system import MemorySystem

        n, w = 30_000, 15_000
        t = trace(
            [0x1000 + (i * 2741) % 65536 for i in range(n)],
            is_load=[i % 3 != 0 for i in range(n)],
            gaps=[i % 7 for i in range(n)],
        )

        def old_style():
            system = MemorySystem(BASELINE, PAPER_MACHINE)
            addresses = t.addresses.tolist()
            is_load = t.is_load.tolist()
            gaps = t.gaps.tolist()
            for addr, load, gap in zip(addresses[:w], is_load[:w], gaps[:w]):
                system.access(addr, is_load=load, gap=gap)
            system.reset_measurement()
            for addr, load, gap in zip(addresses[w:], is_load[w:], gaps[w:]):
                system.access(addr, is_load=load, gap=gap)
            return system.finish()

        tracemalloc.start()
        reference = old_style()
        old_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        tracemalloc.start()
        fixed = simulate(t, BASELINE, warmup=w, engine="scalar")
        new_peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()

        assert json.dumps(fixed.as_dict(), sort_keys=True) == json.dumps(
            reference.as_dict(), sort_keys=True
        )
        # One shed warmup slice = w pointers of 8 bytes; the real saving
        # is several times that, but any regression back to whole-column
        # slicing trips this comfortably.
        assert new_peak <= old_peak - 8 * w, (new_peak, old_peak)

    def test_simulate_policies_runs_each(self):
        t = trace([0x1000, 0x2000] * 5)
        out = simulate_policies(t, victim.table1_policies())
        assert set(out) == {
            "no V cache", "V cache", "filter swaps", "filter fills", "filter both"
        }

    def test_speedup_vs_baseline(self):
        # Sparse ping-pong (lots of compute between refs): buffer hits
        # beat 20-cycle L2 trips and the swap traffic stays uncontended.
        a, b = 0x100000, 0x100000 + L1_SIZE
        t = trace([a, b] * 200, gaps=[20] * 400)
        base = simulate(t, BASELINE)
        vc = simulate(t, victim.traditional())
        assert speedup(vc, base) > 1.02

    def test_swap_filter_wins_on_saturating_ping_pong(self):
        # Back-to-back conflict misses: every traditional victim hit swaps,
        # occupying bank and buffer — the exact pathology §5.1's
        # filter-swaps policy removes.
        a, b = 0x100000, 0x100000 + L1_SIZE
        t = trace([a, b] * 200, gaps=[2] * 400)
        trad = simulate(t, victim.traditional())
        noswap = simulate(t, victim.filter_swaps())
        assert noswap.timing.ipc > trad.timing.ipc
        assert noswap.buffer.swaps < trad.buffer.swaps

    def test_speedup_requires_finished_baseline(self):
        from repro.cache.stats import SystemStats

        with pytest.raises(ValueError):
            speedup(SystemStats(), SystemStats())


class TestMeans:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            geomean([])

    def test_empty_mean_message_explains_itself(self):
        # Regression: the bare "mean of no values" left readers to bisect
        # which figure filtered its rows away.
        with pytest.raises(ValueError, match="filtered down to nothing"):
            mean(v for v in [1.0, -2.0] if v > 5)

    def test_geomean_requires_positive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_geomean_zero_names_offending_benchmark(self):
        # Regression: the error must say WHICH value broke the average —
        # by benchmark name when names are given...
        with pytest.raises(
            ValueError, match=r"swim contributed 0\.0"
        ):
            geomean([1.3, 0.0, 1.1], names=["gcc", "swim", "tomcatv"])
        # ...and by position when they are not.
        with pytest.raises(ValueError, match=r"value #2 contributed -1\.5"):
            geomean([1.3, 1.1, -1.5])

    def test_geomean_names_length_checked(self):
        with pytest.raises(ValueError, match="2 values but 3 names"):
            geomean([1.0, 2.0], names=["a", "b", "c"])


class TestPacSystem:
    def test_rejects_associative_l1(self):
        from dataclasses import replace

        from repro.cache.geometry import CacheGeometry

        machine = replace(
            PAPER_MACHINE,
            l1=CacheGeometry(size=16 * 1024, assoc=2, line_size=64),
        )
        with pytest.raises(ValueError):
            PacMemorySystem(machine=machine)

    def test_secondary_hits_cost_more_than_primary(self):
        a, b = 0x100000, 0x100000 + L1_SIZE
        ping = trace([a, b] * 300, gaps=[2] * 600)
        pure_primary = trace([a] * 600, gaps=[2] * 600)
        slow = simulate_pac(ping, PacVariant.CLASSIC)
        fast = simulate_pac(pure_primary, PacVariant.CLASSIC)
        assert fast.timing.ipc > slow.timing.ipc

    def test_pac_beats_dm_on_ping_pong(self):
        a, b = 0x100000, 0x100000 + L1_SIZE
        t = trace([a, b] * 300, gaps=[2] * 600)
        dm = simulate(t, BASELINE)
        pac = simulate_pac(t, PacVariant.CLASSIC)
        assert pac.l1.miss_rate < dm.l1.miss_rate
        assert pac.timing.ipc > dm.timing.ipc

    def test_warmup_reset(self):
        t = trace([0x1000] * 10)
        stats = simulate_pac(t, warmup=5)
        assert stats.l1.accesses == 5
        assert stats.l1.hits == 5

    def test_memory_accesses_counted(self):
        t = trace([0x1000, 0x1000])
        stats = simulate_pac(t)
        assert stats.memory_accesses == 1
