"""Unit tests: fault plans, injection runtime, durable writes, doctor."""

from __future__ import annotations

import errno
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import faults
from repro.experiments.base import ExperimentParams
from repro.faults import FaultPlan, FaultSpec, InjectedCrash, parse_plan
from repro.faults.plan import _NTH_MOD
from repro.harness.checkpoint import (
    SCHEMA_VERSION,
    CheckpointError,
    RunDirectory,
    verify_artifact_text,
)
from repro.harness.doctor import (
    VERDICT_CLEAN,
    VERDICT_CORRUPT,
    VERDICT_REPAIRABLE,
    VERDICT_REPAIRED,
    diagnose,
)
from repro.harness.doctor import main as doctor_main
from repro.harness.durable import atomic_write_text, content_checksum
from repro.obs.validate import split_torn_tail

TINY = ExperimentParams(n_refs=4_000, warmup=1_000, suite=["gcc"])


def sample_result():
    from repro.experiments.base import ExperimentResult

    return ExperimentResult(
        experiment_id="toy",
        title="toy table",
        headers=["bench", "value"],
        rows=[["gcc", 1.25]],
    )


@pytest.fixture(autouse=True)
def _disarm():
    faults.deactivate()
    yield
    faults.deactivate()


# ----------------------------------------------------------------------
# Plan grammar
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_full_and_defaults(self):
        spec = FaultSpec.parse("checkpoint_write:kill:7:2")
        assert spec == FaultSpec("checkpoint_write", "kill", seed=7, repeat=2)
        assert FaultSpec.parse("sim_tick:delay") == FaultSpec("sim_tick", "delay")

    def test_nth_follows_seed(self):
        for seed in range(8):
            assert FaultSpec("sim_tick", "kill", seed=seed).nth == 1 + seed % _NTH_MOD

    def test_rejects_unknown_site_kind_and_bad_ints(self):
        with pytest.raises(ValueError, match="unknown injection site"):
            FaultSpec.parse("nowhere:kill")
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec.parse("sim_tick:meteor")
        with pytest.raises(ValueError, match="must be integers"):
            FaultSpec.parse("sim_tick:kill:soon")
        with pytest.raises(ValueError, match="SITE:KIND"):
            FaultSpec.parse("sim_tick")

    def test_plan_parse_format_round_trip(self):
        plan = parse_plan("sim_tick:kill:2,event_append:partial:0:3")
        assert len(plan.specs) == 2
        assert parse_plan(plan.format()) == plan
        with pytest.raises(ValueError, match="empty fault plan"):
            parse_plan(" , ")

    def test_plan_truthiness_and_sites(self):
        assert not FaultPlan()
        plan = parse_plan("sim_tick:kill,event_append:delay")
        assert plan
        assert plan.sites() == ["event_append", "sim_tick"]


# ----------------------------------------------------------------------
# Runtime
# ----------------------------------------------------------------------
class TestRuntime:
    def test_disarmed_fire_is_a_no_op(self):
        assert faults.active_plan() is None
        faults.fire("checkpoint_write")  # must not raise

    def test_exception_fires_on_nth_hit_then_respects_repeat(self):
        faults.activate(parse_plan("worker_spawn:exception:1"))  # nth=2
        faults.fire("worker_spawn")  # hit 1: below nth
        with pytest.raises(InjectedCrash, match="worker_spawn"):
            faults.fire("worker_spawn")  # hit 2: fires
        faults.fire("worker_spawn")  # repeat budget (1) spent

    def test_repeat_zero_is_unbounded(self):
        faults.activate(parse_plan("worker_spawn:enospc:0:0"))
        for _ in range(5):
            with pytest.raises(OSError) as excinfo:
                faults.fire("worker_spawn")
            assert excinfo.value.errno == errno.ENOSPC

    def test_activate_resets_counters(self):
        faults.activate(parse_plan("worker_spawn:exception:1"))
        faults.fire("worker_spawn")
        faults.activate(parse_plan("worker_spawn:exception:1"))
        faults.fire("worker_spawn")  # counter restarted: still below nth

    def test_sim_tick_every_gated_on_armed_site(self):
        assert faults.sim_tick_every() == 0
        faults.activate(parse_plan("event_append:kill"))
        assert faults.sim_tick_every() == 0
        faults.activate(parse_plan("sim_tick:exception"))
        assert faults.sim_tick_every() == faults.SIM_TICK_EVERY

    def test_partial_tears_file_and_exits(self, tmp_path):
        # partial ends in os._exit, so drive it in a child interpreter.
        target = tmp_path / "artifact.json"
        payload = json.dumps({"schema": 2, "data": list(range(40))})
        code = (
            "from pathlib import Path\n"
            "from repro import faults\n"
            "faults.activate(faults.parse_plan('checkpoint_write:partial:0'))\n"
            f"faults.fire('checkpoint_write', path=Path({str(target)!r}), "
            f"payload={payload!r})\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=Path(__file__).resolve().parent.parent,
        )
        assert proc.returncode == faults.runtime.TORN_EXIT
        torn = target.read_text()
        assert torn == payload[: len(payload) // 2]
        with pytest.raises(json.JSONDecodeError):
            json.loads(torn)

    def test_delay_sleeps_deterministically(self, monkeypatch):
        slept = []
        import repro.faults.runtime as runtime

        monkeypatch.setattr(runtime.time, "sleep", slept.append)
        faults.activate(parse_plan("sim_tick:delay:3:0"))  # nth hit = 1
        faults.fire("sim_tick")
        faults.activate(parse_plan("sim_tick:delay:3:0"))
        faults.fire("sim_tick")
        assert slept[0] == slept[1]
        assert 0.01 <= slept[0] <= 0.2


# ----------------------------------------------------------------------
# Durable writes (satellite: the fsync regression test)
# ----------------------------------------------------------------------
class TestDurable:
    def test_atomic_write_fsyncs_data_before_replace_and_dir_after(
        self, tmp_path, monkeypatch
    ):
        calls = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append("fsync"), real_fsync(fd))
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda a, b: (calls.append("replace"), real_replace(a, b)),
        )
        atomic_write_text(tmp_path / "x.json", "{}\n")
        # Data fsync strictly before the rename, directory fsync after:
        # miss either and a power cut can leave the rename durable with
        # the data (or the directory entry) lost.
        assert calls == ["fsync", "replace", "fsync"]
        assert (tmp_path / "x.json").read_text() == "{}\n"
        assert not (tmp_path / "x.json.tmp").exists()

    def test_overwrites_atomically(self, tmp_path):
        path = tmp_path / "f"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"

    def test_content_checksum_is_stable(self):
        assert content_checksum("abc") == content_checksum("abc")
        assert content_checksum("abc") != content_checksum("abd")


# ----------------------------------------------------------------------
# Checkpoint schema 2
# ----------------------------------------------------------------------
class TestCheckpointV2:
    def test_artifact_carries_checksum_and_origin(self, tmp_path):
        rd = RunDirectory(tmp_path)
        rd.prepare(TINY, resume=False, cells=["toy.main"])
        rd.save_cell("toy.main", sample_result(), status="RETRIED", attempts=2)
        payload = json.loads(rd.cell_path("toy.main").read_text())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["origin"] == {"status": "RETRIED", "attempts": 2}
        entry = rd.load_checkpoint("toy.main")
        assert entry is not None
        assert (entry.status, entry.attempts) == ("RETRIED", 2)
        assert entry.checksum == payload["checksum"]
        manifest = rd.read_manifest()
        assert manifest["checksums"]["toy.main"] == payload["checksum"]
        assert manifest["cells"] == ["toy.main"]

    def test_checksum_mismatch_counts_as_absent(self, tmp_path):
        rd = RunDirectory(tmp_path)
        rd.prepare(TINY, resume=False)
        rd.save_cell("toy.main", sample_result())
        payload = json.loads(rd.cell_path("toy.main").read_text())
        payload["result"]["rows"][0][1] = 9.99  # tamper, keep old checksum
        rd.cell_path("toy.main").write_text(json.dumps(payload))
        assert rd.load_checkpoint("toy.main") is None
        assert rd.completed_cells() == []

    def test_verify_artifact_text_problems(self):
        assert verify_artifact_text("{oops")[1].startswith("not valid JSON")
        assert "not a JSON object" in verify_artifact_text("[1]")[1]
        doc = {"schema": SCHEMA_VERSION, "cell": "a.b", "checksum": "bad",
               "result": {"x": 1}}
        assert "checksum mismatch" in verify_artifact_text(json.dumps(doc))[1]
        good = dict(doc, checksum=content_checksum(json.dumps({"x": 1},
                                                             sort_keys=True)))
        payload, problem = verify_artifact_text(json.dumps(good), "a.b")
        assert problem is None and payload["cell"] == "a.b"
        assert "!=" in verify_artifact_text(json.dumps(good), "other")[1]

    def test_manifest_backup_written_on_rewrite(self, tmp_path):
        rd = RunDirectory(tmp_path)
        rd.prepare(TINY, resume=False, cells=["toy.main"])
        before = rd.manifest_path.read_text()
        rd.save_cell("toy.main", sample_result())
        assert rd.manifest_backup_path.read_text() == before
        assert rd.manifest_path.read_text() != before

    def test_torn_manifest_points_at_doctor(self, tmp_path):
        rd = RunDirectory(tmp_path)
        rd.prepare(TINY, resume=False)
        rd.manifest_path.write_text('{"schema": 2, "par')
        with pytest.raises(CheckpointError, match="doctor"):
            RunDirectory(tmp_path).prepare(TINY, resume=True)


# ----------------------------------------------------------------------
# Torn-tail tolerance (satellite: repro.obs.validate)
# ----------------------------------------------------------------------
class TestSplitTornTail:
    LINE = json.dumps({"schema": 1, "type": "heartbeat"})

    def test_clean_stream_untouched(self):
        text = self.LINE + "\n" + self.LINE + "\n"
        lines, warning = split_torn_tail(text)
        assert warning is None and len(lines) == 2

    def test_torn_tail_dropped_with_warning(self):
        text = self.LINE + "\n" + self.LINE[: len(self.LINE) // 2]
        lines, warning = split_torn_tail(text)
        assert len(lines) == 1
        assert "torn final line" in warning

    def test_unterminated_but_parseable_tail_kept(self):
        text = self.LINE + "\n" + self.LINE  # crash exactly before \n
        lines, warning = split_torn_tail(text)
        assert warning is None and len(lines) == 2

    def test_mid_file_corruption_still_fails_validate(self, tmp_path, capsys):
        from repro.obs.validate import main as validate_main

        events = tmp_path / "events.jsonl"
        events.write_text('{"torn mid', )
        events.write_text(
            '{"broken\n'
            + json.dumps({"schema": 1, "type": "heartbeat", "sim": "s",
                          "refs_done": 1, "refs_per_sec": 1.0, "ts": 0,
                          "pid": 1}) + "\n"
        )
        assert validate_main([str(events)]) == 1

    def test_torn_tail_passes_validate_with_warning(self, tmp_path, capsys):
        from repro.obs.validate import main as validate_main

        heartbeat = json.dumps({"schema": 1, "type": "heartbeat", "sim": "s",
                                "refs_done": 1, "refs_per_sec": 1.0, "ts": 0,
                                "pid": 1})
        events = tmp_path / "events.jsonl"
        events.write_text(heartbeat + "\n" + heartbeat[:20])
        assert validate_main([str(events)]) == 0
        assert "torn final line" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Doctor
# ----------------------------------------------------------------------
class TestDoctor:
    def _run_dir_with_cells(self, tmp_path):
        rd = RunDirectory(tmp_path)
        rd.prepare(TINY, resume=False, cells=["a.main", "b.main"])
        rd.save_cell("a.main", sample_result())
        rd.save_cell("b.main", sample_result())
        return rd

    def test_clean_directory(self, tmp_path):
        rd = self._run_dir_with_cells(tmp_path)
        rd.save_report({"schema": 2, "cells": [], "summary": {}, "ok": True})
        diag = diagnose(rd.path)
        assert diag.verdict in (VERDICT_CLEAN, VERDICT_REPAIRED)
        # A second pass over the (now settled) directory is CLEAN.
        assert diagnose(rd.path).verdict == VERDICT_CLEAN

    def test_torn_artifact_is_quarantined_and_reported_lost(self, tmp_path):
        rd = self._run_dir_with_cells(tmp_path)
        text = rd.cell_path("b.main").read_text()
        rd.cell_path("b.main").write_text(text[: len(text) // 2])
        diag = diagnose(rd.path)
        assert diag.verdict == VERDICT_REPAIRED
        assert diag.cells_lost == ["b.main"]
        assert diag.cells_intact == ["a.main"]
        assert (rd.quarantine_path / "b.main.json").exists()
        assert "b.main" not in rd.read_manifest()["checksums"]
        report = json.loads(rd.report_path.read_text())
        assert report["ok"] is False
        # The repaired directory now resumes: only b.main re-runs.
        RunDirectory(rd.path).prepare(TINY, resume=True)

    def test_unregistered_artifact_is_reregistered(self, tmp_path):
        rd = self._run_dir_with_cells(tmp_path)
        manifest = rd.read_manifest()
        del manifest["checksums"]["a.main"]  # crash between write+register
        atomic_write_text(
            rd.manifest_path, json.dumps(manifest, sort_keys=True) + "\n"
        )
        diag = diagnose(rd.path)
        assert diag.verdict == VERDICT_REPAIRED
        assert diag.cells_lost == []
        assert "a.main" in rd.read_manifest()["checksums"]

    def test_torn_manifest_restored_from_backup(self, tmp_path):
        rd = self._run_dir_with_cells(tmp_path)
        rd.manifest_path.write_text('{"schema": 2, "cells": [')
        diag = diagnose(rd.path)
        assert diag.verdict == VERDICT_REPAIRED
        manifest = rd.read_manifest()
        assert set(manifest["checksums"]) == {"a.main", "b.main"}
        assert diag.cells_lost == []

    def test_no_manifest_no_backup_is_corrupt(self, tmp_path):
        (tmp_path / "cells").mkdir(parents=True)
        (tmp_path / "manifest.json").write_text("{definitely torn")
        diag = diagnose(tmp_path)
        assert diag.verdict == VERDICT_CORRUPT
        assert diag.exit_code == 2

    def test_torn_event_tail_truncated_and_unclosed_sim_dropped(self, tmp_path):
        rd = self._run_dir_with_cells(tmp_path)
        ev = lambda **kw: json.dumps({"schema": 1, "ts": 0, "pid": 1, **kw})
        closed = [
            ev(type="sim_start", sim="p-1", bench="gcc", policy="base",
               refs=10, warmup=0),
            ev(type="sim_end", sim="p-1", refs=10, wall_s=0.1, final={}),
        ]
        unclosed = ev(type="sim_start", sim="p-2", bench="gcc", policy="base",
                      refs=10, warmup=0)
        torn = ev(type="heartbeat", sim="p-2", refs_done=5, refs_per_sec=1.0)
        (rd.path / "events.jsonl").write_text(
            "\n".join(closed + [unclosed]) + "\n" + torn[:25]
        )
        diag = diagnose(rd.path)
        assert diag.verdict == VERDICT_REPAIRED
        remaining = (rd.path / "events.jsonl").read_text()
        assert remaining.endswith("\n")
        assert '"p-2"' not in remaining
        assert '"p-1"' in remaining

    def test_recovers_event_glued_to_torn_fragment(self, tmp_path):
        rd = self._run_dir_with_cells(tmp_path)
        ev = lambda **kw: json.dumps({"schema": 1, "ts": 0, "pid": 1, **kw})
        good = ev(type="counters", sim="p-1", delta={"x": 1})
        fragment = ev(type="heartbeat", sim="p-9", refs_done=1,
                      refs_per_sec=1.0)[:19]
        (rd.path / "events.jsonl").write_text(fragment + good + "\n")
        diagnose(rd.path)
        remaining = (rd.path / "events.jsonl").read_text()
        assert remaining == good + "\n"

    def test_dry_run_changes_nothing(self, tmp_path):
        rd = self._run_dir_with_cells(tmp_path)
        text = rd.cell_path("b.main").read_text()
        rd.cell_path("b.main").write_text(text[: len(text) // 2])
        diag = diagnose(rd.path, apply=False)
        assert diag.verdict == VERDICT_REPAIRABLE
        assert diag.exit_code == 1
        assert rd.cell_path("b.main").exists()
        assert not rd.quarantine_path.exists()

    def test_cli_json_output(self, tmp_path, capsys):
        rd = self._run_dir_with_cells(tmp_path)
        rd.save_report({"schema": 2, "cells": [], "summary": {}, "ok": True})
        diagnose(rd.path)  # settle
        assert doctor_main([str(rd.path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == VERDICT_CLEAN
        assert doctor_main([str(tmp_path / "nope")]) == 2
