"""Tests for the Tyson predictor, ASCII charts, and workload validation."""

import pytest

from repro.buffers.tyson import TysonPredictor, TysonResult, simulate_tyson
from repro.cache.geometry import CacheGeometry
from repro.experiments.base import ExperimentResult
from repro.experiments.charts import bar_chart, grouped_chart
from repro.workloads.spec_analogs import build
from repro.workloads.trace import Trace

GEO = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)


class TestTysonPredictor:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            TysonPredictor(entries=100)
        with pytest.raises(ValueError):
            TysonPredictor(threshold=5, max_count=3)

    def test_cold_pc_does_not_bypass(self):
        p = TysonPredictor()
        assert not p.should_bypass(0x400000)

    def test_saturating_misses_trigger_bypass(self):
        p = TysonPredictor()
        for _ in range(3):
            p.record(0x400000, hit=False)
        assert p.should_bypass(0x400000)

    def test_hits_pull_back(self):
        p = TysonPredictor()
        for _ in range(3):
            p.record(0x400000, hit=False)
        p.record(0x400000, hit=True)
        assert not p.should_bypass(0x400000)

    def test_tag_replacement_resets(self):
        p = TysonPredictor(entries=4)
        pc_a = 0x400000
        pc_b = pc_a + 4 * 4  # same slot in a 4-entry table
        for _ in range(3):
            p.record(pc_a, hit=False)
        p.record(pc_b, hit=False)
        assert not p.should_bypass(pc_a)

    def test_simulate_protects_cache_from_streaming_pc(self):
        """A streaming load (always misses) gets excluded; an established
        hot load's data stays cached.  The hot load runs alone first so
        its predictor entry reflects its true (hitting) behaviour."""
        hot_pc, stream_pc = 0x400000, 0x400004
        addrs, pcs = [], []
        for i in range(96):                          # warm the hot loop
            addrs.append(0x100000 + (i % 32) * 64)
            pcs.append(hot_pc)
        for i in range(4000):
            addrs.append(0x100000 + (i % 32) * 64)   # hot 2KB
            pcs.append(hot_pc)
            addrs.append(0x800000 + i * 64)          # endless stream
            pcs.append(stream_pc)
        res = simulate_tyson(Trace(addrs, pcs=pcs), GEO)
        assert isinstance(res, TysonResult)
        assert res.bypasses > 3000          # the stream got excluded
        assert res.d_hit_rate > 40          # hot data survived

    def test_cold_start_death_spiral_is_real(self):
        """Without a warm-up phase, a stream that immediately evicts the
        hot load's few cached lines starves the predictor of hits — the
        known pathology of always-updated PC predictors (one reason the
        paper prefers the miss-only MCT)."""
        hot_pc, stream_pc = 0x400000, 0x400004
        addrs, pcs = [], []
        for i in range(2000):
            addrs.append(0x100000 + (i % 32) * 64)
            pcs.append(hot_pc)
            addrs.append(0x800000 + i * 64)
            pcs.append(stream_pc)
        res = simulate_tyson(Trace(addrs, pcs=pcs), GEO)
        assert res.d_hit_rate < 5.0

    def test_simulate_on_analog_runs(self):
        res = simulate_tyson(build("compress", 10_000), GEO)
        assert 0 < res.total_hit_rate < 100


class TestCharts:
    def _result(self):
        r = ExperimentResult("figX", "demo", headers=["bench", "speedup"])
        r.add_row("gcc", 1.10)
        r.add_row("li", 0.95)
        r.add_row("AVERAGE", 1.02)
        return r

    def test_bar_chart_contains_rows_and_values(self):
        text = bar_chart(self._result(), "speedup")
        assert "gcc" in text and "1.10" in text
        assert text.count("|") == 3

    def test_baseline_marks_below(self):
        text = bar_chart(self._result(), "speedup", baseline=1.0)
        assert "(below)" in text          # li is under the baseline
        assert text.count("(below)") == 1

    def test_unknown_column_raises(self):
        with pytest.raises(ValueError):
            bar_chart(self._result(), "nope")

    def test_non_numeric_column_raises(self):
        r = ExperimentResult("figX", "demo", headers=["bench", "label"])
        r.add_row("gcc", "hello")
        with pytest.raises(ValueError):
            bar_chart(r, "label")

    def test_grouped_chart_renders_all_numeric_columns(self):
        r = ExperimentResult("figX", "demo", headers=["bench", "a", "b"])
        r.add_row("gcc", 1.0, 2.0)
        text = grouped_chart(r)
        assert "figX: a" in text and "figX: b" in text


class TestValidation:
    def test_all_analogs_validate(self):
        from repro.workloads.validation import validate_suite

        reports = validate_suite(n_refs=20_000)
        bad = [r for r in reports if not r.ok]
        assert not bad, [(r.name, r.problems) for r in bad]

    def test_report_fields(self):
        from repro.workloads.validation import validate

        r = validate("go", n_refs=10_000)
        assert r.name == "go"
        assert r.ok
        assert 0 < r.miss_rate < 100
