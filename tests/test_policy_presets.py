"""Regression tests pinning every figure's policy presets to the paper.

A silent change to a preset (wrong filter, wrong buffer size, a swap
where the paper says no-swap) would skew a whole figure while every
mechanism test stayed green; these tests pin the presets to the paper's
text.
"""

from repro.buffers import amb, exclusion, prefetch, victim
from repro.core.filters import ConflictFilter
from repro.system.policies import ExclusionMode


class TestVictimPresets:
    def test_or_conflict_everywhere(self):
        """§5.1: 'Each of these policies use the or-conflict algorithm'."""
        assert victim.VICTIM_FILTER is ConflictFilter.OR_CONFLICT
        assert victim.filter_swaps().victim_no_swap_filter is ConflictFilter.OR_CONFLICT
        assert victim.filter_fills().victim_fill_filter is ConflictFilter.OR_CONFLICT

    def test_traditional_is_unfiltered(self):
        cfg = victim.traditional()
        assert cfg.victim_fills
        assert cfg.victim_swap
        assert cfg.victim_fill_filter is None
        assert cfg.victim_no_swap_filter is None
        assert not cfg.prefetch and cfg.exclusion is None

    def test_eight_entries_default(self):
        """§4: eight fully-associative entries."""
        for cfg in victim.figure3_policies():
            assert cfg.buffer_entries == 8

    def test_table1_order(self):
        names = [p.name for p in victim.table1_policies()]
        assert names == [
            "no V cache", "V cache", "filter swaps", "filter fills",
            "filter both",
        ]


class TestPrefetchPresets:
    def test_figure4_bar_order(self):
        """Figure 4's bars: none, in, out, and, or."""
        filters = [p.prefetch_filter for p in prefetch.figure4_policies()]
        assert filters == [
            None,
            ConflictFilter.IN_CONFLICT,
            ConflictFilter.OUT_CONFLICT,
            ConflictFilter.AND_CONFLICT,
            ConflictFilter.OR_CONFLICT,
        ]

    def test_prefetchers_do_nothing_else(self):
        for cfg in prefetch.figure4_policies():
            assert cfg.prefetch
            assert not cfg.victim_fills
            assert cfg.exclusion is None


class TestExclusionPresets:
    def test_sixteen_entry_buffer(self):
        """§5.3: 'we use the slightly larger structure here' (16 entries,
        because the MAT 'do[es] poorly with an 8-entry buffer')."""
        assert exclusion.EXCLUSION_BUFFER_ENTRIES == 16
        for cfg in exclusion.figure5_policies():
            if cfg.exclusion is not None:  # skip the no-buffer baseline
                assert cfg.buffer_entries == 16

    def test_figure5_bar_order(self):
        modes = [p.exclusion for p in exclusion.figure5_policies()]
        assert modes == [
            None,  # the no-buffer baseline carries no exclusion mode
            ExclusionMode.MAT,
            ExclusionMode.CONFLICT,
            ExclusionMode.CONFLICT_HISTORY,
            ExclusionMode.CAPACITY,
            ExclusionMode.CAPACITY_HISTORY,
        ]

    def test_install_on_bypass_defaults_on(self):
        """§5.3's MCT tweak is part of every MCT-based exclusion policy."""
        cfg = exclusion.exclusion(ExclusionMode.CAPACITY)
        assert cfg.mct_install_on_bypass


class TestAMBPresets:
    def test_out_conflict_for_all_multis(self):
        """§5.5: 'All multiple-policy results shown use the out-conflict
        filter.'"""
        assert amb.AMB_FILTER is ConflictFilter.OUT_CONFLICT
        for cfg in (amb.vict_pref(), amb.vict_excl(), amb.vic_pre_exc()):
            if cfg.victim_fills:
                assert cfg.victim_fill_filter is ConflictFilter.OUT_CONFLICT
            if cfg.prefetch:
                assert cfg.prefetch_filter is ConflictFilter.OUT_CONFLICT

    def test_vict_pref_victim_caches_without_swaps(self):
        """§5.5: 'VictPref victim caches (but doesn't swap) conflict
        misses and prefetches capacity misses.'"""
        cfg = amb.vict_pref()
        assert cfg.victim_fills and not cfg.victim_swap
        assert cfg.prefetch
        assert cfg.exclusion is None

    def test_pref_excl_has_nothing_for_conflicts(self):
        """§5.5: 'PrefExcl does not do anything with conflict misses.'"""
        cfg = amb.pref_excl()
        assert not cfg.victim_fills
        assert cfg.prefetch and cfg.exclusion is ExclusionMode.CAPACITY

    def test_vic_pre_exc_does_everything(self):
        cfg = amb.vic_pre_exc()
        assert cfg.victim_fills and cfg.prefetch
        assert cfg.exclusion is ExclusionMode.CAPACITY

    def test_figure6_has_seven_policies(self):
        names = [p.name for p in amb.figure6_policies()]
        assert names == [
            "Vict", "Pref", "Excl", "VictPref", "PrefExcl", "VictExcl",
            "VicPreExc",
        ]
        assert set(amb.SINGLE_POLICY_NAMES) | set(amb.COMBINED_POLICY_NAMES) == set(names)

    def test_singles_use_single_mechanisms(self):
        assert amb.vict().victim_fills and not amb.vict().prefetch
        assert amb.pref().prefetch and not amb.pref().victim_fills
        assert amb.excl().exclusion is ExclusionMode.CAPACITY
        assert not amb.excl().prefetch and not amb.excl().victim_fills
