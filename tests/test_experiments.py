"""Tests for the experiment framework and each paper table/figure.

These run with very small traces — they check plumbing and the *shape*
of each result (who wins, in which direction), not the committed numbers.
"""

import pytest

from repro.experiments import fig1_accuracy, fig2_tag_bits, fig3_victim
from repro.experiments import fig4_prefetch, fig5_exclusion, fig6_amb
from repro.experiments import fig7_amb_hits, sec54_pseudo, table1_victim
from repro.experiments.base import (
    ExperimentParams,
    ExperimentResult,
    format_result,
)

#: Tiny but warm enough to be meaningful; a couple of benchmarks only.
PARAMS = ExperimentParams(
    n_refs=20_000, warmup=8_000, suite=["tomcatv", "gcc", "compress"]
)
ACC_PARAMS = ExperimentParams(
    n_refs=20_000, warmup=0, suite=["tomcatv", "gcc", "compress"]
)


class TestFramework:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            ExperimentParams(n_refs=0)
        with pytest.raises(ValueError):
            ExperimentParams(n_refs=10, warmup=10)

    def test_quick_params(self):
        q = ExperimentParams.quick()
        assert q.warmup < q.n_refs

    def test_result_row_validation(self):
        r = ExperimentResult("x", "t", headers=["a", "b"])
        with pytest.raises(ValueError):
            r.add_row(1)

    def test_result_accessors(self):
        r = ExperimentResult("x", "t", headers=["bench", "v"])
        r.add_row("gcc", 1.5)
        assert r.column("v") == [1.5]
        assert r.cell("gcc", "v") == 1.5
        assert r.row_dict()["gcc"] == ["gcc", 1.5]

    def test_format_result_renders(self):
        r = ExperimentResult("x", "Title", headers=["bench", "v"],
                             paper_reference="ref")
        r.add_row("gcc", 1.234)
        r.notes.append("a note")
        text = format_result(r)
        assert "Title" in text and "gcc" in text and "1.23" in text
        assert "note: a note" in text


class TestFig1:
    def test_shape_and_accuracy(self):
        res = fig1_accuracy.run(ACC_PARAMS)
        assert len(res.rows) == len(ACC_PARAMS.suite) + 1  # + AVERAGE
        avg = res.row_dict()["AVERAGE"]
        # All eight accuracy cells should be well above chance.
        assert all(v > 55.0 for v in avg[1:])


class TestFig2:
    def test_monotone_capacity_accuracy(self):
        res = fig2_tag_bits.run(ACC_PARAMS)
        caps = res.column("capacity acc %")
        assert caps == sorted(caps)  # more bits never hurt capacity acc
        # 8 bits is within 2 points of full tags (the paper's point).
        by_bits = res.row_dict()
        assert by_bits["full"][2] - by_bits[8][2] < 2.0

    def test_one_bit_is_conflict_biased(self):
        res = fig2_tag_bits.run(ACC_PARAMS)
        one = res.row_dict()[1]
        full = res.row_dict()["full"]
        assert one[1] >= full[1]      # conflict acc starts high
        assert one[2] < full[2]       # capacity acc starts low


class TestVictimExperiments:
    def test_fig3_rows_and_renorm(self):
        res = fig3_victim.run(PARAMS)
        names = [row[0] for row in res.rows]
        assert "AVERAGE" in names and "vs V cache" in names

    def test_table1_traffic_shape(self):
        res = table1_victim.run(PARAMS)
        d = res.row_dict()
        # Filtering swaps (nearly) eliminates swaps.
        assert d["filter swaps"][4] < d["V cache"][4] / 5
        # Filtering fills cuts fills by at least a third.
        assert d["filter fills"][5] < d["V cache"][5] * 0.67
        # The no-buffer row has no victim traffic at all.
        assert d["no V cache"][2] == 0.0


class TestFig4:
    def test_filtering_raises_accuracy(self):
        res = fig4_prefetch.run_accuracy(PARAMS)
        d = res.row_dict()
        unfiltered = d["next-line"][4]
        or_filtered = d["filter or-conflict"][4]
        assert or_filtered > unfiltered

    def test_or_filter_issues_fewest(self):
        res = fig4_prefetch.run_accuracy(PARAMS)
        issued = {row[0]: row[1] for row in res.rows}
        assert issued["filter or-conflict"] == min(issued.values())

    def test_speedup_table_runs(self):
        res = fig4_prefetch.run_speedup(PARAMS)
        assert res.row_dict()["AVERAGE"]


class TestFig5:
    def test_capacity_beats_mat(self):
        res = fig5_exclusion.run(PARAMS)
        avg = res.row_dict()["AVERAGE"]
        cap = avg[res.headers.index("capacity")]
        mat = avg[res.headers.index("mat")]
        assert cap >= mat

    def test_hit_rate_table(self):
        res = fig5_exclusion.run_hit_rates(PARAMS)
        d = res.row_dict()
        assert d["capacity"][3] > d["no buffer"][3]


class TestSec54:
    def test_mct_recovers_toward_two_way(self):
        res = sec54_pseudo.run(PARAMS)
        avg = res.row_dict()["AVERAGE"]
        miss_base = avg[res.headers.index("miss PAC-base")]
        miss_mct = avg[res.headers.index("miss PAC-MCT")]
        miss_2w = avg[res.headers.index("miss 2-way")]
        assert miss_mct <= miss_base
        assert abs(miss_mct - miss_2w) < abs(miss_base - miss_2w) + 1e-9


class TestFig6And7:
    def test_combined_beats_singles(self):
        res = fig6_amb.run(PARAMS, entries=8)
        avg = res.row_dict()["AVERAGE"]
        get = lambda name: avg[res.headers.index(name)]
        best_single = max(get("Vict"), get("Pref"), get("Excl"))
        best_combined = max(
            get("VictPref"), get("PrefExcl"), get("VictExcl"), get("VicPreExc")
        )
        assert best_combined > best_single

    def test_fig7_components_sum_to_total(self):
        res = fig7_amb_hits.run(PARAMS, entries=8)
        for row in res.rows:
            _, d, v, pf, ex, total, miss = row
            assert total == pytest.approx(d + v + pf + ex)
            assert miss == pytest.approx(100.0 - total)

    def test_fig7_roles_match_policies(self):
        res = fig7_amb_hits.run(PARAMS, entries=8)
        d = res.row_dict()
        assert d["Vict"][3] == 0.0       # no prefetch hits in Vict
        assert d["Pref"][2] == 0.0       # no victim hits in Pref
        assert d["Excl"][2] == 0.0 and d["Excl"][3] == 0.0
