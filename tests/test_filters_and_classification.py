"""Unit tests for the filter algebra and the classification vocabulary."""

import pytest

from repro.core.classification import ClassifiedMiss, MissClass
from repro.core.filters import (
    ALL_FILTERS,
    DEFAULT_FILTER,
    MOST_LIBERAL_FILTER,
    ConflictFilter,
    parse_filter,
)


class TestMissClass:
    def test_binary_grouping(self):
        assert MissClass.CONFLICT.is_conflict
        assert not MissClass.CAPACITY.is_conflict
        assert not MissClass.COMPULSORY.is_conflict  # paper groups with capacity

    def test_str(self):
        assert str(MissClass.CONFLICT) == "conflict"


class TestClassifiedMiss:
    def test_correct_under_binary_grouping(self):
        m = ClassifiedMiss(
            address=0x1000,
            set_index=4,
            predicted=MissClass.CAPACITY,
            actual=MissClass.COMPULSORY,
        )
        assert m.correct is True  # compulsory counts as capacity

    def test_incorrect(self):
        m = ClassifiedMiss(
            address=0x1000,
            set_index=4,
            predicted=MissClass.CONFLICT,
            actual=MissClass.CAPACITY,
        )
        assert m.correct is False

    def test_unknown_truth(self):
        m = ClassifiedMiss(address=0, set_index=0, predicted=MissClass.CONFLICT)
        assert m.correct is None


class TestFilterTruthTable:
    CASES = [
        # (new_is_conflict, evicted_bit, in, out, and, or)
        (False, False, False, False, False, False),
        (False, True, True, False, False, True),
        (True, False, False, True, False, True),
        (True, True, True, True, True, True),
    ]

    @pytest.mark.parametrize("new,evicted,f_in,f_out,f_and,f_or", CASES)
    def test_all_filters(self, new, evicted, f_in, f_out, f_and, f_or):
        kw = dict(new_is_conflict=new, evicted_conflict_bit=evicted)
        assert ConflictFilter.IN_CONFLICT.matches(**kw) == f_in
        assert ConflictFilter.OUT_CONFLICT.matches(**kw) == f_out
        assert ConflictFilter.AND_CONFLICT.matches(**kw) == f_and
        assert ConflictFilter.OR_CONFLICT.matches(**kw) == f_or

    def test_or_is_most_liberal(self):
        """OR matches whenever any other filter matches."""
        for new in (False, True):
            for evicted in (False, True):
                kw = dict(new_is_conflict=new, evicted_conflict_bit=evicted)
                any_other = any(
                    f.matches(**kw)
                    for f in ALL_FILTERS
                    if f is not ConflictFilter.OR_CONFLICT
                )
                assert ConflictFilter.OR_CONFLICT.matches(**kw) or not any_other

    def test_and_is_most_conservative(self):
        for new in (False, True):
            for evicted in (False, True):
                kw = dict(new_is_conflict=new, evicted_conflict_bit=evicted)
                if ConflictFilter.AND_CONFLICT.matches(**kw):
                    assert all(f.matches(**kw) for f in ALL_FILTERS)


class TestFilterMetadata:
    def test_only_out_needs_no_extra_bits(self):
        needs = {f: f.needs_conflict_bits for f in ALL_FILTERS}
        assert not needs[ConflictFilter.OUT_CONFLICT]
        assert all(
            needs[f] for f in ALL_FILTERS if f is not ConflictFilter.OUT_CONFLICT
        )

    def test_paper_defaults(self):
        assert DEFAULT_FILTER is ConflictFilter.OUT_CONFLICT
        assert MOST_LIBERAL_FILTER is ConflictFilter.OR_CONFLICT

    def test_parse_filter_roundtrip(self):
        for f in ALL_FILTERS:
            assert parse_filter(f.value) is f

    def test_parse_filter_unknown(self):
        with pytest.raises(ValueError, match="unknown conflict filter"):
            parse_filter("xor-conflict")
