"""Tests for the §5.6 extensions."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.line import CacheLine
from repro.extensions.assoc_replacement import (
    ConflictBiasedReplacement,
    compare_assoc_replacement,
)
from repro.extensions.coscheduling import CoScheduleAdvisor
from repro.extensions.page_remap import (
    PageRemapper,
    RemapPolicy,
    simulate_remap,
)
from repro.workloads.spec_analogs import build
from repro.workloads.trace import Trace

GEO_DM = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)
GEO_4W = CacheGeometry(size=16 * 1024, assoc=4, line_size=64)


class TestConflictBiasedReplacement:
    def _lines(self, *specs):
        out = []
        for touch, conflict in specs:
            line = CacheLine()
            line.fill(0, now=touch, conflict_bit=conflict)
            out.append(line)
        return out

    def test_prefers_capacity_lines(self):
        lines = self._lines((9, False), (1, True), (5, False))
        # LRU overall would pick way 1 (oldest), but it is conflict-marked;
        # among the capacity lines, way 2 is older.
        assert ConflictBiasedReplacement().choose_victim(lines) == 2

    def test_falls_back_to_lru_when_all_marked(self):
        lines = self._lines((9, True), (1, True), (5, True))
        assert ConflictBiasedReplacement().choose_victim(lines) == 1

    def test_prefers_invalid(self):
        lines = self._lines((9, False), (1, True))
        lines.append(CacheLine())
        assert ConflictBiasedReplacement().choose_victim(lines) == 2

    def test_bias_helps_stream_plus_pingpong(self):
        """A 4-way set shared by a hot ping-pong pair and a sweeping
        stream: biasing eviction against capacity (stream) lines protects
        the pair — the §5.6 scenario."""
        # 3 same-set hot lines + stream lines through the same sets.
        size = GEO_4W.size
        hot = [0x100000, 0x100000 + size, 0x100000 + 2 * size]
        trace_addrs = []
        stream_base = 0x800000
        pos = 0
        for _ in range(600):
            trace_addrs.extend(hot)
            for _ in range(4):  # streaming lines, same set as the hot trio
                trace_addrs.append(stream_base + pos * size)
                pos += 1
        result = compare_assoc_replacement(Trace(trace_addrs), GEO_4W)
        assert result.biased_miss_rate <= result.lru_miss_rate
        assert result.improvement >= 0

    def test_neutral_on_analog(self):
        """On a mixed analog the bias must not blow up the miss rate."""
        result = compare_assoc_replacement(build("gcc", 20_000), GEO_4W)
        assert result.biased_miss_rate < result.lru_miss_rate + 1.0


class TestPageRemap:
    def test_validation(self):
        with pytest.raises(ValueError):
            PageRemapper(GEO_DM, RemapPolicy.NONE, page_size=1000)

    def test_translate_identity_before_remap(self):
        r = PageRemapper(GEO_DM, RemapPolicy.ALL_MISSES)
        assert r.translate(0x12345) == 0x12345

    def test_remap_changes_colour(self):
        r = PageRemapper(GEO_DM, RemapPolicy.ALL_MISSES, threshold=4)
        addr = 0x100000  # colour 0 (page 256 of 4 colours)
        for _ in range(4):
            r.note_miss(addr, is_conflict=True)
        assert r.remaps == 1
        translated = r.translate(addr)
        assert translated != addr
        # Offset within the page is preserved.
        assert translated & 0xFFF == addr & 0xFFF

    def test_conflict_only_ignores_capacity_misses(self):
        r = PageRemapper(GEO_DM, RemapPolicy.CONFLICT_ONLY, threshold=2)
        for _ in range(10):
            r.note_miss(0x100000, is_conflict=False)
        assert r.remaps == 0
        r.note_miss(0x100000, is_conflict=True)
        r.note_miss(0x100000, is_conflict=True)
        assert r.remaps == 1

    def test_none_policy_never_remaps(self):
        r = PageRemapper(GEO_DM, RemapPolicy.NONE, threshold=1)
        r.note_miss(0x100000, is_conflict=True)
        assert r.remaps == 0

    def test_remap_fixes_page_pingpong(self):
        """Two pages aliasing the same cache region: remapping one of them
        removes the conflict misses entirely."""
        a, b = 0x100000, 0x100000 + GEO_DM.size  # same colour, 4KB apart pages
        addrs = []
        for i in range(2000):
            off = (i % 64) * 64
            addrs += [a + off, b + off]
        base = simulate_remap(Trace(addrs), GEO_DM, RemapPolicy.NONE)
        remapped = simulate_remap(Trace(addrs), GEO_DM, RemapPolicy.CONFLICT_ONLY)
        assert remapped.miss_rate < base.miss_rate / 2
        assert remapped.remaps >= 1

    def test_conflict_filter_avoids_useless_remaps(self):
        """A pure streaming workload (capacity misses only): the filtered
        policy performs no remaps, the unfiltered one wastes many."""
        addrs = [0x400000 + i * 64 for i in range(6000)]
        unfiltered = simulate_remap(Trace(addrs), GEO_DM, RemapPolicy.ALL_MISSES)
        filtered = simulate_remap(Trace(addrs), GEO_DM, RemapPolicy.CONFLICT_ONLY)
        assert filtered.remaps == 0
        assert unfiltered.remaps > 10
        # And remapping buys nothing on capacity misses.
        assert unfiltered.miss_rate >= filtered.miss_rate - 0.5


class TestCoScheduling:
    def test_measure_pair_reports_conflicts(self):
        adv = CoScheduleAdvisor(GEO_DM)
        a = build("go", 8_000)
        b = build("li", 8_000)
        report = adv.measure_pair(a, b)
        assert report.jobs == ("go", "li")
        assert 0 < report.miss_rate < 100
        assert 0 <= report.conflict_miss_rate <= report.miss_rate

    def test_measure_all_counts_pairs(self):
        adv = CoScheduleAdvisor(GEO_DM)
        jobs = [build(n, 5_000) for n in ("go", "li", "gcc", "perl")]
        reports = adv.measure_all(jobs)
        assert len(reports) == 6

    def test_measure_all_rejects_duplicate_names(self):
        adv = CoScheduleAdvisor(GEO_DM)
        jobs = [build("go", 1_000), build("go", 1_000)]
        with pytest.raises(ValueError):
            adv.measure_all(jobs)

    def test_recommend_covers_all_jobs_once(self):
        adv = CoScheduleAdvisor(GEO_DM)
        names = ("go", "li", "gcc", "perl")
        adv.measure_all([build(n, 5_000) for n in names])
        schedule = adv.recommend(names)
        assert len(schedule) == 2
        assert sorted(j for pair in schedule for j in pair) == sorted(names)

    def test_recommend_requires_even_count(self):
        adv = CoScheduleAdvisor(GEO_DM)
        with pytest.raises(ValueError):
            adv.recommend(("a", "b", "c"))

    def test_recommend_requires_measurements(self):
        adv = CoScheduleAdvisor(GEO_DM)
        with pytest.raises(KeyError, match="not been measured"):
            adv.recommend(("a", "b"))

    def test_first_pair_has_lowest_conflicts(self):
        adv = CoScheduleAdvisor(GEO_DM)
        names = ("go", "li", "gcc", "perl")
        adv.measure_all([build(n, 5_000) for n in names])
        schedule = adv.recommend(names)
        first = adv.report_for(*schedule[0]).conflict_miss_rate
        second = adv.report_for(*schedule[1]).conflict_miss_rate
        # Greedy picks the globally least-conflicting pair first.
        all_rates = [
            adv.report_for(a, b).conflict_miss_rate
            for a, b in [("go", "li"), ("go", "gcc"), ("go", "perl"),
                         ("li", "gcc"), ("li", "perl"), ("gcc", "perl")]
        ]
        assert first == min(all_rates)
        assert first <= second
