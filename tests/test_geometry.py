"""Unit tests for cache geometry and address arithmetic."""

import pytest

from repro.cache.geometry import AddressParts, CacheGeometry


class TestConstruction:
    def test_paper_l1(self):
        g = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)
        assert g.num_sets == 256
        assert g.offset_bits == 6
        assert g.index_bits == 8
        assert g.num_lines == 256

    def test_two_way_halves_sets(self):
        g = CacheGeometry(size=16 * 1024, assoc=2, line_size=64)
        assert g.num_sets == 128
        assert g.num_lines == 256

    def test_l2_geometry(self):
        g = CacheGeometry(size=1 << 20, assoc=2, line_size=64)
        assert g.num_sets == 8192

    def test_fully_associative_extreme(self):
        g = CacheGeometry(size=512, assoc=8, line_size=64)
        assert g.num_sets == 1
        assert g.index_bits == 0

    @pytest.mark.parametrize("size", [0, 3, 1000, -64])
    def test_rejects_bad_size(self, size):
        with pytest.raises(ValueError):
            CacheGeometry(size=size, assoc=1, line_size=64)

    def test_rejects_non_pow2_line(self):
        with pytest.raises(ValueError):
            CacheGeometry(size=1024, assoc=1, line_size=48)

    def test_rejects_non_pow2_assoc(self):
        with pytest.raises(ValueError):
            CacheGeometry(size=1024, assoc=3, line_size=64)

    def test_rejects_assoc_exceeding_lines(self):
        with pytest.raises(ValueError):
            CacheGeometry(size=256, assoc=8, line_size=64)


class TestAddressMath:
    def test_split_compose_roundtrip(self, dm16k):
        addr = 0x1234_5678
        parts = dm16k.split(addr)
        assert dm16k.compose(parts.tag, parts.index, parts.offset) == addr

    def test_split_fields(self, dm16k):
        addr = 0x1234_5678
        parts = dm16k.split(addr)
        assert isinstance(parts, AddressParts)
        assert parts.offset == addr % 64
        assert parts.index == (addr >> 6) % 256
        assert parts.tag == addr >> 14

    def test_block_address_alignment(self, dm16k):
        assert dm16k.block_address(0x1001) == 0x1000
        assert dm16k.block_address(0x103F) == 0x1000
        assert dm16k.block_address(0x1040) == 0x1040

    def test_block_number(self, dm16k):
        assert dm16k.block_number(0) == 0
        assert dm16k.block_number(63) == 0
        assert dm16k.block_number(64) == 1

    def test_next_line(self, dm16k):
        assert dm16k.next_line(0x1000) == 0x1040
        assert dm16k.next_line(0x103F) == 0x1040

    def test_same_set_different_tag_conflicts(self, dm16k):
        a = 0x10000
        b = a + dm16k.size  # same index, different tag
        assert dm16k.set_index(a) == dm16k.set_index(b)
        assert dm16k.tag(a) != dm16k.tag(b)
        assert dm16k.conflicts_with(a, b)

    def test_same_line_does_not_conflict(self, dm16k):
        assert not dm16k.conflicts_with(0x1000, 0x1008)

    def test_different_set_does_not_conflict(self, dm16k):
        assert not dm16k.conflicts_with(0x1000, 0x1040)

    def test_compose_rejects_out_of_range_index(self, dm16k):
        with pytest.raises(ValueError):
            dm16k.compose(1, dm16k.num_sets, 0)

    def test_compose_rejects_out_of_range_offset(self, dm16k):
        with pytest.raises(ValueError):
            dm16k.compose(1, 0, 64)

    def test_with_assoc_preserves_capacity(self, dm16k):
        g2 = dm16k.with_assoc(2)
        assert g2.size == dm16k.size
        assert g2.num_lines == dm16k.num_lines
        assert g2.num_sets == dm16k.num_sets // 2

    def test_describe(self, dm16k, w2_16k):
        assert dm16k.describe() == "16KB DM, 64B lines"
        assert w2_16k.describe() == "16KB 2-way, 64B lines"

    def test_index_covers_all_sets(self, dm16k):
        seen = {dm16k.set_index(line * 64) for line in range(dm16k.num_sets)}
        assert seen == set(range(dm16k.num_sets))
