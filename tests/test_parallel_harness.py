"""Tests for the parallel sweep scheduler and the bench harness.

Covers the PR's acceptance properties:

* ``jobs=1`` and ``jobs=N`` produce identical ``report.json`` cell
  statuses and byte-identical checkpoint artifacts — including under
  flaky fault injection and across a resume;
* worker processes are always reaped and closed: a 200-cell sweep leaves
  no children (zombie or live) behind and does not leak fds;
* ``--jobs`` CLI semantics (default, validation, --no-isolate clash);
* the bench harness emits a valid ``BENCH_sweep.json`` and its baseline
  regression gate fires.
"""

import json
import multiprocessing
import os

import pytest

from repro.experiments.base import ExperimentParams, ExperimentResult
from repro.experiments.runner import main
from repro.harness import bench
from repro.harness.cells import (
    SHARDED_EXPERIMENTS,
    VARIANTS,
    CellSpec,
    FaultInjection,
    expand_cells,
)
from repro.harness.checkpoint import RunDirectory
from repro.harness.executor import HarnessConfig, _start_method, run_cells
from repro.harness.report import CellStatus

TINY = ExperimentParams(n_refs=4_000, warmup=1_000, suite=["gcc"])

CELLS = [CellSpec("table1", "main"), CellSpec("fig3", "main")]


def config(**kw):
    kw.setdefault("retries", 1)
    kw.setdefault("backoff_s", 0.0)
    return HarnessConfig(**kw)


def statuses(report):
    return {c.cell_id: c.status.value for c in report.cells}


def artifact_bytes(run_dir, specs):
    return {s.cell_id: run_dir.cell_path(s.cell_id).read_bytes() for s in specs}


class TestConfigValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            HarnessConfig(jobs=0)

    def test_parallel_requires_isolation(self):
        with pytest.raises(ValueError, match="isolation"):
            HarnessConfig(jobs=2, isolate=False)
        HarnessConfig(jobs=1, isolate=False)  # serial inline is fine


class TestParallelEquivalence:
    def run_sweep(self, tmp_path, sub, jobs, inject=None, resume=False):
        rd = RunDirectory(tmp_path / sub)
        rd.prepare(TINY, resume=resume)
        report = run_cells(
            CELLS, TINY, config(jobs=jobs), run_dir=rd, inject=inject,
            resume=resume,
        )
        return rd, report

    def test_report_order_is_spec_order(self, tmp_path):
        rd, report = self.run_sweep(tmp_path, "p", jobs=8)
        assert [c.cell_id for c in report.cells] == [s.cell_id for s in CELLS]
        payload = json.loads(rd.report_path.read_text())
        assert [c["cell"] for c in payload["cells"]] == [s.cell_id for s in CELLS]

    def test_jobs1_and_jobs8_byte_identical_artifacts(self, tmp_path):
        rd1, rep1 = self.run_sweep(tmp_path, "serial", jobs=1)
        rd8, rep8 = self.run_sweep(tmp_path, "parallel", jobs=8)
        assert statuses(rep1) == statuses(rep8)
        assert all(s == "OK" for s in statuses(rep1).values())
        assert artifact_bytes(rd1, CELLS) == artifact_bytes(rd8, CELLS)

    def test_equivalent_under_flaky_injection_and_resume(self, tmp_path):
        inject = FaultInjection("fig3.main", "flaky", times=1)
        rd1, rep1 = self.run_sweep(tmp_path, "serial", jobs=1, inject=inject)
        rd8, rep8 = self.run_sweep(tmp_path, "parallel", jobs=8, inject=inject)
        expected = {"table1.main": "OK", "fig3.main": "RETRIED"}
        assert statuses(rep1) == statuses(rep8) == expected
        assert artifact_bytes(rd1, CELLS) == artifact_bytes(rd8, CELLS)

        # Resume each run dir with the *other* jobs width: everything is
        # already checkpointed, so both skip all cells and artifacts keep
        # their bytes.
        before = artifact_bytes(rd1, CELLS)
        _, resumed1 = self.run_sweep(tmp_path, "serial", jobs=8, resume=True)
        _, resumed8 = self.run_sweep(tmp_path, "parallel", jobs=1, resume=True)
        assert set(statuses(resumed1).values()) == {"SKIPPED"}
        assert statuses(resumed1) == statuses(resumed8)
        assert artifact_bytes(rd1, CELLS) == before

    def test_failures_stay_isolated_under_parallel_dispatch(self, tmp_path):
        inject = FaultInjection("table1.main", "fail")
        _, report = self.run_sweep(tmp_path, "p", jobs=8, inject=inject)
        assert statuses(report) == {"table1.main": "FAILED", "fig3.main": "OK"}


def _toy_cell(params: ExperimentParams) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="toy", title="toy", headers=["k", "v"], paper_reference=""
    )
    result.add_row("n_refs", params.n_refs)
    return result


@pytest.mark.skipif(
    _start_method() != "fork",
    reason="monkeypatched registry only reaches workers under fork",
)
class TestWorkerHygiene:
    def test_200_cell_sweep_leaves_no_children_or_fds(self, monkeypatch):
        monkeypatch.setitem(
            VARIANTS, "toy", {f"c{i:03d}": _toy_cell for i in range(200)}
        )
        specs = expand_cells(["toy"])
        assert len(specs) == 200
        fds_before = len(os.listdir("/proc/self/fd"))

        report = run_cells(specs, TINY, config(jobs=8))

        assert len(report.cells) == 200
        assert all(c.status is CellStatus.OK for c in report.cells)
        # Every worker Process was joined (no zombies to reap) and
        # close()d (no lingering sentinel/pipe fds).
        assert multiprocessing.active_children() == []
        fds_after = len(os.listdir("/proc/self/fd"))
        assert fds_after <= fds_before + 2

    def test_killed_workers_are_reaped_too(self, monkeypatch):
        monkeypatch.setitem(VARIANTS, "toy", {"main": _toy_cell})
        inject = FaultInjection("toy.main", "hang")
        report = run_cells(
            expand_cells(["toy"]),
            TINY,
            config(timeout_s=0.5, retries=0),
            inject=inject,
        )
        assert report.cells[0].status is CellStatus.TIMEOUT
        assert multiprocessing.active_children() == []


class TestCLIJobs:
    TAIL = ["--refs", "4000", "--warmup", "1000", "--suite", "gcc",
            "--backoff", "0.01"]

    def test_jobs_flag_runs_cells(self, tmp_path, capsys):
        rc = main(["table1", "fig3"] + self.TAIL
                  + ["--run-dir", str(tmp_path), "--jobs", "4"])
        assert rc == 0
        payload = json.loads((tmp_path / "report.json").read_text())
        assert {c["cell"]: c["status"] for c in payload["cells"]} == {
            "table1.main": "OK", "fig3.main": "OK"
        }

    def test_jobs_zero_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1"] + self.TAIL + ["--jobs", "0"])

    def test_jobs_conflicts_with_no_isolate(self):
        with pytest.raises(SystemExit):
            main(["table1"] + self.TAIL + ["--jobs", "2", "--no-isolate"])

    def test_no_isolate_defaults_to_serial(self, capsys):
        # Without an explicit --jobs, --no-isolate must not inherit the
        # CPU-count default (that combination is rejected).
        rc = main(["table1"] + self.TAIL + ["--no-isolate"])
        assert rc == 0

    def test_all_excludes_sharded_sweeps(self, capsys):
        from repro.experiments.runner import _build_parser, _validate_names

        names = _validate_names(_build_parser(), ["all"])
        assert "fig3" in names
        assert not (set(names) & SHARDED_EXPERIMENTS)
        # But sharded families remain directly addressable.
        assert expand_cells(["fig3sweep"])


class TestBenchHarness:
    def test_single_cell_measurement_shape(self):
        out = bench.measure_single_cell(refs=2_000, warmup=500, seed=0, repeats=1)
        assert out["refs_per_sec"] > 0
        assert out["bench"] == bench.SINGLE_CELL_BENCH

    def test_main_emits_artifact_and_gate_passes(self, tmp_path):
        out = tmp_path / "BENCH_sweep.json"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"schema": 1, "single_cell": {"refs_per_sec": 1.0}}
        ))
        rc = bench.main([
            "--refs", "2000", "--warmup", "500", "--skip-sweep",
            "--out", str(out), "--check-against", str(baseline),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == bench.BENCH_SCHEMA
        assert payload["single_cell"]["refs_per_sec"] > 0
        assert "sweep" not in payload  # --skip-sweep

    def test_regression_gate_fires(self, tmp_path):
        out = tmp_path / "BENCH_sweep.json"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"schema": 1, "single_cell": {"refs_per_sec": 1e12}}
        ))
        rc = bench.main([
            "--refs", "2000", "--warmup", "500", "--skip-sweep",
            "--out", str(out), "--check-against", str(baseline),
        ])
        assert rc == 1

    def test_sweep_measures_and_cross_checks(self, tmp_path):
        sweep = bench.measure_sweep(
            refs=1_200, warmup=200, seed=0, jobs=2, scratch=tmp_path
        )
        assert sweep["serial"]["ok"] and sweep["parallel"]["ok"]
        assert sweep["statuses_identical"] is True
        assert sweep["artifacts_identical"] is True
        assert sweep["serial"]["cells"] == sweep["parallel"]["cells"] == 12

    def test_committed_baseline_is_readable(self):
        path = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "BENCH_baseline.json"
        )
        payload = json.loads(open(path).read())
        assert payload["schema"] == bench.BENCH_SCHEMA
        assert payload["single_cell"]["refs_per_sec"] > 0
