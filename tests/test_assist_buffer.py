"""Unit tests for the assist buffer (victim/prefetch/bypass/AMB store)."""

import pytest

from repro.buffers.assist import AssistBuffer, BufferEntry
from repro.cache.line import BufferRole


def entry(block, role=BufferRole.VICTIM, **kw):
    return BufferEntry(block=block, role=role, **kw)


class TestBasics:
    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            AssistBuffer(0)

    def test_probe_miss_counts(self):
        b = AssistBuffer(4)
        assert b.probe(1) is None
        assert b.stats.probes == 1

    def test_insert_then_probe(self):
        b = AssistBuffer(4)
        b.insert(entry(1))
        got = b.probe(1)
        assert got is not None and got.block == 1

    def test_capacity_evicts_lru(self):
        b = AssistBuffer(2)
        b.insert(entry(1))
        b.insert(entry(2))
        evicted = b.insert(entry(3))
        assert evicted is not None and evicted.block == 1
        assert 1 not in b
        assert b.stats.evictions == 1

    def test_touch_refreshes_recency(self):
        b = AssistBuffer(2)
        b.insert(entry(1))
        b.insert(entry(2))
        b.touch(1)
        evicted = b.insert(entry(3))
        assert evicted.block == 2

    def test_probe_does_not_refresh(self):
        b = AssistBuffer(2)
        b.insert(entry(1))
        b.insert(entry(2))
        b.probe(1)
        evicted = b.insert(entry(3))
        assert evicted.block == 1

    def test_remove_from_middle(self):
        """'a FIFO from which entries can be taken out of the middle'."""
        b = AssistBuffer(3)
        for blk in (1, 2, 3):
            b.insert(entry(blk))
        got = b.remove(2)
        assert got.block == 2
        assert b.blocks() == [1, 3]
        assert b.remove(2) is None

    def test_reinsert_replaces_in_place(self):
        b = AssistBuffer(2)
        b.insert(entry(1, role=BufferRole.PREFETCH))
        b.insert(entry(2))
        evicted = b.insert(entry(1, role=BufferRole.VICTIM))
        assert evicted is None  # no capacity eviction
        assert b.peek(1).role is BufferRole.VICTIM
        # 1 is now MRU
        assert b.insert(entry(3)).block == 2

    def test_occupancy_and_flush(self):
        b = AssistBuffer(4)
        b.insert(entry(1))
        b.insert(entry(2))
        assert b.occupancy() == len(b) == 2
        b.flush()
        assert b.occupancy() == 0


class TestEvictionHook:
    def test_hook_fires_on_capacity_eviction_only(self):
        seen = []
        b = AssistBuffer(1, on_evict=seen.append)
        b.insert(entry(1))
        b.remove(1)
        assert seen == []
        b.insert(entry(2))
        b.insert(entry(3))
        assert [e.block for e in seen] == [2]

    def test_wasted_prefetch_detection_pattern(self):
        """The memory system counts unused prefetches via this hook."""
        wasted = []

        def hook(e):
            if e.role is BufferRole.PREFETCH and not e.used:
                wasted.append(e.block)

        b = AssistBuffer(1, on_evict=hook)
        b.insert(entry(1, role=BufferRole.PREFETCH))
        b.insert(entry(2, role=BufferRole.PREFETCH, used=True))
        b.insert(entry(3))
        assert wasted == [1]


class TestRoles:
    def test_roles_preserved(self):
        b = AssistBuffer(4)
        b.insert(entry(1, role=BufferRole.VICTIM))
        b.insert(entry(2, role=BufferRole.PREFETCH, ready_time=55.0))
        b.insert(entry(3, role=BufferRole.EXCLUSION, dirty=True))
        assert b.peek(1).role is BufferRole.VICTIM
        assert b.peek(2).ready_time == 55.0
        assert b.peek(3).dirty

    def test_conflict_bit_preserved(self):
        b = AssistBuffer(4)
        b.insert(entry(9, conflict_bit=True))
        assert b.peek(9).conflict_bit
