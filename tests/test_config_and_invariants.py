"""Machine-config validation and whole-system invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.pseudo_assoc import PacVariant, PseudoAssociativeCache
from repro.system.config import (
    MachineConfig,
    PAPER_MACHINE,
    SLOW_BUS_MACHINE,
    TimingConfig,
)
from repro.system.memory_system import MemorySystem
from repro.system.policies import AssistConfig, BASELINE
from repro.system.timing import TimingModel
from repro.buffers import amb


class TestMachineConfig:
    def test_paper_machine_parameters(self):
        m = PAPER_MACHINE
        assert m.l1.size == 16 * 1024 and m.l1.assoc == 1
        assert m.l2.size == 1 << 20 and m.l2.assoc == 2
        assert m.timing.l2_latency == 20
        assert m.timing.memory_latency == 120
        assert m.timing.mshrs == 16
        assert m.timing.width == 8

    def test_slow_bus_machine_differs_only_in_bus(self):
        assert (
            SLOW_BUS_MACHINE.timing.bus_transfer_cycles
            > PAPER_MACHINE.timing.bus_transfer_cycles
        )
        assert SLOW_BUS_MACHINE.l1 == PAPER_MACHINE.l1

    def test_rejects_mismatched_line_sizes(self):
        with pytest.raises(ValueError, match="share a line size"):
            MachineConfig(
                l1=CacheGeometry(size=16 * 1024, assoc=1, line_size=32),
                l2=CacheGeometry(size=1 << 20, assoc=2, line_size=64),
            )

    def test_rejects_l2_smaller_than_l1(self):
        with pytest.raises(ValueError, match="at least as large"):
            MachineConfig(
                l1=CacheGeometry(size=64 * 1024, assoc=1, line_size=64),
                l2=CacheGeometry(size=32 * 1024, assoc=2, line_size=64),
            )


# Hypothesis strategies over a tiny address space.
blocks = st.integers(min_value=0, max_value=100)
streams = st.lists(blocks, min_size=1, max_size=250)


class TestTimingInvariants:
    @given(streams)
    @settings(deadline=None, max_examples=30)
    def test_clock_is_monotone(self, refs):
        t = TimingModel(TimingConfig())
        last = 0.0
        for i, b in enumerate(refs):
            t.step(2)
            if b % 3 == 0:
                t.issue_miss(20.0)
            elif b % 7 == 0:
                t.issue_prefetch(20.0)
            assert t.clock >= last
            last = t.clock
        stats = t.finish()
        assert stats.cycles >= last
        assert stats.stall_cycles >= 0
        assert stats.contention_cycles >= 0

    @given(streams)
    @settings(deadline=None, max_examples=30)
    def test_cycles_at_least_issue_time(self, refs):
        """Total cycles can never undercut pure issue bandwidth."""
        t = TimingModel(TimingConfig())
        for b in refs:
            t.step(3)
            if b % 2 == 0:
                t.issue_miss(50.0)
        stats = t.finish()
        assert stats.cycles >= stats.instructions / t.config.issue_rate - 1e-9


class TestMemorySystemInvariants:
    @given(streams)
    @settings(deadline=None, max_examples=20)
    def test_counter_conservation(self, refs):
        system = MemorySystem(amb.vic_pre_exc())
        for b in refs:
            system.access(b * 64)
        stats = system.finish()
        l1 = stats.l1
        assert l1.hits + l1.misses == l1.accesses == len(refs)
        assert stats.buffer.hits <= l1.misses
        assert (
            stats.conflict_misses_predicted + stats.capacity_misses_predicted
            == l1.misses
        )
        b = stats.buffer
        assert b.victim_hits + b.prefetch_hits + b.exclusion_hits == b.hits
        assert b.prefetches_used + b.prefetches_wasted <= b.prefetches_issued

    @given(streams)
    @settings(deadline=None, max_examples=20)
    def test_l2_sees_only_buffer_misses_plus_prefetches(self, refs):
        system = MemorySystem(amb.vict_pref())
        for b in refs:
            system.access(b * 64)
        stats = system.finish()
        demand_fetches = stats.l1.misses - stats.buffer.hits
        assert stats.l2.accesses == demand_fetches + stats.buffer.prefetches_issued


class TestPacInvariants:
    @given(streams)
    @settings(deadline=None, max_examples=20)
    def test_no_duplicate_blocks(self, refs):
        geo = CacheGeometry(size=1024, assoc=1, line_size=64)  # 16 slots
        pac = PseudoAssociativeCache(geo, PacVariant.MCT)
        for b in refs:
            pac.access(b * 64)
            resident = [
                line.tag for line in pac._slots if line.valid
            ]
            assert len(resident) == len(set(resident))

    @given(streams)
    @settings(deadline=None, max_examples=20)
    def test_hit_after_access(self, refs):
        from repro.cache.pseudo_assoc import PacHit

        geo = CacheGeometry(size=1024, assoc=1, line_size=64)
        pac = PseudoAssociativeCache(geo, PacVariant.CLASSIC)
        for b in refs:
            pac.access(b * 64)
            assert pac.probe(b * 64) is not PacHit.MISS
