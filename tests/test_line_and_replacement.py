"""Unit tests for cache-line state and replacement policies."""

import pytest

from repro.cache.line import BufferRole, CacheLine, EvictedLine
from repro.cache.replacement import (
    FIFOReplacement,
    LRUReplacement,
    MRUReplacement,
    RandomReplacement,
    make_policy,
)


class TestCacheLine:
    def test_starts_invalid(self):
        line = CacheLine()
        assert not line.valid
        assert not line.conflict_bit
        assert line.role is None

    def test_fill_sets_state(self):
        line = CacheLine()
        line.fill(0xAB, now=7, conflict_bit=True, role=BufferRole.VICTIM)
        assert line.valid
        assert line.tag == 0xAB
        assert line.conflict_bit
        assert line.role is BufferRole.VICTIM
        assert line.last_touch == 7
        assert line.fill_time == 7

    def test_fill_overwrites_previous_state(self):
        line = CacheLine()
        line.fill(1, now=1, conflict_bit=True, dirty=True)
        line.fill(2, now=2)
        assert line.tag == 2
        assert not line.conflict_bit
        assert not line.dirty

    def test_touch_updates_lru_not_fifo(self):
        line = CacheLine()
        line.fill(1, now=1)
        line.touch(9)
        assert line.last_touch == 9
        assert line.fill_time == 1

    def test_invalidate_clears_everything(self):
        line = CacheLine()
        line.fill(1, now=1, conflict_bit=True, dirty=True)
        line.invalidate()
        assert not line.valid
        assert not line.dirty
        assert not line.conflict_bit
        assert line.last_touch == -1

    def test_snapshot_is_frozen_copy(self):
        line = CacheLine()
        line.fill(5, now=3, conflict_bit=True, dirty=True)
        snap = line.snapshot()
        line.invalidate()
        assert isinstance(snap, EvictedLine)
        assert snap.tag == 5
        assert snap.conflict_bit
        assert snap.dirty


def _lines(*specs):
    """specs: (valid, last_touch, fill_time) triples."""
    out = []
    for valid, touch, fill in specs:
        line = CacheLine()
        if valid:
            line.fill(0, now=fill)
            line.touch(touch)
        out.append(line)
    return out


class TestLRU:
    def test_prefers_invalid_way(self):
        lines = _lines((True, 9, 1), (False, 0, 0), (True, 2, 1))
        assert LRUReplacement().choose_victim(lines) == 1

    def test_evicts_least_recently_touched(self):
        lines = _lines((True, 9, 1), (True, 3, 2), (True, 7, 3))
        assert LRUReplacement().choose_victim(lines) == 1

    def test_single_way(self):
        lines = _lines((True, 5, 5))
        assert LRUReplacement().choose_victim(lines) == 0


class TestFIFO:
    def test_evicts_oldest_fill_despite_touches(self):
        lines = _lines((True, 99, 1), (True, 2, 2), (True, 3, 3))
        assert FIFOReplacement().choose_victim(lines) == 0

    def test_prefers_invalid(self):
        lines = _lines((True, 1, 1), (False, 0, 0))
        assert FIFOReplacement().choose_victim(lines) == 1


class TestMRU:
    def test_evicts_most_recent(self):
        lines = _lines((True, 9, 1), (True, 3, 2), (True, 7, 3))
        assert MRUReplacement().choose_victim(lines) == 0


class TestRandom:
    def test_deterministic_with_seed(self):
        lines = _lines((True, 1, 1), (True, 2, 2), (True, 3, 3), (True, 4, 4))
        a = [RandomReplacement(seed=7).choose_victim(lines) for _ in range(10)]
        b = [RandomReplacement(seed=7).choose_victim(lines) for _ in range(10)]
        assert a == b

    def test_in_range(self):
        lines = _lines((True, 1, 1), (True, 2, 2))
        policy = RandomReplacement(seed=0)
        assert all(policy.choose_victim(lines) in (0, 1) for _ in range(20))


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("lru", LRUReplacement),
            ("fifo", FIFOReplacement),
            ("mru", MRUReplacement),
            ("random", RandomReplacement),
        ],
    )
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown replacement"):
            make_policy("plru")

    def test_policy_name_property(self):
        assert LRUReplacement().name == "lru"
