"""Tests for the shared speedup-experiment machinery."""

import pytest

from repro.buffers.victim import no_victim_cache, traditional
from repro.experiments._speedups import run_policies_over_suite, speedup_table
from repro.experiments.base import ExperimentParams

PARAMS = ExperimentParams(n_refs=6_000, warmup=2_000, suite=["go", "li"])


class TestRunPoliciesOverSuite:
    def test_shape(self):
        policies = [no_victim_cache(), traditional()]
        stats = run_policies_over_suite(policies, PARAMS, ["go", "li"])
        assert set(stats) == {"go", "li"}
        assert set(stats["go"]) == {"no V cache", "V cache"}

    def test_fresh_system_per_cell(self):
        policies = [traditional()]
        stats = run_policies_over_suite(policies, PARAMS, ["go", "li"])
        # Each run's access count equals the measured window, proving no
        # state leaked across benchmarks.
        measured = PARAMS.n_refs - PARAMS.warmup
        assert stats["go"]["V cache"].l1.accesses == measured
        assert stats["li"]["V cache"].l1.accesses == measured


class TestSpeedupTable:
    def test_structure_and_average(self):
        result = speedup_table(
            experiment_id="t",
            title="t",
            baseline=no_victim_cache(),
            policies=[traditional()],
            params=PARAMS,
            suite=["go", "li"],
        )
        assert result.headers == ["bench", "V cache"]
        names = [row[0] for row in result.rows]
        assert names == ["go", "li", "AVERAGE"]
        per_bench = [float(r[1]) for r in result.rows[:-1]]
        avg = float(result.rows[-1][1])
        assert avg == pytest.approx(sum(per_bench) / len(per_bench))

    def test_baseline_speedup_is_positive(self):
        result = speedup_table(
            experiment_id="t",
            title="t",
            baseline=no_victim_cache(),
            policies=[no_victim_cache().renamed("again")],
            params=PARAMS,
            suite=["go"],
        )
        # A policy identical to the baseline must land at exactly 1.0.
        assert float(result.rows[0][1]) == pytest.approx(1.0)


class TestAssistConfigHelpers:
    def test_renamed_preserves_everything_else(self):
        cfg = traditional().renamed("other")
        assert cfg.name == "other"
        assert cfg.victim_fills
        assert cfg.buffer_entries == traditional().buffer_entries

    def test_with_entries(self):
        cfg = traditional().with_entries(32)
        assert cfg.buffer_entries == 32
        assert cfg.victim_fills
