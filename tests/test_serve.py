"""Tests for ``repro.serve`` — protocol, pipeline, server, faults.

Server tests run a real :class:`ConflictServer` on a unix socket inside
``tmp_path`` and speak the wire protocol through asyncio streams; the
crash-consistency tests run ``python -m repro.serve`` as a subprocess
with an armed fault plan and assert the obs validator's verdict on the
stream each fault leaves behind — accepted when the service died
cleanly, rejected when it died mid-session, never a crash or a silent
pass.
"""

import asyncio
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.mct import MissClassificationTable
from repro.obs import events
from repro.obs.config import ObsConfig
from repro.obs.validate import reconcile_events, split_torn_tail, validate_lines
from repro.serve import (
    ConflictServer,
    FrameError,
    MAX_FRAME_BYTES,
    ServeConfig,
    TenantPipeline,
    decode_frame,
    encode_frame,
    max_blocks_for_budget,
)
from repro.serve.config import BYTES_PER_SAMPLED_BLOCK, MIN_MAX_BLOCKS
from repro.serve.loadgen import build_parser as loadgen_parser
from repro.serve.loadgen import percentile, run_load
from repro.serve.protocol import read_frame, write_frame
from repro.workloads.spec_analogs import build


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip(self):
        frame = {"op": "batch", "addrs": [0, 64, 1 << 40]}
        encoded = encode_frame(frame)
        assert int.from_bytes(encoded[:4], "big") == len(encoded) - 4
        assert decode_frame(encoded[4:]) == frame

    def test_decode_rejects_garbage_and_non_objects(self):
        with pytest.raises(FrameError):
            decode_frame(b"\xff\xfe not json")
        with pytest.raises(FrameError):
            decode_frame(b"[1, 2, 3]")

    def test_encode_rejects_oversized_frames(self):
        too_many = list(range(MAX_FRAME_BYTES // 4))
        with pytest.raises(FrameError):
            encode_frame({"addrs": too_many})

    def _reader_with(self, data: bytes) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return reader

    def test_read_frame_eof_at_boundary_is_none(self):
        async def check():
            return await read_frame(self._reader_with(b""))

        assert run(check()) is None

    def test_read_frame_torn_header_and_payload_raise(self):
        async def torn(data):
            with pytest.raises(FrameError):
                await read_frame(self._reader_with(data))

        run(torn(b"\x00\x00"))  # mid-length
        run(torn(b"\x00\x00\x00\x10{"))  # mid-payload

    def test_read_frame_rejects_zero_and_oversized_lengths(self):
        async def check(length):
            with pytest.raises(FrameError):
                await read_frame(
                    self._reader_with(length.to_bytes(4, "big") + b"x" * 8)
                )

        run(check(0))
        run(check(MAX_FRAME_BYTES + 1))


# ----------------------------------------------------------------------
# Budget mapping
# ----------------------------------------------------------------------
class TestBudget:
    def test_budget_scales_linearly_between_clamps(self):
        assert max_blocks_for_budget(256 * BYTES_PER_SAMPLED_BLOCK) == 256

    def test_budget_clamps(self):
        assert max_blocks_for_budget(1) == MIN_MAX_BLOCKS
        assert max_blocks_for_budget(1 << 40) == 65536
        with pytest.raises(ValueError):
            max_blocks_for_budget(0)

    def test_config_validates(self):
        with pytest.raises(ValueError):
            ServeConfig(max_sessions=0)
        with pytest.raises(ValueError):
            ServeConfig(idle_timeout_s=-1)


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------
class TestPipeline:
    def _reference_counts(self, addrs, cache_kb=16, line_size=64):
        """Straight-line reimplementation: DM cache + MCT, no batching."""
        geo = CacheGeometry(size=cache_kb * 1024, assoc=1, line_size=line_size)
        mct = MissClassificationTable(geo)
        resident = [-1] * geo.num_sets
        misses = conflicts = 0
        for addr in addrs:
            s, t = geo.set_index(addr), geo.tag(addr)
            if resident[s] == t:
                continue
            misses += 1
            if mct.classify(addr).is_conflict:
                conflicts += 1
            if resident[s] >= 0:
                mct.record_eviction(s, resident[s])
            resident[s] = t
        return misses, conflicts

    def test_matches_reference_mct_simulation(self):
        addrs = [int(a) for a in build("gcc", 8000, seed=3).addresses]
        pipeline = TenantPipeline(cache_kb=16, max_blocks=128)
        pipeline.feed(addrs)
        misses, conflicts = self._reference_counts(addrs)
        assert pipeline.refs == len(addrs)
        assert pipeline.misses == misses
        assert pipeline.conflict_misses == conflicts
        assert pipeline.capacity_misses == misses - conflicts

    def test_chunked_feed_equals_one_shot(self):
        addrs = [int(a) for a in build("tomcatv", 6000, seed=1).addresses]
        one = TenantPipeline(cache_kb=16, max_blocks=128, seed=5)
        one.feed(addrs)
        chunked = TenantPipeline(cache_kb=16, max_blocks=128, seed=5)
        for start in range(0, len(addrs), 613):
            chunked.feed(addrs[start : start + 613])
        assert chunked.snapshot() == one.snapshot()
        assert chunked.mrc() == one.mrc()

    def test_conflict_stream_gets_victim_cache_verdict(self):
        # Two tags ping-ponging in one set: every miss after the first
        # two is a conflict miss, and an FA cache of equal size holds
        # both lines easily.
        geo = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)
        a = geo.compose(tag=1, index=7)
        b = geo.compose(tag=2, index=7)
        pipeline = TenantPipeline(cache_kb=16, max_blocks=128)
        pipeline.feed([a, b] * 600)
        verdict = pipeline.verdict()
        assert verdict["verdict"] == "victim_cache"
        assert verdict["hw_conflict_share"] > 0.9
        assert verdict["model_conflict_share"] > 0.9

    def test_streaming_scan_gets_bypass_verdict(self):
        # A pure streaming scan far beyond capacity misses everywhere,
        # in the FA model too — capacity-bound, so bypass.
        pipeline = TenantPipeline(cache_kb=16, max_blocks=256)
        pipeline.feed([i * 64 for i in range(40_000)])
        verdict = pipeline.verdict()
        assert verdict["verdict"] == "bypass"

    def test_tiny_stream_withholds_verdict(self):
        pipeline = TenantPipeline(cache_kb=16, max_blocks=128)
        pipeline.feed([0, 64, 128])
        verdict = pipeline.verdict()
        assert verdict["verdict"] == "none"
        assert "miss(es) observed" in verdict["reason"]

    def test_state_entries_constant_over_long_stream(self):
        # The acceptance property the per-tenant budget rides on: state
        # does not grow with stream length or footprint.
        pipeline = TenantPipeline(cache_kb=16, max_blocks=128)
        peak = 0
        for chunk in range(40):
            base = chunk * 500_000 * 64
            pipeline.feed([base + i * 64 for i in range(4000)])
            peak = max(peak, pipeline.state_entries())
        fixed = 2 * pipeline.geometry.num_sets
        assert pipeline.refs == 160_000
        assert peak - fixed < 80 * 128

    def test_empty_batch_is_a_no_op(self):
        pipeline = TenantPipeline(cache_kb=16, max_blocks=128)
        assert pipeline.feed([]) == 0
        assert pipeline.snapshot().refs == 0


# ----------------------------------------------------------------------
# Server (in-process, unix socket)
# ----------------------------------------------------------------------
async def _client(sock_path):
    return await asyncio.open_unix_connection(sock_path)


async def _rpc(reader, writer, frame):
    await write_frame(writer, frame)
    return await read_frame(reader)


class TestServer:
    def _config(self, tmp_path, **kw):
        kw.setdefault("socket_path", str(tmp_path / "serve.sock"))
        return ServeConfig(**kw)

    def test_open_batch_query_close(self, tmp_path):
        async def scenario():
            server = ConflictServer(self._config(tmp_path))
            await server.start()
            reader, writer = await _client(server.config.socket_path)
            opened = await _rpc(
                reader, writer, {"op": "open", "tenant": "t0", "cache_kb": 16}
            )
            assert opened["ok"] and opened["session"] == 1
            geo = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)
            a, b = geo.compose(tag=1, index=3), geo.compose(tag=2, index=3)
            ack = await _rpc(reader, writer, {"op": "batch", "addrs": [a, b] * 200})
            assert ack["ok"] and ack["refs"] == 400
            share = await _rpc(
                reader, writer, {"op": "query", "what": "conflict_share"}
            )
            assert share["ok"]
            assert share["misses"] == 400
            assert share["conflict_share"] > 0.99
            mrc = await _rpc(reader, writer, {"op": "query", "what": "mrc"})
            assert mrc["ok"] and len(mrc["curve"]) > 0
            verdict = await _rpc(reader, writer, {"op": "query", "what": "verdict"})
            assert verdict["ok"] and verdict["verdict"] == "victim_cache"
            closed = await _rpc(reader, writer, {"op": "close"})
            assert closed["ok"] and closed["refs"] == 400
            writer.close()
            await server.stop()
            assert server.sessions_closed == 1

        run(scenario())

    def test_admission_cap_refuses_with_error_frame(self, tmp_path):
        async def scenario():
            server = ConflictServer(self._config(tmp_path, max_sessions=1))
            await server.start()
            r1, w1 = await _client(server.config.socket_path)
            assert (await _rpc(r1, w1, {"op": "open", "tenant": "a"}))["ok"]
            r2, w2 = await _client(server.config.socket_path)
            refused = await _rpc(r2, w2, {"op": "open", "tenant": "b"})
            assert not refused["ok"] and "server full" in refused["error"]
            w2.close()
            # The refused connection must not have consumed the slot.
            assert server.live_sessions() == 1
            assert server.refused == 1
            w1.close()
            await server.stop()

        run(scenario())

    def test_budget_maps_to_sample_bound(self, tmp_path):
        async def scenario():
            server = ConflictServer(self._config(tmp_path))
            await server.start()
            reader, writer = await _client(server.config.socket_path)
            budget = 512 * BYTES_PER_SAMPLED_BLOCK
            opened = await _rpc(
                reader,
                writer,
                {"op": "open", "tenant": "t", "budget_bytes": budget},
            )
            assert opened["max_blocks"] == 512
            writer.close()
            await server.stop()

        run(scenario())

    def test_protocol_errors_answered_not_fatal(self, tmp_path):
        async def scenario():
            server = ConflictServer(self._config(tmp_path))
            await server.start()
            # First frame not open.
            r, w = await _client(server.config.socket_path)
            bad = await _rpc(r, w, {"op": "batch", "addrs": [1]})
            assert not bad["ok"] and "first frame must be open" in bad["error"]
            w.close()
            # Unknown query answered with the menu.
            r, w = await _client(server.config.socket_path)
            await _rpc(r, w, {"op": "open", "tenant": "t"})
            unknown = await _rpc(r, w, {"op": "query", "what": "nope"})
            assert not unknown["ok"] and "conflict_share" in unknown["error"]
            # Bad geometry refused via an error frame, session not opened.
            r2, w2 = await _client(server.config.socket_path)
            bad_geo = await _rpc(r2, w2, {"op": "open", "cache_kb": 3})
            assert not bad_geo["ok"]
            w2.close()
            w.close()
            await server.stop()

        run(scenario())

    def test_oversized_batch_rejected(self, tmp_path):
        async def scenario():
            server = ConflictServer(self._config(tmp_path, max_batch_refs=8))
            await server.start()
            r, w = await _client(server.config.socket_path)
            await _rpc(r, w, {"op": "open", "tenant": "t"})
            reply = await _rpc(r, w, {"op": "batch", "addrs": list(range(9))})
            assert not reply["ok"] and "max_batch_refs" in reply["error"]
            w.close()
            await server.stop()

        run(scenario())

    def test_idle_sessions_reaped(self, tmp_path):
        async def scenario():
            events.activate(ObsConfig(events_path=str(tmp_path / "ev.jsonl")))
            try:
                server = ConflictServer(
                    self._config(tmp_path, idle_timeout_s=0.2)
                )
                await server.start()
                reader, writer = await _client(server.config.socket_path)
                assert (await _rpc(reader, writer, {"op": "open", "tenant": "t"}))[
                    "ok"
                ]
                deadline = time.monotonic() + 5.0
                while server.live_sessions() and time.monotonic() < deadline:
                    await asyncio.sleep(0.05)
                assert server.live_sessions() == 0
                writer.close()
                await server.stop()
            finally:
                events.deactivate()
            lines, _ = split_torn_tail((tmp_path / "ev.jsonl").read_text())
            parsed, problems = validate_lines(lines)
            assert not problems
            closes = [e for e in parsed if e["type"] == "session_close"]
            assert [c["reason"] for c in closes] == ["idle"]

        run(scenario())

    def test_shutdown_frame_stops_server(self, tmp_path):
        async def scenario():
            server = ConflictServer(self._config(tmp_path))
            await server.start()
            waiter = asyncio.ensure_future(server.serve_until_stopped())
            reader, writer = await _client(server.config.socket_path)
            reply = await _rpc(reader, writer, {"op": "shutdown"})
            assert reply["ok"] and reply["stopping"]
            writer.close()
            await asyncio.wait_for(waiter, timeout=5.0)

        run(scenario())

    def test_event_stream_reconciles_after_mixed_run(self, tmp_path):
        async def scenario():
            events.activate(ObsConfig(events_path=str(tmp_path / "ev.jsonl")))
            try:
                server = ConflictServer(self._config(tmp_path))
                await server.start()
                args = loadgen_parser().parse_args(
                    [
                        "--socket",
                        server.config.socket_path,
                        "--sessions",
                        "12",
                        "--concurrency",
                        "6",
                        "--refs-per-session",
                        "1500",
                        "--batch-size",
                        "500",
                    ]
                )
                report = await run_load(args)
                await server.stop()
            finally:
                events.deactivate()
            assert report["errors"] == 0
            assert report["refs_done"] == 12 * 1500
            assert report["answers"] == 36
            lines, _ = split_torn_tail((tmp_path / "ev.jsonl").read_text())
            parsed, problems = validate_lines(lines)
            assert not problems
            checked, reconcile_problems = reconcile_events(parsed)
            assert not reconcile_problems
            assert checked == 12

        run(scenario())


# ----------------------------------------------------------------------
# Loadgen helpers
# ----------------------------------------------------------------------
class TestLoadgen:
    def test_percentile_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.50) == 51.0
        assert percentile(values, 0.99) == 100.0
        assert percentile([], 0.5) == 0.0
        assert percentile([7.0], 0.99) == 7.0


# ----------------------------------------------------------------------
# Crash consistency (subprocess + fault plans)
# ----------------------------------------------------------------------
def _wait_for_socket(path, proc, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return False
        if os.path.exists(path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(path)
            except OSError:
                pass
            else:
                probe.close()
                return True
            finally:
                probe.close()
        time.sleep(0.05)
    return False


class TestCrashConsistency:
    def _run_injected(self, tmp_path, plan):
        sock = str(tmp_path / "serve.sock")
        events_path = str(tmp_path / "events.jsonl")
        env = {**os.environ, "PYTHONPATH": "src"}
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "--socket",
                sock,
                "--metrics",
                events_path,
                "--inject",
                plan,
                "--max-runtime",
                "60",
                "--idle-timeout",
                "30",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            assert _wait_for_socket(sock, server), "server never came up"
            loadgen = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.serve.loadgen",
                    "--socket",
                    sock,
                    "--sessions",
                    "6",
                    "--concurrency",
                    "3",
                    "--refs-per-session",
                    "1200",
                    "--batch-size",
                    "400",
                    "--tolerate-errors",
                    "--shutdown",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=120,
            )
            assert loadgen.returncode == 0, loadgen.stderr
            server.wait(timeout=60)
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()
        validate = subprocess.run(
            [sys.executable, "-m", "repro.obs.validate", events_path, "--reconcile"],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        return validate

    @pytest.mark.parametrize("kind", ["exception", "enospc", "partial", "delay"])
    def test_survivable_batch_faults_leave_reconcilable_stream(
        self, tmp_path, kind
    ):
        validate = self._run_injected(tmp_path, f"serve_batch:{kind}:1")
        assert validate.returncode == 0, validate.stderr

    def test_batch_kill_stream_rejected_cleanly(self, tmp_path):
        validate = self._run_injected(tmp_path, "serve_batch:kill:1")
        assert validate.returncode == 1
        assert "session_open without session_close" in validate.stderr

    def test_accept_fault_leaves_no_session_residue(self, tmp_path):
        # The accept-path fault fires before the handshake, so the
        # failed connection contributes no events at all; everything
        # that did open must still reconcile.
        validate = self._run_injected(tmp_path, "serve_accept:exception:1")
        assert validate.returncode == 0, validate.stderr

    def test_sigterm_between_sessions_reconciles(self, tmp_path):
        # A server stopped when no session is live leaves a complete
        # stream; this is the clean-deploy case (drain, then stop).
        sock = str(tmp_path / "serve.sock")
        events_path = str(tmp_path / "events.jsonl")
        env = {**os.environ, "PYTHONPATH": "src"}
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "--socket",
                sock,
                "--metrics",
                events_path,
                "--max-runtime",
                "60",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            assert _wait_for_socket(sock, server), "server never came up"
            loadgen = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.serve.loadgen",
                    "--socket",
                    sock,
                    "--sessions",
                    "3",
                    "--refs-per-session",
                    "600",
                    "--batch-size",
                    "300",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=120,
            )
            assert loadgen.returncode == 0, loadgen.stderr
            server.send_signal(signal.SIGTERM)
            server.wait(timeout=30)
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()
        validate = subprocess.run(
            [sys.executable, "-m", "repro.obs.validate", events_path, "--reconcile"],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert validate.returncode == 0, validate.stderr
