"""Tests for the Chen & Baer reference prediction table."""

import pytest

from repro.buffers.stride import (
    PrefetcherComparison,
    ReferencePredictionTable,
    RPTState,
    compare_prefetchers,
)
from repro.cache.geometry import CacheGeometry
from repro.workloads.spec_analogs import build
from repro.workloads.trace import Trace


class TestStateMachine:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            ReferencePredictionTable(100)

    def test_first_sighting_predicts_nothing(self):
        rpt = ReferencePredictionTable()
        assert rpt.observe(0x400000, 0x1000) is None
        assert rpt.state_of(0x400000) is RPTState.INITIAL

    def test_constant_stride_reaches_steady_and_predicts(self):
        rpt = ReferencePredictionTable()
        pc = 0x400000
        rpt.observe(pc, 0x1000)
        out = rpt.observe(pc, 0x1008)          # stride 8 adopted
        # Second sighting with a fresh stride: prediction begins once the
        # state machine reaches STEADY.
        out = rpt.observe(pc, 0x1010)
        assert out == 0x1018
        assert rpt.state_of(pc) is RPTState.STEADY

    def test_prediction_follows_stride(self):
        rpt = ReferencePredictionTable()
        pc = 0x400000
        for i in range(5):
            out = rpt.observe(pc, 0x2000 + i * 64)
        assert out == 0x2000 + 5 * 64

    def test_zero_stride_never_predicts(self):
        rpt = ReferencePredictionTable()
        pc = 0x400000
        for _ in range(5):
            out = rpt.observe(pc, 0x3000)
        assert out is None

    def test_random_stream_goes_no_pred(self):
        rpt = ReferencePredictionTable()
        pc = 0x400000
        import random

        rnd = random.Random(1)
        for _ in range(20):
            rpt.observe(pc, rnd.randrange(0, 1 << 20))
        assert rpt.state_of(pc) in (RPTState.NO_PRED, RPTState.TRANSIENT,
                                    RPTState.INITIAL)

    def test_stride_change_then_restabilise(self):
        rpt = ReferencePredictionTable()
        pc = 0x400000
        for i in range(4):
            rpt.observe(pc, 0x1000 + i * 8)
        assert rpt.state_of(pc) is RPTState.STEADY
        rpt.observe(pc, 0x9000)      # break the pattern
        assert rpt.state_of(pc) is not RPTState.STEADY
        base = 0x9000
        for i in range(1, 5):
            out = rpt.observe(pc, base + i * 16)
        assert out == base + 4 * 16 + 16  # stride 16 relearned

    def test_distinct_pcs_tracked_separately(self):
        rpt = ReferencePredictionTable()
        pc_a, pc_b = 0x400000, 0x400004  # adjacent slots, no aliasing
        for i in range(4):
            rpt.observe(pc_a, 0x1000 + i * 8)
            rpt.observe(pc_b, 0x8000 + i * 128)
        assert rpt.observe(pc_a, 0x1000 + 4 * 8) == 0x1000 + 5 * 8
        assert rpt.observe(pc_b, 0x8000 + 4 * 128) == 0x8000 + 5 * 128

    def test_tag_conflict_resets_entry(self):
        rpt = ReferencePredictionTable(entries=4)
        pc_a, pc_b = 0x400000, 0x400000 + 4 * 4  # same slot
        for i in range(4):
            rpt.observe(pc_a, 0x1000 + i * 8)
        rpt.observe(pc_b, 0x2000)  # evicts pc_a's entry
        assert rpt.state_of(pc_a) is None
        assert rpt.state_of(pc_b) is RPTState.INITIAL


class TestComparison:
    GEO = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)

    def test_pure_stride_both_do_well(self):
        n = 4000
        t = Trace([0x100000 + i * 8 for i in range(n)],
                  pcs=[0x400000] * n)
        cmp = compare_prefetchers(t, self.GEO)
        assert cmp.next_line_coverage > 80
        assert cmp.rpt_coverage > 80

    def test_long_stride_favours_rpt(self):
        """Stride 256 skips lines: next-line prefetches the wrong block,
        the RPT learns the true stride."""
        n = 3000
        t = Trace([0x100000 + i * 256 for i in range(n)],
                  pcs=[0x400000] * n)
        cmp = compare_prefetchers(t, self.GEO)
        assert cmp.rpt_coverage > cmp.next_line_coverage
        assert cmp.rpt_accuracy > cmp.next_line_accuracy

    def test_irregular_analog_favours_next_line_coverage(self):
        """§5.2: 'for most of the benchmarks we use, particularly the
        irregular applications, the simple next-line prefetcher actually
        provides higher coverage' (at lower accuracy)."""
        t = build("gcc", 30_000)
        cmp = compare_prefetchers(t, self.GEO)
        assert cmp.next_line_coverage >= cmp.rpt_coverage

    def test_returns_dataclass(self):
        t = build("li", 5_000)
        cmp = compare_prefetchers(t, self.GEO)
        assert isinstance(cmp, PrefetcherComparison)
        assert cmp.misses > 0
