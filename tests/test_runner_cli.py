"""Tests for the repro-experiments CLI."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main, run_experiments
from repro.experiments.base import ExperimentParams


TINY = ExperimentParams(n_refs=6_000, warmup=2_000, suite=["gcc"])


class TestRegistry:
    def test_all_experiments_registered(self):
        # Nine paper tables/figures, the two measured §5.6 extensions,
        # the per-benchmark sharded cut of the Figure 3 grid, and the
        # two miss-ratio-curve subsystem figures.
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig3", "table1", "fig4",
            "fig5", "sec54", "fig6", "fig7",
            "sec56", "assoc", "fig3sweep",
            "mrc", "mrc_sampled",
        }

    def test_run_experiments_by_name(self):
        results = run_experiments(["table1"], TINY)
        assert len(results) == 1
        assert results[0].experiment_id == "table1"

    def test_multi_result_experiments(self):
        results = run_experiments(["fig6"], TINY)
        assert [r.experiment_id for r in results] == ["fig6-8", "fig6-16"]

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            run_experiments(["fig99"], TINY)


class TestCLI:
    def test_main_prints_table(self, capsys):
        rc = main(["table1", "--refs", "6000", "--warmup", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Victim-cache hit rates" in out
        assert "V cache" in out

    def test_quick_flag(self, capsys):
        rc = main(["table1", "--quick"])
        assert rc == 0
        assert "table1" in capsys.readouterr().out

    def test_chart_flag(self, capsys):
        rc = main(["table1", "--quick", "--chart", "Total"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table1: Total" in out
        assert "|" in out

    def test_chart_flag_bad_column(self, capsys):
        rc = main(["table1", "--quick", "--chart", "nonexistent"])
        assert rc == 0  # chart errors are soft


class TestUpfrontValidation:
    """Bad inputs must fail before any experiment starts (satellite)."""

    def test_bad_refs_warmup_pair_rejected_upfront(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["table1", "--refs", "1000", "--warmup", "1000"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "warmup" in err
        # Nothing ran: no table on stdout.
        assert "Victim-cache" not in capsys.readouterr().out

    def test_negative_refs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--refs", "-5"])
        assert "n_refs" in capsys.readouterr().err

    def test_unknown_experiment_lists_valid_names(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fig1", "fig99"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "fig99" in err
        for name in ("fig1", "table1", "sec54"):
            assert name in err

    def test_unknown_suite_bench_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--suite", "gcc,nosuch"])
        assert "nosuch" in capsys.readouterr().err

    def test_bad_inject_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--inject-fault", "table1.main:explode"])
        assert "fault" in capsys.readouterr().err
