#!/usr/bin/env python
"""Prefetch filtering with the MCT (paper §5.2).

Runs a next-line prefetcher over the evaluation suite with each of the
four conflict filters and shows the paper's Figure-4 result: filtering
conflict misses out of the prefetch stream buys a large accuracy gain
(fewer wasted prefetches) at nearly unchanged coverage.

Run:  python examples/prefetch_filtering.py
"""

from repro.buffers.prefetch import figure4_policies
from repro.system import SLOW_BUS_MACHINE, simulate
from repro.workloads import build_suite

N_REFS, WARMUP = 60_000, 20_000
SUITE = ["tomcatv", "swim", "turb3d", "gcc", "compress"]

traces = build_suite(SUITE, n_refs=N_REFS)
policies = figure4_policies()

print(f"{'policy':<22} {'issued':>8} {'used':>8} {'wasted':>8} "
      f"{'accuracy':>9} {'coverage':>9}")
for policy in policies:
    issued = used = wasted = hits = misses = 0
    for trace in traces.values():
        stats = simulate(trace, policy, SLOW_BUS_MACHINE, warmup=WARMUP)
        b = stats.buffer
        issued += b.prefetches_issued
        used += b.prefetches_used
        wasted += b.prefetches_wasted
        hits += b.prefetch_hits
        misses += stats.l1.misses
    accuracy = 100.0 * used / issued if issued else 0.0
    coverage = 100.0 * hits / misses if misses else 0.0
    print(f"{policy.name:<22} {issued:>8} {used:>8} {wasted:>8} "
          f"{accuracy:>8.1f}% {coverage:>8.1f}%")

print("\nThe or-conflict filter is the most discriminating: it skips a")
print("prefetch on any hint of a conflict event, trading a little")
print("coverage for the biggest cut in wasted prefetch traffic.")
