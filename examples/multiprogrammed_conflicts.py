#!/usr/bin/env python
"""Multithreaded/multiprogrammed conflicts (paper §5.6, future work).

Section 5.6 argues miss classification matters even more when several
threads share a cache, because cross-thread conflicts cannot be fixed in
software.  This example interleaves two analog "threads" reference-by-
reference, shows how the shared-cache conflict share explodes relative to
either program alone, and that the MCT still classifies the mess
accurately — the signal a co-scheduler would use.

Run:  python examples/multiprogrammed_conflicts.py
"""

from repro import CacheGeometry, measure_accuracy
from repro.system import BASELINE, sharing_penalties
from repro.workloads import build, merge_round_robin

GEO = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)
N = 60_000

pairs = [("go", "li"), ("gcc", "compress"), ("swim", "vortex")]

print(f"{'workload':<18} {'miss%':>7} {'conflict share':>15} "
      f"{'conf acc':>9} {'cap acc':>8}")


def report(name, addresses):
    res = measure_accuracy(addresses, GEO)
    print(f"{name:<18} {res.miss_rate:7.1f} {res.conflict_fraction:14.1f}% "
          f"{res.conflict_accuracy:8.1f}% {res.capacity_accuracy:7.1f}%")
    return res


for a_name, b_name in pairs:
    a = build(a_name, N)
    b = build(b_name, N)
    report(a_name, a.addresses)
    report(b_name, b.addresses)
    mixed = merge_round_robin([a, b], name=f"{a_name}+{b_name}")
    res = report(f"{a_name}+{b_name}", mixed.addresses)
    print()

print("Co-scheduled threads manufacture conflicts neither program has on")
print("its own; the MCT identifies them on the fly, enabling both the")
print("AMB-style optimizations and conflict-aware job co-scheduling.")

# ----------------------------------------------------------------------
# Per-thread sharing penalties on the full shared system (see
# repro.system.multithreaded and the sec56 experiment for more).
# ----------------------------------------------------------------------
print("\n-- per-thread sharing penalty (shared vs solo, uncovered misses) --")
for a_name, b_name in pairs:
    traces = [build(a_name, N // 2), build(b_name, N // 2)]
    for p in sharing_penalties(traces, BASELINE, warmup_fraction=0.25):
        print(f"{p.name:<10} solo {p.solo_miss_rate:5.1f}%  "
              f"shared {p.shared_miss_rate:5.1f}%  penalty {p.penalty:+5.1f}")
