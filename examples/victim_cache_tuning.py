#!/usr/bin/env python
"""Victim-cache policy tuning with miss classification (paper §5.1).

Replays one conflict-heavy analog (tomcatv) through the four victim-cache
policies of Figure 3 / Table 1 and prints the trade-off the paper
highlights: the filtered policies keep the combined hit rate while
slashing swap and fill traffic — and that traffic relief, not hit rate,
is where the speedup comes from.

Run:  python examples/victim_cache_tuning.py [benchmark]
"""

import sys

from repro.buffers.victim import table1_policies
from repro.system import simulate, speedup
from repro.workloads import build

BENCH = sys.argv[1] if len(sys.argv) > 1 else "tomcatv"
N_REFS, WARMUP = 120_000, 40_000

print(f"benchmark: {BENCH} ({N_REFS} refs, {WARMUP} warmup)")
trace = build(BENCH, N_REFS)

policies = table1_policies()
results = {p.name: simulate(trace, p, warmup=WARMUP) for p in policies}
baseline = results["no V cache"]

print(f"\n{'policy':<13} {'D$ HR':>6} {'V$ HR':>6} {'total':>6} "
      f"{'swaps':>6} {'fills':>6} {'speedup':>8}")
for name, stats in results.items():
    acc = stats.l1.accesses
    print(
        f"{name:<13} {stats.l1.hit_rate:6.1f} {stats.buffer.hit_rate(acc):6.1f} "
        f"{stats.total_hit_rate:6.1f} {stats.buffer.swap_rate(acc):6.2f} "
        f"{stats.buffer.fill_rate(acc):6.2f} {speedup(stats, baseline):8.3f}"
    )

combined = results["filter both"]
trad = results["V cache"]
print(
    f"\nfiltered-vs-traditional: {speedup(combined, trad):.3f}x "
    "(paper: ~1.03 on average)"
)
print(
    f"swap traffic cut  : {trad.buffer.swaps} -> {combined.buffer.swaps}"
)
print(
    f"fill traffic cut  : {trad.buffer.fills} -> {combined.buffer.fills}"
)
