#!/usr/bin/env python
"""Quickstart: classify cache misses with the Miss Classification Table.

Builds a small synthetic workload, runs it through a 16KB direct-mapped
cache with an MCT attached, and compares the MCT's on-the-fly answers
with the classic (Hill) ground-truth definition — the measurement behind
Figure 1 of the paper.

Run:  python examples/quickstart.py
"""

from repro import CacheGeometry, MissClassificationTable, build, measure_accuracy
from repro.cache import SetAssociativeCache
from repro.core import MissClass

# ----------------------------------------------------------------------
# 1. The mechanism itself, by hand: a two-line ping-pong.
# ----------------------------------------------------------------------
geometry = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)
mct = MissClassificationTable(geometry)
cache = SetAssociativeCache(geometry, on_evict=mct.on_evict)

a = 0x10000
b = a + geometry.size  # same cache set, different tag

print("-- ping-pong between two conflicting lines --")
for step, addr in enumerate([a, b, a, b, a]):
    outcome = cache.lookup(addr)
    if outcome.hit:
        print(f"access {step}: {addr:#8x} hit")
        continue
    kind = mct.classify(addr)
    cache.fill(addr)
    print(f"access {step}: {addr:#8x} miss -> classified {kind}")
assert mct.classify(b) is MissClass.CONFLICT

# ----------------------------------------------------------------------
# 2. Accuracy on a realistic workload (one SPEC95 analog).
# ----------------------------------------------------------------------
print("\n-- MCT accuracy on the tomcatv analog (vs Hill's definition) --")
trace = build("tomcatv", n_refs=60_000)
result = measure_accuracy(trace.addresses, geometry)
print(f"L1 miss rate        : {result.miss_rate:5.1f}%")
print(f"conflict accuracy   : {result.conflict_accuracy:5.1f}%   (paper: ~88%)")
print(f"capacity accuracy   : {result.capacity_accuracy:5.1f}%   (paper: ~86%)")
print(f"true conflict share : {result.conflict_fraction:5.1f}% of misses")

# ----------------------------------------------------------------------
# 3. Partial tags: the paper's 8-bit MCT entries.
# ----------------------------------------------------------------------
print("\n-- storing only the low 8 bits of each evicted tag --")
partial = measure_accuracy(trace.addresses, geometry, tag_bits=8)
print(f"8-bit conflict accuracy: {partial.conflict_accuracy:5.1f}%")
print(f"8-bit capacity accuracy: {partial.capacity_accuracy:5.1f}%")
mct8 = MissClassificationTable(geometry, tag_bits=8)
print(f"MCT storage at 8 bits  : {mct8.storage_bits(valid_bit=False) / 8:.0f} bytes "
      f"for a {geometry.describe()} cache")
