#!/usr/bin/env python
"""The Adaptive Miss Buffer: one buffer, three roles (paper §5.5).

Runs a conflict+capacity workload through the single-policy buffers and
the AMB combinations, printing per-role hit components (Figure 7) and
speedups (Figure 6).  The point: one 8-entry buffer that victim-caches
conflict misses while prefetching capacity misses covers more misses
than the same buffer dedicated to either job.

Run:  python examples/adaptive_miss_buffer.py [benchmark]
"""

import sys

from repro.buffers.amb import figure6_policies
from repro.system import BASELINE, simulate, speedup
from repro.workloads import build

BENCH = sys.argv[1] if len(sys.argv) > 1 else "tomcatv"
N_REFS, WARMUP = 120_000, 40_000

trace = build(BENCH, N_REFS)
base = simulate(trace, BASELINE, warmup=WARMUP)
print(f"benchmark: {BENCH}  (baseline miss rate {base.l1.miss_rate:.1f}%, "
      f"IPC {base.timing.ipc:.2f})")

print(f"\n{'policy':<11} {'D$ HR':>6} {'victim':>7} {'pref':>6} {'excl':>6} "
      f"{'total':>6} {'speedup':>8}")
for policy in figure6_policies(8):
    stats = simulate(trace, policy, warmup=WARMUP)
    acc = stats.l1.accesses
    victim = 100.0 * stats.buffer.victim_hits / acc
    pref = 100.0 * stats.buffer.prefetch_hits / acc
    excl = 100.0 * stats.buffer.exclusion_hits / acc
    print(
        f"{policy.name:<11} {stats.l1.hit_rate:6.1f} {victim:7.2f} "
        f"{pref:6.2f} {excl:6.2f} {stats.total_hit_rate:6.1f} "
        f"{speedup(stats, base):8.3f}"
    )

print("\nEach combined policy serves each miss class with the optimization")
print("most likely to pay off — the single structure does several jobs.")
