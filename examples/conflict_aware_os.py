#!/usr/bin/env python
"""OS-level uses of miss classification (paper §5.6).

Two demos of the extensions package:

1. **Dynamic page remapping** (Bershad et al.'s cache-miss-lookaside
   scheme): two hot pages alias the same cache region; counting only
   MCT-conflict misses finds and fixes the alias without wasting remaps
   on streaming (capacity) pages.
2. **Conflict-aware co-scheduling**: measure every pairing of four jobs
   on a shared L1 and pick the schedule with the fewest cross-thread
   conflict misses.

Run:  python examples/conflict_aware_os.py
"""

from repro.cache.geometry import CacheGeometry
from repro.extensions import CoScheduleAdvisor, RemapPolicy, simulate_remap
from repro.workloads import Trace, build

GEO = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)

# ----------------------------------------------------------------------
# 1. Page remapping
# ----------------------------------------------------------------------
print("== dynamic page remapping ==")
a, b = 0x100000, 0x100000 + GEO.size      # two pages, same cache colour
stream = 0x800000
addrs = []
for i in range(4000):
    off = (i % 64) * 64
    addrs += [a + off, b + off]           # aliasing hot pages (conflicts)
    addrs.append(stream + i * 64)         # streaming page (capacity)
workload = Trace(addrs, name="aliasing+streaming")

print(f"{'policy':<15} {'miss rate':>10} {'remaps':>7}")
for policy in (RemapPolicy.NONE, RemapPolicy.ALL_MISSES,
               RemapPolicy.CONFLICT_ONLY):
    stats = simulate_remap(workload, GEO, policy)
    print(f"{policy.value:<15} {stats.miss_rate:9.1f}% {stats.remaps:>7}")
print("Conflict-only counting fixes the alias with a handful of remaps;")
print("counting all misses wastes remaps on the streaming page.\n")

# ----------------------------------------------------------------------
# 2. Co-scheduling
# ----------------------------------------------------------------------
print("== conflict-aware co-scheduling ==")
names = ("go", "li", "gcc", "compress")
advisor = CoScheduleAdvisor(GEO)
reports = advisor.measure_all([build(n, 20_000) for n in names])

print(f"{'pairing':<16} {'miss%':>6} {'conflict%':>10}")
for r in sorted(reports, key=lambda r: r.conflict_miss_rate):
    print(f"{'+'.join(r.jobs):<16} {r.miss_rate:6.1f} "
          f"{r.conflict_miss_rate:9.2f}")

schedule = advisor.recommend(names)
print("\nrecommended schedule:",
      ",  ".join("+".join(pair) for pair in schedule))
print("Jobs that fight over the same sets are kept apart using only the")
print("MCT's conflict counters — no software knowledge of the programs.")
