#!/usr/bin/env python
"""MCT-biased pseudo-associative cache (paper §5.4).

Compares, on one workload, four equal-capacity L1 organisations:
direct-mapped, the classic column-associative cache, the paper's
conflict-bit-biased variant, and a true 2-way cache.  The MCT variant
recovers most of the gap between the classic demotion rule and true
2-way associativity while keeping a direct-mapped primary hit time.

Run:  python examples/pseudo_associative.py [benchmark]
"""

import sys
from dataclasses import replace

from repro.cache.geometry import CacheGeometry
from repro.cache.pseudo_assoc import PacVariant
from repro.system import BASELINE, PAPER_MACHINE, simulate, speedup
from repro.system.pac_system import simulate_pac
from repro.workloads import build

BENCH = sys.argv[1] if len(sys.argv) > 1 else "go"
N_REFS, WARMUP = 120_000, 40_000

trace = build(BENCH, N_REFS)
machine = PAPER_MACHINE
two_way = replace(
    machine, l1=CacheGeometry(size=machine.l1.size, assoc=2,
                              line_size=machine.l1.line_size)
)

dm = simulate(trace, BASELINE, machine, warmup=WARMUP)
pac_classic = simulate_pac(trace, PacVariant.CLASSIC, machine, warmup=WARMUP)
pac_mct = simulate_pac(trace, PacVariant.MCT, machine, warmup=WARMUP)
w2 = simulate(trace, BASELINE, two_way, warmup=WARMUP)

print(f"benchmark: {BENCH}")
print(f"{'organisation':<22} {'miss rate':>10} {'speedup vs DM':>14}")
rows = [
    ("direct-mapped", dm, 1.0),
    ("pseudo-assoc (classic)", pac_classic, speedup(pac_classic, dm)),
    ("pseudo-assoc (MCT)", pac_mct, speedup(pac_mct, dm)),
    ("true 2-way", w2, speedup(w2, dm)),
]
for name, stats, sp in rows:
    print(f"{name:<22} {stats.l1.miss_rate:9.2f}% {sp:14.3f}")

print("\nThe conflict-bit reprieve keeps recently-conflicting lines alive")
print("through the demotion dance, approaching 2-way miss rates (paper:")
print("within 0.9% of a true 2-way cache; miss rate 10.22% -> 9.83%).")
