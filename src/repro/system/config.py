"""Machine configuration — the paper's simulated processor as defaults.

Section 4 of the paper: an 8-issue out-of-order processor (SMTSIM) with a
7-stage pipeline, two 32-entry instruction queues and four load/store
units; a 16KB direct-mapped L1 data cache (8-way banked, 64-byte lines),
a 1MB 2-way L2 at 20 cycles, and main memory at 100 cycles from the CPU
(both in the absence of contention); non-blocking caches with up to 16
misses in flight, prefetches discarded beyond that; an 8-entry
fully-associative assist buffer (2 read + 2 write ports, one-cycle data,
line moves take a port for two cycles).

Our SMTSIM substitution is a cycle-accounting model (see
:mod:`repro.system.timing`); its out-of-order latency tolerance is the
``rob_window`` — how many instructions the core can slide past an
outstanding miss before retirement stalls, sized from the paper's two
32-entry queues.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cache.geometry import CacheGeometry


@dataclass(frozen=True)
class TimingConfig:
    """Cycle-accounting parameters (the SMTSIM stand-in)."""

    width: int = 8                 # fetch/issue width (the paper's machine)
    issue_rate: float = 3.0        # sustained instructions/cycle on clean code;
                                   # an 8-wide OoO core averages ~3 IPC on
                                   # SPEC95 once dependences and branches bite
    rob_window: int = 32           # instructions a miss may slide past before
                                   # retirement stalls (one 32-entry IQ); at
                                   # issue_rate 3 this hides ~10 cycles, so an
                                   # L2 hit exposes about half its 20-cycle
                                   # latency and a memory trip nearly all
    mshrs: int = 16                # outstanding misses (paper: 16 in flight)
    l1_latency: int = 1
    buffer_latency: int = 2        # L1 miss + 1 extra cycle (paper Section 4)
    l2_latency: int = 20           # from the processor, uncontended
    memory_latency: int = 120      # L2 miss: 100 cycles beyond the L2 trip
    bus_transfer_cycles: int = 1   # L1<->L2 bus occupancy per 64B line; the
                                   # paper's main machine has enough bandwidth
                                   # that prefetch waste is (almost) free
    n_banks: int = 8               # L1 multi-ported via 8-way banking
    bank_busy_cycles: int = 1      # bank occupancy of a normal access
    swap_busy_cycles: int = 2      # a line swap holds bank and buffer 2 cycles
    buffer_busy_cycles: int = 1    # buffer port occupancy of a probe/word read

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if not 0 < self.issue_rate <= self.width:
            raise ValueError("issue_rate must be in (0, width]")
        if self.mshrs < 1:
            raise ValueError("mshrs must be >= 1")
        if self.memory_latency < self.l2_latency:
            raise ValueError("memory_latency must include the L2 trip")

    def with_slow_bus(self, cycles: int = 8) -> "TimingConfig":
        """The slower L1-L2 bus variant used for Figure 4's speedups.

        The paper notes prefetch speedups were measured "for a system with
        a slower memory bus (between the L1 and L2 caches) than modeled in
        the rest of the paper".
        """
        return replace(self, bus_transfer_cycles=cycles)


@dataclass(frozen=True)
class MachineConfig:
    """Full machine: cache geometries plus timing."""

    l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size=16 * 1024, assoc=1, line_size=64)
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size=1 << 20, assoc=2, line_size=64)
    )
    timing: TimingConfig = field(default_factory=TimingConfig)

    def __post_init__(self) -> None:
        if self.l1.line_size != self.l2.line_size:
            raise ValueError("L1 and L2 must share a line size")
        if self.l2.size < self.l1.size:
            raise ValueError("L2 must be at least as large as L1")


#: The configuration used by every Section-5 experiment.
PAPER_MACHINE = MachineConfig()

#: Figure 4's machine: identical but with a slow L1-L2 bus.
SLOW_BUS_MACHINE = MachineConfig(timing=TimingConfig().with_slow_bus())
