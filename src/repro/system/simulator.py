"""Trace-driven simulation runner.

Thin orchestration: feed a :class:`~repro.workloads.trace.Trace` through
an engine and return the final :class:`~repro.cache.stats.SystemStats`.
Two engines produce byte-identical statistics:

* ``scalar`` — the pinned reference: every reference walks through a
  live :class:`~repro.system.memory_system.MemorySystem`.
* ``vector`` — the set-partitioned numpy engine
  (:mod:`repro.system.vector`), an order of magnitude faster for the
  bufferless policies it supports.

``engine="auto"`` (the default) picks the vector engine whenever the
run is eligible and can be overridden per process with the
``REPRO_SIM_ENGINE`` environment variable (how ``--engine`` reaches
harness workers).  Also provides the speedup helpers the figures are
built from (IPC relative to a baseline policy on the same trace) and the
geometric/arithmetic means the paper averages with.
"""

from __future__ import annotations

import os
from itertools import islice
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro import faults
from repro.cache.stats import SystemStats
from repro.obs import events as obs_events
from repro.obs.heartbeat import SimTicker, sim_ticker
from repro.system.config import MachineConfig, PAPER_MACHINE
from repro.system.memory_system import MemorySystem
from repro.system.policies import AssistConfig
from repro.workloads.trace import Trace

#: Environment override consulted by ``engine="auto"`` — set by the
#: experiment runner's ``--engine`` flag so worker processes inherit it.
ENGINE_ENV_VAR = "REPRO_SIM_ENGINE"

_ENGINES = ("auto", "scalar", "vector")


def validate_engine_env() -> Optional[str]:
    """Fail fast on an invalid :data:`ENGINE_ENV_VAR` value.

    Supervisors (the experiment runner, the bench harness) call this at
    spawn time, *before* any worker inherits the environment: a typo
    like ``REPRO_SIM_ENGINE=vecotr`` must abort the campaign up front
    with the valid choices, not surface as one ``ValueError`` per cell
    deep inside worker processes.  Returns the (valid) value, or
    ``None`` when the variable is unset.
    """
    value = os.environ.get(ENGINE_ENV_VAR)
    if value is not None and value not in _ENGINES:
        raise ValueError(
            f"${ENGINE_ENV_VAR}={value!r} is not a valid simulation "
            f"engine: expected one of {', '.join(_ENGINES)}"
        )
    return value

#: One (address, is_load, gap) triple per reference.
_Ref = Tuple[int, bool, int]


def simulate(
    trace: Trace,
    policy: AssistConfig,
    machine: MachineConfig = PAPER_MACHINE,
    *,
    warmup: int = 0,
    engine: str = "auto",
) -> SystemStats:
    """Run one trace through one policy on one machine.

    ``warmup`` references are simulated first to warm the caches, buffer
    and MCT; statistics and the cycle clock are then reset before the
    remaining references are measured (the stand-in for the paper's
    billion-instruction fast-forward).

    ``warmup`` must leave at least one reference to measure: a run whose
    entire trace is warmup would report all-zero statistics, and every
    derived rate (IPC, speedup, hit rates) downstream would silently
    divide by zero or read 0.0.

    ``engine`` selects the implementation: ``"scalar"`` always uses the
    reference per-reference loop, ``"vector"`` *demands* the
    set-partitioned engine, and ``"auto"`` (the default, further
    overridable via :data:`ENGINE_ENV_VAR`) uses the vector engine when
    the run is eligible.  For an ineligible cell (assist buffer — see
    :func:`repro.system.vector.vector_ineligibility`) ``"auto"`` falls
    back to the scalar engine, recording an ``engine_fallback`` event
    with the reason when metrics are active, while ``"vector"`` raises
    the reason — a demand that cannot be honoured must not silently
    time the wrong engine.  The engines are byte-identical, so auto's
    fallback never changes results.
    """
    if not 0 <= warmup < len(trace):
        raise ValueError(
            f"warmup {warmup} must lie in [0, {len(trace)}) so at least one "
            f"of the trace's {len(trace)} references is measured"
        )
    resolved = engine
    if resolved == "auto":
        resolved = os.environ.get(ENGINE_ENV_VAR, "auto")
    if resolved not in _ENGINES:
        raise ValueError(
            f"unknown engine {resolved!r} (from engine={engine!r} / "
            f"${ENGINE_ENV_VAR}): expected one of {', '.join(_ENGINES)}"
        )
    if resolved != "scalar":
        from repro.system import vector

        reason = vector.vector_ineligibility(policy, machine)
        if reason is None:
            return vector.simulate_vector(trace, policy, machine, warmup=warmup)
        if resolved == "vector":
            raise ValueError(
                f"engine='vector' cannot run this cell: {reason} — "
                "use engine='auto' (scalar fallback) or engine='scalar'"
            )
        # auto: fall back to the scalar reference, leaving a trace in the
        # event stream so an instrumented campaign can tell "vector ran"
        # from "vector silently declined".
        log = obs_events.active_log()
        if log is not None:
            log.emit(
                "engine_fallback",
                bench=trace.name,
                policy=policy.name,
                reason=reason,
            )

    system = MemorySystem(policy, machine)
    access = system.access
    # Convert the trace's numpy arrays to native lists once: indexing a
    # numpy array boxes a fresh scalar object per element, which costs
    # more than the cache lookup it feeds on short references.  A single
    # zip iterator is then shared by the warmup and measured loops —
    # islice() consumes it in place, so neither loop copies the lists
    # again (slicing them per loop used to triple peak trace memory).
    refs: Iterator[_Ref] = zip(
        trace.addresses.tolist(), trace.is_load.tolist(), trace.gaps.tolist()
    )
    for addr, load, gap in islice(refs, warmup):
        access(addr, is_load=load, gap=gap)
    if warmup:
        system.reset_measurement()
    ticker = sim_ticker(
        bench=trace.name, policy=policy.name, refs=len(trace), warmup=warmup
    )
    # Consulted once per simulate(), never per reference: 0 unless a
    # fault plan arming the sim_tick site is active in this process.
    tick_every = faults.sim_tick_every()
    if ticker is None and tick_every == 0:
        # Metrics disabled (the default): the measured loop is exactly
        # the warmup loop — no per-chunk bookkeeping, no overhead.
        for addr, load, gap in refs:
            access(addr, is_load=load, gap=gap)
        return system.finish()
    return _measure(system, refs, len(trace) - warmup, ticker, tick_every)


def measure_boundaries(
    total: int, heartbeat_every: int, tick_every: int
) -> Iterator[Tuple[int, bool, bool]]:
    """Chunk boundaries of a measured window of ``total`` references.

    Yields ``(stop, fire, beat)`` triples covering ``(0, total]``: the
    union of the heartbeat cadence and the ``sim_tick`` fault-site
    cadence (each 0 when inactive).  ``fire`` marks every multiple of
    ``tick_every`` plus the end of the window (so a fault plan always
    gets its shot even on short windows); ``beat`` marks multiples of
    ``heartbeat_every`` strictly inside the window (no heartbeat for the
    final boundary: ``sim_end`` immediately follows with the complete
    snapshot).  Both engines walk this one schedule, so the event stream
    and fault-site hit counts are engine-independent.
    """
    position = 0
    while position < total:
        stop = total
        if heartbeat_every:
            stop = min(stop, (position // heartbeat_every + 1) * heartbeat_every)
        if tick_every:
            stop = min(stop, (position // tick_every + 1) * tick_every)
        fire = bool(tick_every) and (stop % tick_every == 0 or stop == total)
        beat = bool(heartbeat_every) and stop % heartbeat_every == 0 and stop < total
        yield stop, fire, beat
        position = stop


def _measure(
    system: MemorySystem,
    refs: Iterator[_Ref],
    total: int,
    ticker: Optional[SimTicker],
    tick_every: int,
) -> SystemStats:
    """The measured loop with metrics and/or fault injection enabled.

    Simulates exactly the same references in the same order as the plain
    loop — statistics are bit-identical either way — but in chunks at
    the :func:`measure_boundaries` schedule, honouring *both* cadences
    when a heartbeat ticker and an armed ``sim_tick`` fault plan are
    active at once (they need not agree; each keeps its own cadence).
    """
    access = system.access
    heartbeat_every = ticker.every if ticker is not None and ticker.every > 0 else 0
    if ticker is not None:
        ticker.begin()
    position = 0
    for stop, fire, beat in measure_boundaries(total, heartbeat_every, tick_every):
        for addr, load, gap in islice(refs, stop - position):
            access(addr, is_load=load, gap=gap)
        position = stop
        if fire:
            faults.fire("sim_tick")
        if beat:
            assert ticker is not None
            ticker.tick(
                stop, system.stats.as_dict(), **system.heartbeat_snapshot()
            )
    stats = system.finish()
    if ticker is not None:
        ticker.finish(total, stats.as_dict())
    return stats


def simulate_policies(
    trace: Trace,
    policies: Sequence[AssistConfig],
    machine: MachineConfig = PAPER_MACHINE,
    *,
    warmup: int = 0,
    engine: str = "auto",
) -> Dict[str, SystemStats]:
    """Run the same trace through several policies (fresh system each).

    Policy names must be unique: the results are keyed by name, and a
    duplicate would silently overwrite an earlier policy's statistics.
    """
    names = [p.name for p in policies]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate policy name(s) {', '.join(map(repr, duplicates))}: "
            "results are keyed by name, so one run would silently "
            "overwrite the other (use AssistConfig.renamed())"
        )
    return {
        p.name: simulate(trace, p, machine, warmup=warmup, engine=engine)
        for p in policies
    }


def speedup(stats: SystemStats, baseline: SystemStats) -> float:
    """IPC ratio versus a baseline run of the same trace."""
    base_ipc = baseline.timing.ipc
    if base_ipc == 0:
        raise ValueError("baseline run has no cycles — was finish() called?")
    if stats.timing.ipc == 0:
        raise ValueError(
            "measured run has no instructions or no cycles (IPC is 0) — "
            "was finish() called?"
        )
    return stats.timing.ipc / base_ipc


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (the paper's 'average speedup' bars)."""
    values = list(values)
    if not values:
        raise ValueError(
            "mean of no values — an empty average usually means a figure's "
            "per-benchmark results were filtered down to nothing"
        )
    return sum(values) / len(values)


def geomean(
    values: Iterable[float], names: Optional[Sequence[str]] = None
) -> float:
    """Geometric mean, for readers who prefer it for speedup ratios.

    ``names`` optionally labels each value (benchmark names, typically):
    a non-positive value then aborts the average with an error naming
    the offending benchmark instead of leaving the caller to bisect a
    whole figure's worth of cells.
    """
    values = list(values)
    if not values:
        raise ValueError("geomean of no values")
    if names is not None and len(names) != len(values):
        raise ValueError(
            f"geomean got {len(values)} values but {len(names)} names"
        )
    product = 1.0
    for index, value in enumerate(values):
        if value <= 0:
            label = names[index] if names is not None else f"value #{index}"
            raise ValueError(
                f"geomean requires positive values: {label} contributed "
                f"{value!r} (a zero-IPC cell upstream? its run likely never "
                "called finish())"
            )
        product *= value
    return product ** (1.0 / len(values))
