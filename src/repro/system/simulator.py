"""Trace-driven simulation runner.

Thin orchestration: feed a :class:`~repro.workloads.trace.Trace` through a
:class:`~repro.system.memory_system.MemorySystem` and return the final
:class:`~repro.cache.stats.SystemStats`.  Also provides the speedup
helpers the figures are built from (IPC relative to a baseline policy on
the same trace) and the geometric/arithmetic means the paper averages
with.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro import faults
from repro.cache.stats import SystemStats
from repro.obs.heartbeat import SimTicker, sim_ticker
from repro.system.config import MachineConfig, PAPER_MACHINE
from repro.system.memory_system import MemorySystem
from repro.system.policies import AssistConfig
from repro.workloads.trace import Trace


def simulate(
    trace: Trace,
    policy: AssistConfig,
    machine: MachineConfig = PAPER_MACHINE,
    *,
    warmup: int = 0,
) -> SystemStats:
    """Run one trace through one policy on one machine.

    ``warmup`` references are simulated first to warm the caches, buffer
    and MCT; statistics and the cycle clock are then reset before the
    remaining references are measured (the stand-in for the paper's
    billion-instruction fast-forward).

    ``warmup`` must leave at least one reference to measure: a run whose
    entire trace is warmup would report all-zero statistics, and every
    derived rate (IPC, speedup, hit rates) downstream would silently
    divide by zero or read 0.0.
    """
    if not 0 <= warmup < len(trace):
        raise ValueError(
            f"warmup {warmup} must lie in [0, {len(trace)}) so at least one "
            f"of the trace's {len(trace)} references is measured"
        )
    system = MemorySystem(policy, machine)
    access = system.access
    # Convert the trace's numpy arrays to native lists once: indexing a
    # numpy array boxes a fresh scalar object per element, which costs
    # more than the cache lookup it feeds on short references.
    addresses = trace.addresses.tolist()
    is_load = trace.is_load.tolist()
    gaps = trace.gaps.tolist()
    for addr, load, gap in zip(addresses[:warmup], is_load[:warmup], gaps[:warmup]):
        access(addr, is_load=load, gap=gap)
    if warmup:
        system.reset_measurement()
    ticker = sim_ticker(
        bench=trace.name, policy=policy.name, refs=len(trace), warmup=warmup
    )
    # Consulted once per simulate(), never per reference: 0 unless a
    # fault plan arming the sim_tick site is active in this process.
    tick_every = faults.sim_tick_every()
    if ticker is None:
        if tick_every == 0:
            # Metrics disabled (the default): the measured loop is
            # exactly the warmup loop — no per-chunk bookkeeping, no
            # overhead.
            for addr, load, gap in zip(
                addresses[warmup:], is_load[warmup:], gaps[warmup:]
            ):
                access(addr, is_load=load, gap=gap)
            return system.finish()
        return _measure_with_faults(
            system, tick_every, addresses[warmup:], is_load[warmup:], gaps[warmup:]
        )
    return _measure_with_ticker(
        system, ticker, addresses[warmup:], is_load[warmup:], gaps[warmup:],
        tick_every=tick_every,
    )


def _measure_with_faults(
    system: MemorySystem,
    tick_every: int,
    addresses: List[int],
    is_load: List[bool],
    gaps: List[int],
) -> SystemStats:
    """The measured loop chunked only for mid-simulation fault injection.

    Same references, same order, bit-identical statistics as the plain
    loop; the only addition is one ``sim_tick`` site hit per
    ``tick_every`` measured references, so a plan can kill or fail the
    worker partway through a simulation.
    """
    access = system.access
    n = len(addresses)
    for start in range(0, n, tick_every):
        stop = min(start + tick_every, n)
        for addr, load, gap in zip(
            addresses[start:stop], is_load[start:stop], gaps[start:stop]
        ):
            access(addr, is_load=load, gap=gap)
        faults.fire("sim_tick")
    return system.finish()


def _measure_with_ticker(
    system: MemorySystem,
    ticker: SimTicker,
    addresses: List[int],
    is_load: List[bool],
    gaps: List[int],
    *,
    tick_every: int = 0,
) -> SystemStats:
    """The measured loop with metrics/heartbeats enabled.

    Simulates exactly the same references in the same order as the plain
    loop — statistics are bit-identical either way — but in chunks of the
    heartbeat cadence so the ticker can observe running counters between
    chunks.  With heartbeats off (cadence 0) the whole window is one
    chunk and only the final counter delta is emitted.  ``tick_every``
    non-zero additionally hits the ``sim_tick`` fault site once per
    chunk (the cadences need not agree; the site counts hits, not refs).
    """
    ticker.begin()
    access = system.access
    n = len(addresses)
    every = ticker.every if ticker.every > 0 else n
    for start in range(0, n, every):
        stop = min(start + every, n)
        for addr, load, gap in zip(
            addresses[start:stop], is_load[start:stop], gaps[start:stop]
        ):
            access(addr, is_load=load, gap=gap)
        if tick_every:
            faults.fire("sim_tick")
        if ticker.every > 0 and stop < n:
            # No heartbeat for the final chunk: sim_end immediately
            # follows with the complete snapshot.
            ticker.tick(
                stop, system.stats.as_dict(), **system.heartbeat_snapshot()
            )
    stats = system.finish()
    ticker.finish(n, stats.as_dict())
    return stats


def simulate_policies(
    trace: Trace,
    policies: Sequence[AssistConfig],
    machine: MachineConfig = PAPER_MACHINE,
    *,
    warmup: int = 0,
) -> Dict[str, SystemStats]:
    """Run the same trace through several policies (fresh system each).

    Policy names must be unique: the results are keyed by name, and a
    duplicate would silently overwrite an earlier policy's statistics.
    """
    names = [p.name for p in policies]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate policy name(s) {', '.join(map(repr, duplicates))}: "
            "results are keyed by name, so one run would silently "
            "overwrite the other (use AssistConfig.renamed())"
        )
    return {p.name: simulate(trace, p, machine, warmup=warmup) for p in policies}


def speedup(stats: SystemStats, baseline: SystemStats) -> float:
    """IPC ratio versus a baseline run of the same trace."""
    base_ipc = baseline.timing.ipc
    if base_ipc == 0:
        raise ValueError("baseline run has no cycles — was finish() called?")
    if stats.timing.ipc == 0:
        raise ValueError(
            "measured run has no instructions or no cycles (IPC is 0) — "
            "was finish() called?"
        )
    return stats.timing.ipc / base_ipc


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (the paper's 'average speedup' bars)."""
    values = list(values)
    if not values:
        raise ValueError("mean of no values")
    return sum(values) / len(values)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, for readers who prefer it for speedup ratios."""
    values = list(values)
    if not values:
        raise ValueError("geomean of no values")
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geomean requires positive values")
        product *= v
    return product ** (1.0 / len(values))
