"""Memory system built around a pseudo-associative L1 (§5.4 support).

The pseudo-associative experiments need timing like the assist-buffer
experiments, but the L1 is a :class:`~repro.cache.pseudo_assoc.PseudoAssociativeCache`
and there is no assist buffer: a secondary hit costs extra cycles and a
line swap; misses go to the shared L2/memory model.
"""

from __future__ import annotations

from itertools import islice

from repro.cache.pseudo_assoc import PacHit, PacVariant, PseudoAssociativeCache
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import SystemStats
from repro.system.config import MachineConfig, PAPER_MACHINE
from repro.system.timing import TimingModel
from repro.workloads.trace import Trace

#: Extra cycles for a hit in the rehash (secondary) location.
SECONDARY_HIT_PENALTY = 2.0


class PacMemorySystem:
    """Pseudo-associative L1 + L2 + memory, with cycle accounting."""

    def __init__(
        self,
        variant: PacVariant = PacVariant.LRU,
        machine: MachineConfig = PAPER_MACHINE,
    ) -> None:
        if machine.l1.assoc != 1:
            raise ValueError("the pseudo-associative L1 must be direct-mapped")
        self.machine = machine
        self.variant = variant
        self.l1 = PseudoAssociativeCache(machine.l1, variant)
        self.l2 = SetAssociativeCache(machine.l2, name="L2")
        self.timing = TimingModel(machine.timing)
        self.stats = SystemStats()
        self.stats.l1 = self.l1.stats
        self.stats.l2 = self.l2.stats

    def access(self, addr: int, *, is_load: bool = True, gap: int = 3) -> None:
        t = self.machine.timing
        self.timing.step(gap)
        outcome = self.l1.access(addr)
        if outcome.kind is PacHit.PRIMARY:
            return
        if outcome.kind is PacHit.SECONDARY:
            # Longer hit time plus a swap occupying the bank.
            bank = self.machine.l1.set_index(addr) % t.n_banks
            self.timing.occupy_bank(bank, t.swap_busy_cycles)
            self.timing.note_short_op(
                self.timing.clock + t.l1_latency + SECONDARY_HIT_PENALTY
            )
            return
        # Miss: fetch through L2/memory.
        l2_outcome = self.l2.access(addr)
        latency = float(t.l2_latency if l2_outcome.hit else t.memory_latency)
        if not l2_outcome.hit:
            self.stats.memory_accesses += 1
        bus_start = self.timing.acquire_bus(self.timing.clock)
        self.timing.issue_miss(latency, start=bus_start)

    def reset_measurement(self) -> None:
        self.l1.stats.reset()
        self.l1.primary_hits = 0
        self.l1.secondary_hits = 0
        self.l2.stats.reset()
        self.timing.reset_measurement()
        self.stats.reset_scalars()

    def finish(self) -> SystemStats:
        self.stats.timing = self.timing.finish()
        return self.stats


def simulate_pac(
    trace: Trace,
    variant: PacVariant = PacVariant.LRU,
    machine: MachineConfig = PAPER_MACHINE,
    *,
    warmup: int = 0,
) -> SystemStats:
    """Run a trace through a pseudo-associative memory system."""
    if not 0 <= warmup <= len(trace):
        raise ValueError(f"warmup {warmup} outside [0, {len(trace)}]")
    system = PacMemorySystem(variant, machine)
    access = system.access
    # Native lists once, as in repro.system.simulator.simulate(): indexing
    # a numpy array boxes a fresh scalar per element in the hot loop.  A
    # single shared zip iterator serves both loops — islice consumes the
    # warmup in place instead of re-copying each list into slices.
    refs = zip(trace.addresses.tolist(), trace.is_load.tolist(), trace.gaps.tolist())
    for addr, load, gap in islice(refs, warmup):
        access(addr, is_load=load, gap=gap)
    if warmup:
        system.reset_measurement()
    for addr, load, gap in refs:
        access(addr, is_load=load, gap=gap)
    return system.finish()
