"""Cycle-accounting timing model (the SMTSIM substitution).

The paper measures speedups on SMTSIM, an emulation-driven out-of-order
processor simulator.  We cannot run Alpha binaries, so performance is
estimated with a deterministic cycle-accounting model that preserves the
effects the paper's results hinge on:

* **Issue bandwidth** — instructions retire at ``width`` per cycle.
* **Bounded out-of-order tolerance** — an outstanding memory operation
  stalls retirement only once the core has slid ``rob_window``
  instructions past it; misses issued close together therefore overlap
  (memory-level parallelism), while isolated long-latency misses expose
  most of their latency.
* **Limited outstanding misses** — at most ``mshrs`` cache misses in
  flight; a further demand miss stalls until one completes, and
  *prefetches are discarded* instead of stalling (paper Section 4).
  Short assist-buffer hits ride the same retirement machinery but do not
  consume MSHRs.
* **Bank, bus and buffer contention** — the L1 is 8-way banked, the
  L1↔L2 bus is occupied per line transfer, and the assist buffer's ports
  are occupied by probes and line moves.  Victim-cache **swaps** hold both
  a cache bank and the buffer for two cycles; this occupancy is what the
  filtered victim policies of Section 5.1 win back.

The model is driven by the memory system: it reports each reference's gap
(non-memory instructions) and each event (hit level, line transfers,
swaps), and reads back the final cycle count.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.cache.stats import TimingStats
from repro.system.config import TimingConfig

# One outstanding memory operation:
# (instruction count at issue, completion time, consumes an MSHR).
_Pending = Tuple[int, float, bool]


class TimingModel:
    """Deterministic cycle accounting for one simulated run."""

    def __init__(self, config: TimingConfig) -> None:
        self.config = config
        self.clock = 0.0
        self.instructions = 0
        self._pending: Deque[_Pending] = deque()
        self._prefetches: List[float] = []  # completion times, MSHR-only
        self._mshrs_in_use = 0
        self._bus_free = 0.0
        self._bank_free: List[float] = [0.0] * config.n_banks
        self._buffer_free = 0.0
        self.stats = TimingStats()

    # ------------------------------------------------------------------
    # Instruction flow
    # ------------------------------------------------------------------
    def step(self, gap: int) -> None:
        """Advance past ``gap`` non-memory instructions plus this reference."""
        issued = gap + 1
        self.instructions += issued
        self.clock += issued / self.config.issue_rate
        self.stats.memory_refs += 1
        self._drain()

    def _pop_left(self) -> _Pending:
        entry = self._pending.popleft()
        if entry[2]:
            self._mshrs_in_use -= 1
        return entry

    def _drain(self) -> None:
        """Retire completed operations; stall on those outside the window."""
        window = self.config.rob_window
        while self._pending:
            issue_instr, completion, _ = self._pending[0]
            if completion <= self.clock:
                self._pop_left()
            elif self.instructions - issue_instr > window:
                # Retirement caught up with an incomplete operation: stall.
                self.stats.stall_cycles += completion - self.clock
                self.clock = completion
                self._pop_left()
            else:
                break

    # ------------------------------------------------------------------
    # Structural resources
    # ------------------------------------------------------------------
    def _gc_prefetches(self) -> None:
        if self._prefetches:
            now = self.clock
            self._prefetches = [c for c in self._prefetches if c > now]

    def mshr_available(self) -> bool:
        """True when another miss could be issued right now."""
        self._gc_prefetches()
        return self._mshrs_in_use + len(self._prefetches) < self.config.mshrs

    def _acquire_mshr(self) -> None:
        """Block until an MSHR frees (demand misses stall the pipeline)."""
        self._gc_prefetches()
        if self._mshrs_in_use + len(self._prefetches) < self.config.mshrs:
            return
        candidates = [c for (_, c, m) in self._pending if m] + self._prefetches
        earliest = min(candidates)
        if earliest > self.clock:
            self.stats.stall_cycles += earliest - self.clock
            self.clock = earliest
        # Remove everything that has now completed.
        still: Deque[_Pending] = deque()
        for entry in self._pending:
            if entry[1] <= self.clock:
                if entry[2]:
                    self._mshrs_in_use -= 1
            else:
                still.append(entry)
        self._pending = still
        self._gc_prefetches()

    def acquire_bus(self, when: float) -> float:
        """Reserve the L1-L2 bus at or after ``when``; returns start time."""
        start = max(when, self._bus_free)
        wait = start - when
        if wait > 0:
            self.stats.contention_cycles += wait
        self._bus_free = start + self.config.bus_transfer_cycles
        return start

    def occupy_bank(self, bank: int, cycles: int) -> float:
        """Reserve an L1 bank; returns the operation's start time."""
        start = max(self.clock, self._bank_free[bank])
        wait = start - self.clock
        if wait > 0:
            self.stats.contention_cycles += wait
        self._bank_free[bank] = start + cycles
        return start

    def occupy_buffer(self, cycles: int) -> float:
        """Reserve the assist buffer's ports; returns the start time."""
        start = max(self.clock, self._buffer_free)
        wait = start - self.clock
        if wait > 0:
            self.stats.contention_cycles += wait
        self._buffer_free = start + cycles
        return start

    # ------------------------------------------------------------------
    # Memory-operation bookkeeping
    # ------------------------------------------------------------------
    def issue_miss(self, latency: float, *, start: float | None = None) -> float:
        """Register a demand miss; returns its completion time.

        ``start`` defaults to the current clock (bus acquisition may push
        it later).  The miss occupies an MSHR until completion and stalls
        retirement per the window rule in :meth:`step`.
        """
        self._acquire_mshr()
        begin = self.clock if start is None else max(start, self.clock)
        completion = begin + latency
        self._pending.append((self.instructions, completion, True))
        self._mshrs_in_use += 1
        return completion

    def issue_prefetch(self, latency: float, *, start: float | None = None) -> float | None:
        """Register a prefetch; returns completion time or None if discarded.

        Prefetches never stall: when all MSHRs are busy the prefetch is
        dropped (the caller counts it as discarded).
        """
        if not self.mshr_available():
            return None
        begin = self.clock if start is None else max(start, self.clock)
        completion = begin + latency
        # Prefetches hold an MSHR until completion but never stall
        # retirement — nothing in the ROB waits on them.
        self._prefetches.append(completion)
        return completion

    def note_short_op(self, completion: float) -> None:
        """Track a short operation (buffer hit) through the window rule.

        Does not consume an MSHR; a couple of cycles are normally hidden
        entirely unless port contention has pushed ``completion`` far out.
        """
        if completion > self.clock:
            self._pending.append((self.instructions, completion, False))

    def reset_measurement(self) -> None:
        """Zero the clock and counters, keeping no in-flight state.

        Used for warmup: the caches and buffers stay warm, but cycle
        accounting restarts (the paper's equivalent is fast-forwarding a
        billion instructions before measuring).
        """
        self.clock = 0.0
        self.instructions = 0
        self._pending.clear()
        self._prefetches.clear()
        self._mshrs_in_use = 0
        self._bus_free = 0.0
        self._bank_free = [0.0] * self.config.n_banks
        self._buffer_free = 0.0
        self.stats = TimingStats()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def finish(self) -> TimingStats:
        """Drain outstanding operations and return final statistics."""
        while self._pending:
            _, completion, _ = self._pop_left()
            if completion > self.clock:
                self.stats.stall_cycles += completion - self.clock
                self.clock = completion
        self._prefetches.clear()  # nothing waits on in-flight prefetches
        self.stats.cycles = self.clock
        self.stats.instructions = self.instructions
        return self.stats

    @property
    def ipc(self) -> float:
        """Instructions per cycle so far (without draining)."""
        return self.instructions / self.clock if self.clock else 0.0
