"""Set-partitioned, vectorised simulation engine.

The scalar engine (:mod:`repro.system.memory_system` driven by
:func:`repro.system.simulator.simulate`) walks the trace one reference at
a time through live cache objects — flexible, but ~30 Python operations
per reference.  This module prices the same run as a handful of numpy
array passes plus a short Python replay that only touches misses, by
exploiting the same per-set independence the paper's MCT does: in a
set-indexed cache, references to different sets never interact except
through *timing* (bus, MSHRs, the retirement window).

The engine is exact, not approximate: for every eligible run its
:class:`~repro.cache.stats.SystemStats` is byte-identical to the scalar
engine's (``as_dict()`` compares equal, and serialises to the same JSON
bytes).  Eligibility is the bufferless hierarchy — see
:func:`vector_supported`; buffered policies keep cross-set
fully-associative state and stay on the scalar reference engine.  Any
power-of-two L1 associativity is eligible: direct-mapped sets take the
shift-compare fast path below, wider sets a per-segment LRU replay
built from the same Mattson machinery as the L2 pass.

Pass structure
--------------

1. **Partition** — one stable argsort of the trace by L1 set index.
   Each set's reference subsequence is then a contiguous, in-order
   segment of the sorted stream, and all per-set state (the resident
   tags, the lines' dirty bits, the MCT entry) becomes expressible as
   shifted comparisons and prefix sums within segments.  Direct-mapped
   (``assoc == 1``):

   * hit ⇔ same block as the previous reference in the segment;
   * eviction ⇔ miss that is not the segment's first reference;
   * writeback ⇔ eviction whose victim saw a write since its own fill
     (a windowed sum over a global write-flag cumsum);
   * MCT conflict ⇔ the paper's evicted-tag match, which in a
     direct-mapped set reduces to ``stored_tag(miss k) ==
     stored_tag(miss k-2)`` — at the set's k-th miss the MCT holds the
     tag installed by miss k-1's eviction, i.e. the block miss k-2
     brought in.

   Set-associative (``assoc > 1``, :func:`_l1_set_assoc_pass`): hits
   and evictions come from the shared set-LRU pass
   (:func:`repro.mrc.stack.set_lru_flags` — stack distance ≤ assoc,
   eviction once the set is full), and victim *identity* from the
   deaths-FIFO pairing: call an occurrence a **death** when it is the
   final touch of one residency of its block (its next same-segment
   occurrence re-misses, or never happens).  In set-LRU the victim of
   a segment's k-th eviction is exactly the segment's k-th death in
   position order — an eviction victim is necessarily dead, the LRU
   choice picks the oldest last-touch among residents, and a non-dead
   resident older than the oldest pending death would itself have to
   be the victim of some eviction, hence dead.  Victim writebacks and
   MCT entries then read off the victim positions with cumsums.

2. **L2** — the L1 miss stream, stably sorted by L2 set index, priced
   with the exact Mattson stack distances of :mod:`repro.mrc.stack`
   (set-LRU of associativity A hits ⇔ stack distance ≤ A).

3. **Timing replay** — the cross-set sequence (bus, MSHRs, ROB window)
   is inherently serial in trace order, so it is replayed in
   trace order over the *measured* window only — but only misses take
   the slow path; hit runs with an empty pipeline fast-forward through
   one ``np.add.accumulate`` (sequential by definition, so the float
   result is bit-identical to repeated ``+=``).

4. **Emission** — heartbeats and ``sim_tick`` fault-site hits are
   walked over the same boundary schedule the scalar measured loop
   uses (:func:`repro.system.simulator.measure_boundaries`), with
   counter snapshots read off prefix sums, so ``events.jsonl`` carries
   the same events in the same order and ``obs.validate --reconcile``
   holds for either engine.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro import faults
from repro.cache.geometry import CacheGeometry
from repro.cache.stats import SystemStats, TimingStats
from repro.mrc.stack import set_lru_flags
from repro.obs.heartbeat import sim_ticker
from repro.system.config import MachineConfig, PAPER_MACHINE, TimingConfig
from repro.system.policies import AssistConfig
from repro.system.simulator import measure_boundaries
from repro.workloads.trace import Trace


def vector_ineligibility(
    policy: AssistConfig, machine: MachineConfig
) -> Optional[str]:
    """Why this cell cannot run on the vector engine, or ``None``.

    The one remaining disqualifier is an assist buffer: it is fully
    associative *across* sets (probes, swaps, bypasses and prefetches
    couple the sets together), so its per-reference state is inherently
    sequential.  The returned reason names the enabled buffer features,
    so a caller that *demanded* the vector engine learns which knob to
    blame rather than a generic refusal.  Cache geometry never
    disqualifies: :class:`~repro.cache.geometry.CacheGeometry` already
    enforces power-of-two sizes and associativity at construction, and
    any power-of-two L1 associativity is vectorised
    (:func:`_l1_set_assoc_pass`).
    """
    if policy.buffer_entries > 0:
        features = []
        if policy.victim_fills:
            features.append("victim fills")
        if policy.prefetch:
            features.append("next-line prefetch")
        if policy.exclusion is not None:
            features.append(f"{policy.exclusion} exclusion")
        detail = " + ".join(features) if features else "a raw assist buffer"
        return (
            f"policy {policy.name!r} drives {detail} through its "
            f"{policy.buffer_entries}-entry assist buffer, whose "
            "fully-associative cross-set state must be replayed "
            "per reference"
        )
    return None


def vector_supported(policy: AssistConfig, machine: MachineConfig) -> bool:
    """True when the set-partitioned engine can reproduce this run exactly.

    The vector engine models the bufferless hierarchy at any
    power-of-two L1 associativity; buffered policies stay on the scalar
    reference engine (see :func:`vector_ineligibility` for the reason
    text).  ``AssistConfig`` validation guarantees a policy with
    ``buffer_entries == 0`` has no victim/prefetch/exclusion behaviour.
    """
    return vector_ineligibility(policy, machine) is None


# ----------------------------------------------------------------------
# Pass 1: the direct-mapped L1 + MCT, per set
# ----------------------------------------------------------------------
def _l1_direct_mapped_pass(
    blocks: "np.ndarray",
    writes: "np.ndarray",
    geometry: CacheGeometry,
    policy: AssistConfig,
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray"]:
    """Per-reference (hit, eviction, writeback, MCT-conflict) flags.

    All four arrays are in trace order and cover the full trace (warmup
    included — the caches and MCT warm up exactly as in the scalar
    engine; the caller slices the measured window afterwards).
    """
    n = int(len(blocks))
    sets = blocks & (geometry.num_sets - 1)
    order = np.argsort(sets, kind="stable")
    b = blocks[order]
    s = sets[order]
    w = writes[order]

    # Segment starts: the first reference of each set's subsequence.
    seg_start = np.empty(n, dtype=bool)
    seg_start[0] = True
    np.not_equal(s[1:], s[:-1], out=seg_start[1:])

    # Direct-mapped: a hit is a repeat of the immediately preceding
    # block in the same set; every miss fills; a miss that is not the
    # segment's first reference evicts the resident line.
    hit_s = np.zeros(n, dtype=bool)
    np.equal(b[1:], b[:-1], out=hit_s[1:])
    hit_s &= ~seg_start
    miss_s = ~hit_s
    evict_s = miss_s & ~seg_start

    # Writeback ⇔ the victim is dirty: it was filled by a write miss or
    # written by a hit afterwards.  The victim of the eviction at sorted
    # position i was filled at f = the previous miss in the segment, and
    # every position in [f, i-1] references the victim's set (segments
    # are contiguous) and the victim's block (they are hits on it, save
    # f itself) — so "dirty" is "any write flag in [f, i-1]", a windowed
    # sum over one global cumsum.
    wb_s = np.zeros(n, dtype=bool)
    if n > 1:
        w64 = w.astype(np.int64)
        wcum = np.cumsum(w64)
        positions = np.arange(n, dtype=np.int64)
        last_miss = np.maximum.accumulate(np.where(miss_s, positions, -1))
        fills = last_miss[:-1]  # victim's fill position, aligned to i = 1..n-1
        writes_before_fill = wcum[fills] - w64[fills]
        wb_s[1:] = (wcum[:-1] - writes_before_fill) > 0
        wb_s &= evict_s

    # MCT: at classify time of the set's k-th miss the table holds the
    # tag installed by miss k-1's eviction — the block miss k-2 filled —
    # so conflict ⇔ stored_tag(k) == stored_tag(k-2).  Misses of one set
    # are contiguous in the sorted stream's miss subsequence, so the
    # same-set guard is one shifted compare; k >= 2 within the set is
    # implied by it.
    miss_positions = np.flatnonzero(miss_s)
    miss_tags = b[miss_positions] >> geometry.index_bits
    tag_bits = policy.mct_tag_bits
    if tag_bits is not None and tag_bits < 63:
        # Partial tags: compare only the stored low bits.  (>= 63 bits
        # would overflow int64 and cannot truncate a non-negative int64
        # tag anyway — the mask is then a no-op, as with full tags.)
        miss_tags = miss_tags & np.int64((1 << tag_bits) - 1)
    miss_sets = s[miss_positions]
    conflict_m = np.zeros(len(miss_positions), dtype=bool)
    if len(miss_positions) > 2:
        conflict_m[2:] = (miss_sets[2:] == miss_sets[:-2]) & (
            miss_tags[2:] == miss_tags[:-2]
        )
    conflict_s = np.zeros(n, dtype=bool)
    conflict_s[miss_positions] = conflict_m

    # Scatter every flag back to trace order.
    hit = np.empty(n, dtype=bool)
    evict = np.empty(n, dtype=bool)
    wb = np.empty(n, dtype=bool)
    conflict = np.empty(n, dtype=bool)
    hit[order] = hit_s
    evict[order] = evict_s
    wb[order] = wb_s
    conflict[order] = conflict_s
    return hit, evict, wb, conflict


def _l1_set_assoc_pass(
    blocks: "np.ndarray",
    writes: "np.ndarray",
    geometry: CacheGeometry,
    policy: AssistConfig,
) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray"]:
    """The general-associativity form of :func:`_l1_direct_mapped_pass`.

    Same contract — trace-order (hit, eviction, writeback, MCT-conflict)
    flags over the full trace — for any power-of-two ``assoc``.  Hits
    and evictions come from the shared set-LRU pass; victim identities
    from the deaths-FIFO pairing (module docstring); dirty bits from
    per-block write cumsums between each residency's fill and its death.
    At ``assoc == 1`` this reproduces the direct-mapped pass exactly
    (pinned by a test), but the shift-compare fast path stays the
    dispatch choice there — it needs no stack-distance pass.
    """
    n = int(len(blocks))
    sets = blocks & (geometry.num_sets - 1)
    order = np.argsort(sets, kind="stable")
    b = blocks[order]
    s = sets[order]
    w = writes[order]

    hit_s, evict_s = set_lru_flags(b, s, geometry.assoc)
    miss_s = ~hit_s

    # Block-run order: stable sort by block id keeps each block's
    # occurrences (all in one segment — a block has one set) contiguous
    # and position-ascending, chaining every occurrence to its next.
    _, ids = np.unique(b, return_inverse=True)
    run_order = np.argsort(ids, kind="stable")
    nxt = np.full(n, n, dtype=np.int64)
    same_run = ids[run_order][1:] == ids[run_order][:-1]
    nxt[run_order[:-1]] = np.where(same_run, run_order[1:], n)
    # A death ends one residency: the block's next touch re-misses, or
    # never comes (index n hits the appended True).
    miss_ext = np.concatenate((miss_s, np.ones(1, dtype=bool)))
    dead = miss_ext[nxt]

    wb_s = np.zeros(n, dtype=bool)
    conflict_s = np.zeros(n, dtype=bool)
    evict_pos = np.flatnonzero(evict_s)
    if len(evict_pos):
        positions = np.arange(n, dtype=np.int64)
        seg_start = np.empty(n, dtype=bool)
        seg_start[0] = True
        np.not_equal(s[1:], s[:-1], out=seg_start[1:])
        seg_first = np.maximum.accumulate(np.where(seg_start, positions, 0))

        evict64 = evict_s.astype(np.int64)
        dead64 = dead.astype(np.int64)
        evict_before = np.cumsum(evict64) - evict64
        dead_before = np.cumsum(dead64) - dead64
        death_idx = np.flatnonzero(dead)
        # k-th eviction of a segment evicts the segment's k-th death;
        # segments are contiguous, so "the segment's k-th death" is a
        # global death index offset by the deaths before the segment.
        rank = evict_before[evict_pos] - evict_before[seg_first[evict_pos]]
        victim_pos = death_idx[dead_before[seg_first[evict_pos]] + rank]

        # Victim dirty ⇔ a write touched it between its residency's fill
        # and its death.  In block-run order every residency starts with
        # a miss (runs open with a cold miss), so the fill-anchor
        # accumulate below can never leak across a run boundary.
        w_run = w[run_order].astype(np.int64)
        m_run = miss_s[run_order]
        wcum_run = np.cumsum(w_run)
        anchor = np.maximum.accumulate(
            np.where(m_run, np.arange(n, dtype=np.int64), -1)
        )
        dirty_run = (wcum_run - wcum_run[anchor] + w_run[anchor]) > 0
        dirty_at = np.empty(n, dtype=bool)
        dirty_at[run_order] = dirty_run
        wb_s[evict_pos] = dirty_at[victim_pos]

        # MCT: at classify time of a miss the set's entry holds the
        # (masked) tag of the set's most recent earlier eviction — the
        # victim of global eviction number evict_before[i] (contiguity
        # again), provided that eviction lies in this segment.
        victim_tags = b[victim_pos] >> geometry.index_bits
        miss_pos = np.flatnonzero(miss_s)
        probe_tags = b[miss_pos] >> geometry.index_bits
        tag_bits = policy.mct_tag_bits
        if tag_bits is not None and tag_bits < 63:
            # Same partial-tag rule as the direct-mapped pass: >= 63
            # bits cannot truncate a non-negative int64 tag.
            mask = np.int64((1 << tag_bits) - 1)
            victim_tags = victim_tags & mask
            probe_tags = probe_tags & mask
        prior = evict_before[miss_pos]
        has_entry = prior - evict_before[seg_first[miss_pos]] > 0
        match = np.zeros(len(miss_pos), dtype=bool)
        match[has_entry] = (
            victim_tags[prior[has_entry] - 1] == probe_tags[has_entry]
        )
        conflict_s[miss_pos[match]] = True

    hit = np.empty(n, dtype=bool)
    evict = np.empty(n, dtype=bool)
    wb = np.empty(n, dtype=bool)
    conflict = np.empty(n, dtype=bool)
    hit[order] = hit_s
    evict[order] = evict_s
    wb[order] = wb_s
    conflict[order] = conflict_s
    return hit, evict, wb, conflict


# ----------------------------------------------------------------------
# Pass 2: the set-associative L2 over the L1 miss stream
# ----------------------------------------------------------------------
def _l2_pass(
    blocks: "np.ndarray", l1_miss: "np.ndarray", geometry: CacheGeometry
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Per-reference (L2 hit, L2 eviction) flags, in trace order.

    Both arrays are full-trace sized but only ever True at L1-miss
    positions (the only references that reach the L2).  The set-LRU
    algebra lives in :func:`repro.mrc.stack.set_lru_flags`; this
    wrapper sorts the miss stream by L2 set and scatters the flags back
    through both permutations (sort order, then miss positions).
    """
    n = int(len(blocks))
    stream = np.flatnonzero(l1_miss)
    hit_at = np.zeros(n, dtype=bool)
    evict_at = np.zeros(n, dtype=bool)
    k = int(len(stream))
    if k == 0:
        return hit_at, evict_at
    mb = blocks[stream]
    sets = mb & (geometry.num_sets - 1)
    order = np.argsort(sets, kind="stable")
    hit_s, evict_s = set_lru_flags(mb[order], sets[order], geometry.assoc)

    hit_m = np.empty(k, dtype=bool)
    evict_m = np.empty(k, dtype=bool)
    hit_m[order] = hit_s
    evict_m[order] = evict_s
    hit_at[stream] = hit_m
    evict_at[stream] = evict_m
    return hit_at, evict_at


# ----------------------------------------------------------------------
# Pass 3: cross-set timing replay (measured window only)
# ----------------------------------------------------------------------
def _replay_timing(
    gaps: "np.ndarray",
    l1_miss: "np.ndarray",
    l2_hit: "np.ndarray",
    config: TimingConfig,
) -> TimingStats:
    """Replay :class:`~repro.system.timing.TimingModel` over the window.

    Bit-identical to driving the scalar model from a freshly reset
    measurement: same issue clock, same bus-then-MSHR acquisition order
    on misses, same ROB-window stall rule, same FIFO drain at the end.
    Only misses and references with operations in flight take the
    per-reference Python path; hit runs over an empty pipeline are
    fast-forwarded with one sequential ``np.add.accumulate`` (whose
    left-to-right definition reproduces repeated ``+=`` exactly —
    a plain ``sum`` would not).
    """
    m = int(len(gaps))
    issued = gaps.astype(np.int64) + 1
    incs_arr = issued.astype(np.float64) / config.issue_rate
    incs: List[float] = incs_arr.tolist()
    issued_list: List[int] = issued.tolist()
    issued_cum = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(issued))
    )
    latency = np.where(
        l2_hit, float(config.l2_latency), float(config.memory_latency)
    )
    latency_list: List[float] = latency.tolist()
    miss_list: List[bool] = l1_miss.tolist()
    # next_miss[i]: first miss position >= i (m when none) — lets the
    # empty-pipeline fast path jump whole hit runs at once.
    miss_idx = np.flatnonzero(l1_miss)
    next_miss = np.full(m + 1, m, dtype=np.int64)
    if len(miss_idx):
        ranks = np.searchsorted(miss_idx, np.arange(m), side="left")
        found = ranks < len(miss_idx)
        next_miss[:m][found] = miss_idx[ranks[found]]
    next_miss_list: List[int] = next_miss.tolist()

    stats = TimingStats()
    clock = 0.0
    instructions = 0
    stall = 0.0
    contention = 0.0
    bus_free = 0.0
    pending: Deque[Tuple[int, float]] = deque()
    window = config.rob_window
    mshrs = config.mshrs
    bus_cycles = config.bus_transfer_cycles
    i = 0
    while i < m:
        if not pending:
            nxt = next_miss_list[i]
            if nxt > i:
                # Hit run with nothing in flight: the scalar model only
                # advances the clock here, one += per reference.
                if nxt - i >= 32:
                    seg = np.concatenate(([clock], incs_arr[i:nxt]))
                    clock = float(np.add.accumulate(seg)[-1])
                else:
                    for j in range(i, nxt):
                        clock += incs[j]
                instructions += int(issued_cum[nxt] - issued_cum[i])
                i = nxt
                continue
        # step(): advance past the gap plus this reference, then retire.
        clock += incs[i]
        instructions += issued_list[i]
        while pending:
            issue_instr, completion = pending[0]
            if completion <= clock:
                pending.popleft()
            elif instructions - issue_instr > window:
                stall += completion - clock
                clock = completion
                pending.popleft()
            else:
                break
        if miss_list[i]:
            # _fetch_line: the bus is acquired at the current clock ...
            start = bus_free if bus_free > clock else clock
            wait = start - clock
            if wait > 0:
                contention += wait
            bus_free = start + bus_cycles
            # ... then issue_miss acquires an MSHR (stalling to the
            # earliest completion when all are busy, then sweeping every
            # completed operation) before the transfer begins.
            if len(pending) >= mshrs:
                earliest = min(entry[1] for entry in pending)
                if earliest > clock:
                    stall += earliest - clock
                    clock = earliest
                still: Deque[Tuple[int, float]] = deque()
                for entry in pending:
                    if entry[1] > clock:
                        still.append(entry)
                pending = still
            begin = start if start > clock else clock
            pending.append((instructions, begin + latency_list[i]))
        i += 1
    # finish(): FIFO-drain whatever is still in flight.
    while pending:
        _, completion = pending.popleft()
        if completion > clock:
            stall += completion - clock
            clock = completion
    stats.cycles = clock
    stats.instructions = instructions
    stats.memory_refs = m
    stats.stall_cycles = stall
    stats.contention_cycles = contention
    return stats


# ----------------------------------------------------------------------
# Pass 4: counter assembly + emission walk
# ----------------------------------------------------------------------
def _counter_prefixes(masks: Dict[str, "np.ndarray"]) -> Dict[str, "np.ndarray"]:
    """``pre[name][p]`` = count of True among the first ``p`` refs."""
    return {
        name: np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(mask.astype(np.int64)))
        )
        for name, mask in masks.items()
    }


def _stats_at(prefixes: Dict[str, "np.ndarray"], p: int) -> SystemStats:
    """The scalar engine's live counters after ``p`` measured refs.

    Timing and buffer stats stay zero: the scalar ``MemorySystem`` only
    publishes timing at ``finish()`` (mid-run heartbeat payloads carry
    the default-constructed zeros), and the vector engine only runs
    bufferless policies.
    """
    stats = SystemStats()
    l1 = stats.l1
    l1.accesses = p
    l1.hits = int(prefixes["l1_hit"][p])
    l1.misses = p - l1.hits
    l1.fills = l1.misses
    l1.evictions = int(prefixes["l1_evict"][p])
    l1.writebacks = int(prefixes["l1_wb"][p])
    l2 = stats.l2
    l2.accesses = l1.misses
    l2.hits = int(prefixes["l2_hit"][p])
    l2.misses = l2.accesses - l2.hits
    l2.fills = l2.misses
    l2.evictions = int(prefixes["l2_evict"][p])
    stats.memory_accesses = l2.misses
    stats.conflict_misses_predicted = int(prefixes["conflict"][p])
    stats.capacity_misses_predicted = (
        l1.misses - stats.conflict_misses_predicted
    )
    return stats


def _heartbeat_fields(stats: SystemStats) -> Dict[str, float]:
    """Mirror of :meth:`MemorySystem.heartbeat_snapshot`, same formulas."""
    classified = (
        stats.conflict_misses_predicted + stats.capacity_misses_predicted
    )
    return {
        "l1_hit_rate": round(stats.l1.hit_rate, 4),
        "buffer_hit_rate": round(stats.buffer.hit_rate_of_probes, 4),
        "total_hit_rate": round(stats.total_hit_rate, 4),
        "mct_conflict_share": round(
            100.0 * stats.conflict_misses_predicted / classified, 4
        )
        if classified
        else 0.0,
    }


def simulate_vector(
    trace: Trace,
    policy: AssistConfig,
    machine: MachineConfig = PAPER_MACHINE,
    *,
    warmup: int = 0,
) -> SystemStats:
    """Vectorised run of one trace: byte-identical to the scalar engine.

    Callers normally go through :func:`repro.system.simulator.simulate`
    (whose ``engine="auto"`` falls back to the scalar engine for
    ineligible cells); this function requires an eligible policy and
    raises with the :func:`vector_ineligibility` reason otherwise.
    """
    n = len(trace)
    if not 0 <= warmup < n:
        raise ValueError(
            f"warmup {warmup} must lie in [0, {n}) so at least one "
            f"of the trace's {n} references is measured"
        )
    reason = vector_ineligibility(policy, machine)
    if reason is not None:
        raise ValueError(
            f"not vector-eligible: {reason} — use the scalar engine"
        )
    geometry = machine.l1
    blocks = trace.addresses >> geometry.offset_bits
    writes = np.logical_not(trace.is_load)

    l1_pass = (
        _l1_direct_mapped_pass if geometry.assoc == 1 else _l1_set_assoc_pass
    )
    l1_hit, l1_evict, l1_wb, conflict = l1_pass(
        blocks, writes, geometry, policy
    )
    l1_miss = np.logical_not(l1_hit)
    l2_hit_at, l2_evict_at = _l2_pass(blocks, l1_miss, machine.l2)

    m = n - warmup
    masks: Dict[str, "np.ndarray"] = {
        "l1_hit": l1_hit[warmup:],
        "l1_evict": l1_evict[warmup:],
        "l1_wb": l1_wb[warmup:],
        "l2_hit": l2_hit_at[warmup:],
        "l2_evict": l2_evict_at[warmup:],
        "conflict": conflict[warmup:],
    }
    timing = _replay_timing(
        trace.gaps[warmup:], l1_miss[warmup:], l2_hit_at[warmup:],
        machine.timing,
    )

    ticker = sim_ticker(
        bench=trace.name, policy=policy.name, refs=n, warmup=warmup
    )
    tick_every = faults.sim_tick_every()
    heartbeat_every = (
        ticker.every if ticker is not None and ticker.every > 0 else 0
    )

    prefixes = _counter_prefixes(masks)
    stats = _stats_at(prefixes, m)
    stats.timing = timing

    # Walk the same boundary schedule as the scalar measured loop so the
    # event stream (and any armed sim_tick fault — kills included) is
    # indistinguishable from a scalar run.
    if ticker is not None:
        ticker.begin()
    if heartbeat_every or tick_every:
        for stop, fire, beat in measure_boundaries(
            m, heartbeat_every, tick_every
        ):
            if fire:
                faults.fire("sim_tick")
            if beat:
                assert ticker is not None
                snapshot = _stats_at(prefixes, stop)
                ticker.tick(
                    stop, snapshot.as_dict(), **_heartbeat_fields(snapshot)
                )
    if ticker is not None:
        ticker.finish(m, stats.as_dict())

    from repro.harness.invariants import maybe_check_system

    maybe_check_system(stats, issue_rate=machine.timing.issue_rate)
    return stats
