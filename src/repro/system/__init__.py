"""The simulated machine: configuration, timing, memory system, runner."""

from repro.system.config import (
    MachineConfig,
    PAPER_MACHINE,
    SLOW_BUS_MACHINE,
    TimingConfig,
)
from repro.system.memory_system import MemorySystem
from repro.system.multithreaded import (
    SharedRunResult,
    SharingPenalty,
    ThreadStats,
    sharing_penalties,
    simulate_shared,
)
from repro.system.pac_system import PacMemorySystem, simulate_pac
from repro.system.policies import BASELINE, AssistConfig, ExclusionMode
from repro.system.simulator import (
    ENGINE_ENV_VAR,
    geomean,
    mean,
    simulate,
    simulate_policies,
    speedup,
)
from repro.system.timing import TimingModel
from repro.system.vector import simulate_vector, vector_supported

__all__ = [
    "AssistConfig",
    "BASELINE",
    "ENGINE_ENV_VAR",
    "ExclusionMode",
    "MachineConfig",
    "MemorySystem",
    "PAPER_MACHINE",
    "PacMemorySystem",
    "SLOW_BUS_MACHINE",
    "SharedRunResult",
    "SharingPenalty",
    "ThreadStats",
    "TimingConfig",
    "TimingModel",
    "geomean",
    "mean",
    "sharing_penalties",
    "simulate",
    "simulate_pac",
    "simulate_policies",
    "simulate_shared",
    "simulate_vector",
    "speedup",
    "vector_supported",
]
