"""The simulated memory system: L1 + MCT + assist buffer + L2 + memory.

This is the engine behind every Section-5 experiment.  One
:class:`MemorySystem` wires together:

* the L1 data cache (16KB direct-mapped by default),
* the Miss Classification Table attached to its eviction stream,
* one :class:`~repro.buffers.assist.AssistBuffer` playing victim /
  prefetch / bypass roles as the :class:`~repro.system.policies.AssistConfig`
  dictates,
* the L2 cache and main-memory latencies, with bus/bank/port contention
  through :class:`~repro.system.timing.TimingModel`.

Per-access flow (paper Section 3-5):

1. L1 lookup; a hit is one cycle and we are done.
2. On an L1 miss the MCT classifies the miss (conflict vs capacity) —
   off the critical path, used only after the assist structures answer.
3. The assist buffer is probed (+1 cycle).  A hit is handled per the
   entry's role: victim entries may swap back into L1 (or not, under the
   no-swap filter), prefetch entries move into L1 and trigger the next
   prefetch, exclusion entries serve the data and stay put.
4. A full miss goes to L2 (and perhaps memory).  The exclusion policy may
   *bypass* L1, placing the line in the buffer instead; otherwise the line
   fills L1 and the displaced victim may enter the buffer under the
   victim-fill filter.  Finally the next line may be prefetched, subject
   to the prefetch filter and MSHR availability.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.buffers.assist import AssistBuffer, BufferEntry
from repro.buffers.history import MissHistoryTable
from repro.buffers.mat import MemoryAccessTable
from repro.cache.line import BufferRole, EvictedLine
from repro.cache.set_assoc import SetAssociativeCache
from repro.cache.stats import SystemStats
from repro.core.classification import MissClass
from repro.core.mct import MissClassificationTable
from repro.system.config import MachineConfig, PAPER_MACHINE
from repro.system.policies import AssistConfig, ExclusionMode
from repro.system.timing import TimingModel


class MemorySystem:
    """A complete, policy-configurable data-memory hierarchy."""

    def __init__(
        self,
        policy: AssistConfig,
        machine: MachineConfig = PAPER_MACHINE,
    ) -> None:
        self.policy = policy
        self.machine = machine
        self.stats = SystemStats()

        self.mct = MissClassificationTable(machine.l1, tag_bits=policy.mct_tag_bits)
        self.l1 = SetAssociativeCache(machine.l1, name="L1D", on_evict=self.mct.on_evict)
        self.l2 = SetAssociativeCache(machine.l2, name="L2")
        self.timing = TimingModel(machine.timing)
        # Share the caches' own counter objects so nothing is counted twice.
        self.stats.l1 = self.l1.stats
        self.stats.l2 = self.l2.stats

        self.buffer: Optional[AssistBuffer] = None
        if policy.uses_buffer:
            self.buffer = AssistBuffer(
                entries=policy.buffer_entries, on_evict=self._on_buffer_evict
            )
            self.stats.buffer = self.buffer.stats

        self.mat: Optional[MemoryAccessTable] = None
        self.history: Optional[MissHistoryTable] = None
        if policy.exclusion is ExclusionMode.MAT:
            self.mat = MemoryAccessTable()
        elif policy.exclusion is ExclusionMode.CAPACITY_HISTORY:
            self.history = MissHistoryTable(MissClass.CAPACITY)
        elif policy.exclusion is ExclusionMode.CONFLICT_HISTORY:
            self.history = MissHistoryTable(MissClass.CONFLICT)

        # Bound-method fast paths for :meth:`access`, the per-reference
        # hot loop: none of these collaborators is ever reassigned, so the
        # attribute chains are resolved once here instead of per access.
        self._timing_step = self.timing.step
        self._l1_lookup = self.l1.lookup
        self._mct_classify = self.mct.classify
        self._l1_block_number = self.machine.l1.block_number
        self._buffer_probe = self.buffer.probe if self.buffer is not None else None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def access(self, addr: int, *, is_load: bool = True, gap: int = 3) -> None:
        """Simulate one data reference."""
        self._timing_step(gap)
        if self.mat is not None:
            self.mat.record_access(addr)

        outcome = self._l1_lookup(addr, write=not is_load)
        if outcome.hit:
            return

        # Classify the miss before this miss's own fill perturbs the MCT.
        miss_class = self._mct_classify(addr)
        is_conflict = miss_class.is_conflict
        stats = self.stats
        if is_conflict:
            stats.conflict_misses_predicted += 1
        else:
            stats.capacity_misses_predicted += 1
        if self.history is not None:
            self.history.record_miss(addr, miss_class)

        probe = self._buffer_probe
        if probe is not None:
            entry = probe(self._l1_block_number(addr))
            if entry is not None:
                self._buffer_hit(addr, entry, is_conflict, is_load)
                return

        self._full_miss(addr, is_conflict, is_load)

    def reset_measurement(self) -> None:
        """Start measuring from here: keep all cache/buffer/MCT contents
        warm but zero every statistic and the cycle clock.

        This mirrors the paper's methodology of skipping the first billion
        instructions before measuring: short synthetic traces would
        otherwise be dominated by the compulsory cold-start transient.
        """
        self.l1.stats.reset()
        self.l2.stats.reset()
        if self.buffer is not None:
            self.buffer.stats.reset()
            # The clock restarts at zero: in-flight prefetches from the
            # warmup period count as long since arrived.
            for entry in self.buffer._entries.values():
                entry.ready_time = 0.0
        self.timing.reset_measurement()
        # fields()-driven so a scalar counter added to SystemStats later
        # is reset here automatically instead of leaking warmup counts.
        self.stats.reset_scalars()

    def heartbeat_snapshot(self) -> Dict[str, float]:
        """Running-rate fields for observability heartbeats.

        Cheap derived rates over the live counters — called once per
        heartbeat interval by :func:`repro.system.simulator.simulate`,
        never from the per-reference path.  ``mct_conflict_share`` is the
        percentage of classified misses the MCT has called conflict so
        far (the online stand-in for accuracy, which needs the oracle of
        :mod:`repro.core.accuracy`).
        """
        stats = self.stats
        classified = stats.conflict_misses_predicted + stats.capacity_misses_predicted
        return {
            "l1_hit_rate": round(stats.l1.hit_rate, 4),
            "buffer_hit_rate": round(stats.buffer.hit_rate_of_probes, 4),
            "total_hit_rate": round(stats.total_hit_rate, 4),
            "mct_conflict_share": round(
                100.0 * stats.conflict_misses_predicted / classified, 4
            )
            if classified
            else 0.0,
        }

    def finish(self) -> SystemStats:
        """Drain the pipeline and collect final statistics.

        Prefetches still sitting unconsumed in the buffer are left
        uncounted, matching the paper's definition of a wasted prefetch
        (lost from the buffer before use) — the run simply ended.

        When invariant checking is enabled (the experiment harness turns
        it on in its workers; see :mod:`repro.harness.invariants`), the
        final statistics are validated against the conservation laws
        before being returned.
        """
        self.stats.timing = self.timing.finish()
        from repro.harness.invariants import maybe_check_system

        maybe_check_system(
            self.stats, issue_rate=self.machine.timing.issue_rate
        )
        return self.stats

    # ------------------------------------------------------------------
    # Buffer-hit handling (per role)
    # ------------------------------------------------------------------
    def _buffer_hit(
        self, addr: int, entry: BufferEntry, is_conflict: bool, is_load: bool
    ) -> None:
        assert self.buffer is not None
        timing = self.timing
        stats = self.stats.buffer
        stats.hits += 1

        start = timing.occupy_buffer(self.machine.timing.buffer_busy_cycles)
        data_ready = max(start + self.machine.timing.buffer_latency, entry.ready_time)
        timing.note_short_op(data_ready)
        if not is_load:
            entry.dirty = True

        if entry.role is BufferRole.VICTIM:
            stats.victim_hits += 1
            self._victim_hit(addr, entry, is_conflict)
        elif entry.role is BufferRole.PREFETCH:
            stats.prefetch_hits += 1
            if not entry.used:
                entry.used = True
                stats.prefetches_used += 1
            self._promote_to_l1(addr, entry, is_conflict)
            self._maybe_prefetch(addr, is_conflict, evicted_bit=False, on_hit=True)
        else:  # EXCLUSION: the line lives in the buffer until bumped out.
            stats.exclusion_hits += 1
            self.buffer.touch(entry.block)

    def _victim_hit(self, addr: int, entry: BufferEntry, is_conflict: bool) -> None:
        """A hit on a victim-cached line: swap back into L1, or not."""
        assert self.buffer is not None
        cfg = self.policy
        do_swap = cfg.victim_swap
        if do_swap and cfg.victim_no_swap_filter is not None:
            preview = self.l1.victim_preview(addr)
            evicted_bit = preview.conflict_bit if preview is not None else False
            if cfg.victim_no_swap_filter.matches(
                new_is_conflict=is_conflict, evicted_conflict_bit=evicted_bit
            ):
                do_swap = False
        if not do_swap:
            # Serve the data from the buffer; refresh its recency (the
            # LRU organisation the paper adopts once swaps are filtered).
            self.buffer.touch(entry.block)
            return

        # Swap: the buffer line moves into L1 and the displaced L1 line
        # becomes the newest buffer entry.  Both structures are busy for
        # two cycles (this cost is what "filter swaps" eliminates).
        self.stats.buffer.swaps += 1
        t = self.machine.timing
        bank = self.machine.l1.set_index(addr) % t.n_banks
        self.timing.occupy_bank(bank, t.swap_busy_cycles)
        self.timing.occupy_buffer(t.swap_busy_cycles)

        self.buffer.remove(entry.block)
        evicted = self.l1.fill(
            addr, conflict_bit=entry.conflict_bit, dirty=entry.dirty
        ).evicted
        if evicted is not None:
            self._insert_buffer_line(addr, evicted, BufferRole.VICTIM)

    def _promote_to_l1(self, addr: int, entry: BufferEntry, is_conflict: bool) -> None:
        """Move a prefetched line into L1 (paper §5.2: on a prefetch-buffer
        hit "the line is moved into the cache")."""
        assert self.buffer is not None
        self.buffer.remove(entry.block)
        if self.l1.probe(addr):  # pragma: no cover - defensive; cannot both miss and hold
            return
        evicted = self.l1.fill(addr, conflict_bit=is_conflict, dirty=entry.dirty).evicted
        self._maybe_victim_fill(addr, evicted, is_conflict)

    # ------------------------------------------------------------------
    # Full-miss handling
    # ------------------------------------------------------------------
    def _full_miss(self, addr: int, is_conflict: bool, is_load: bool) -> None:
        latency, bus_start = self._fetch_line(addr)
        self.timing.issue_miss(latency, start=bus_start)

        if self._should_bypass(addr, is_conflict):
            self._bypass_into_buffer(addr, is_conflict, is_load)
            evicted_bit = False
            evicted = None
        else:
            evicted = self.l1.fill(
                addr, conflict_bit=is_conflict, dirty=not is_load
            ).evicted
            evicted_bit = evicted.conflict_bit if evicted is not None else False
            self._maybe_victim_fill(addr, evicted, is_conflict)

        self._maybe_prefetch(addr, is_conflict, evicted_bit=evicted_bit, on_hit=False)

    def _fetch_line(self, addr: int) -> tuple[float, float]:
        """Bring a line from L2/memory: returns (latency, transfer start)."""
        t = self.machine.timing
        l2_outcome = self.l2.access(addr)
        if l2_outcome.hit:
            latency = float(t.l2_latency)
        else:
            self.stats.memory_accesses += 1
            latency = float(t.memory_latency)
        bus_start = self.timing.acquire_bus(self.timing.clock)
        return latency, bus_start

    def _should_bypass(self, addr: int, is_conflict: bool) -> bool:
        mode = self.policy.exclusion
        if mode is None:
            return False
        if mode is ExclusionMode.CAPACITY:
            return not is_conflict
        if mode is ExclusionMode.CONFLICT:
            return is_conflict
        if mode is ExclusionMode.MAT:
            assert self.mat is not None
            preview = self.l1.victim_preview(addr)
            victim_addr = None
            if preview is not None:
                victim_addr = self.machine.l1.compose(
                    preview.tag, self.machine.l1.set_index(addr)
                )
            return self.mat.should_bypass(addr, victim_addr)
        assert self.history is not None
        return self.history.is_flagged(addr)

    def _bypass_into_buffer(self, addr: int, is_conflict: bool, is_load: bool) -> None:
        """§5.3: route an excluded line into the bypass buffer, and install
        its tag in the MCT so a future miss to it can classify as conflict."""
        assert self.buffer is not None
        block = self.machine.l1.block_number(addr)
        self.buffer.insert(
            BufferEntry(
                block=block,
                role=BufferRole.EXCLUSION,
                conflict_bit=is_conflict,
                dirty=not is_load,
            )
        )
        self.stats.buffer.fills += 1
        self.timing.occupy_buffer(self.machine.timing.swap_busy_cycles)
        if self.policy.mct_install_on_bypass:
            self.mct.install(addr)

    def _maybe_victim_fill(
        self, addr: int, evicted: Optional[EvictedLine], is_conflict: bool
    ) -> None:
        if not self.policy.victim_fills or evicted is None or self.buffer is None:
            return
        filt = self.policy.victim_fill_filter
        if filt is not None and not filt.matches(
            new_is_conflict=is_conflict, evicted_conflict_bit=evicted.conflict_bit
        ):
            return
        self._insert_buffer_line(addr, evicted, BufferRole.VICTIM)
        self.stats.buffer.fills += 1
        self.timing.occupy_buffer(self.machine.timing.swap_busy_cycles)

    def _insert_buffer_line(
        self, addr: int, evicted: EvictedLine, role: BufferRole
    ) -> None:
        assert self.buffer is not None
        geo = self.machine.l1
        victim_addr = geo.compose(evicted.tag, geo.set_index(addr))
        self.buffer.insert(
            BufferEntry(
                block=geo.block_number(victim_addr),
                role=role,
                conflict_bit=evicted.conflict_bit,
                dirty=evicted.dirty,
            )
        )

    # ------------------------------------------------------------------
    # Prefetching
    # ------------------------------------------------------------------
    def _maybe_prefetch(
        self, addr: int, is_conflict: bool, *, evicted_bit: bool, on_hit: bool
    ) -> None:
        """Next-line prefetch (§5.2), subject to the conflict filter.

        On prefetch-buffer hits the next line is prefetched
        unconditionally ("the line is moved into the cache and the next
        line is prefetched"); on ordinary misses the configured filter may
        suppress it.
        """
        if not self.policy.prefetch or self.buffer is None:
            return
        if not on_hit:
            filt = self.policy.prefetch_filter
            if filt is not None and filt.matches(
                new_is_conflict=is_conflict, evicted_conflict_bit=evicted_bit
            ):
                return
        nl = self.machine.l1.next_line(addr)
        block = self.machine.l1.block_number(nl)
        if self.l1.probe(nl) or block in self.buffer:
            return
        if not self.timing.mshr_available():
            self.stats.buffer.prefetches_discarded += 1
            return
        latency, bus_start = self._fetch_line(nl)
        completion = self.timing.issue_prefetch(latency, start=bus_start)
        if completion is None:  # pragma: no cover - raced the check above
            self.stats.buffer.prefetches_discarded += 1
            return
        self.buffer.insert(
            BufferEntry(
                block=block,
                role=BufferRole.PREFETCH,
                conflict_bit=is_conflict,
                ready_time=completion,
            )
        )
        self.stats.buffer.prefetches_issued += 1

    # ------------------------------------------------------------------
    def _on_buffer_evict(self, entry: BufferEntry) -> None:
        if entry.role is BufferRole.PREFETCH and not entry.used:
            self.stats.buffer.prefetches_wasted += 1
