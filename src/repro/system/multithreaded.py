"""Shared-cache multithreading (§5.6 "Multithreaded architectures").

"Multithreaded processors, or other architectures that allow multiple
threads to dynamically share a cache, are particularly prone to high
levels of conflict, even with associative caches.  In addition, this
problem cannot be solved with software techniques because the conflicts
are produced by competition with other threads.  All of the techniques
described in this paper would apply to an even greater extent with
multithreaded caches."

This module runs several workload "threads" through ONE shared
:class:`~repro.system.memory_system.MemorySystem` (fine-grain round-robin
issue, SMT-style) and reports per-thread statistics next to the shared
totals, plus the *sharing penalty* — each thread's shared-mode miss rate
against its solo run on the same machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Sequence

from repro.cache.stats import SystemStats
from repro.system.config import MachineConfig, PAPER_MACHINE
from repro.system.memory_system import MemorySystem
from repro.system.policies import AssistConfig, BASELINE
from repro.system.simulator import simulate
from repro.workloads.trace import Trace


@dataclass
class ThreadStats:
    """Per-thread view of a shared-cache run."""

    name: str
    accesses: int = 0
    l1_hits: int = 0
    buffer_hits: int = 0
    misses: int = 0                 # L1 misses (buffer hits included)
    conflict_misses: int = 0        # MCT-classified conflicts

    @property
    def miss_rate(self) -> float:
        """L1 misses not covered by the assist buffer, % of accesses."""
        uncovered = self.misses - self.buffer_hits
        return 100.0 * uncovered / self.accesses if self.accesses else 0.0

    @property
    def conflict_rate(self) -> float:
        """MCT conflict misses as a percentage of this thread's accesses."""
        return 100.0 * self.conflict_misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero every counter (the name survives).

        Iterates :func:`~dataclasses.fields` so a counter added later is
        reset too, instead of silently leaking warmup-period counts into
        the measured window.
        """
        for f in fields(self):
            if isinstance(getattr(self, f.name), int):
                setattr(self, f.name, 0)


@dataclass
class SharedRunResult:
    """Everything one shared run produces."""

    threads: List[ThreadStats]
    combined: SystemStats

    def thread(self, name: str) -> ThreadStats:
        for t in self.threads:
            if t.name == name:
                return t
        raise KeyError(f"no thread named {name!r}")

    @property
    def total_conflict_rate(self) -> float:
        acc = sum(t.accesses for t in self.threads)
        conf = sum(t.conflict_misses for t in self.threads)
        return 100.0 * conf / acc if acc else 0.0


def simulate_shared(
    traces: Sequence[Trace],
    policy: AssistConfig = BASELINE,
    machine: MachineConfig = PAPER_MACHINE,
    *,
    warmup_fraction: float = 0.0,
) -> SharedRunResult:
    """Run several threads round-robin through one shared memory system.

    Round-robin at reference granularity is SMT's fine-grain interleaving
    — the worst case for cross-thread cache conflicts.  Thread traces are
    truncated to the shortest; ``warmup_fraction`` of the interleaved
    stream warms the system before measurement starts.
    """
    if not traces:
        raise ValueError("need at least one thread")
    if len({t.name for t in traces}) != len(traces):
        raise ValueError("thread (trace) names must be unique")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")

    n = min(len(t) for t in traces)
    k = len(traces)
    system = MemorySystem(policy, machine)
    threads = [ThreadStats(name=t.name) for t in traces]
    warm_until = int(n * k * warmup_fraction)

    # Hoisted once, as in simulate(): numpy indexing boxes a fresh scalar
    # per reference, and the stats attribute chains would otherwise be
    # re-resolved on every access (RPR040).  The stats *objects* are
    # stable across the run — only their counters mutate — so locals are
    # safe to cache outside the loop.
    access = system.access
    per_thread = [
        (t.addresses.tolist(), t.is_load.tolist(), t.gaps.tolist()) for t in traces
    ]
    stats = system.stats
    l1_stats = stats.l1
    buffer_stats = stats.buffer

    step = 0
    for i in range(n):
        for tid in range(k):
            if step == warm_until and warm_until:
                system.reset_measurement()
                for t in threads:
                    t.reset()
            step += 1
            addresses, is_load, gaps = per_thread[tid]
            before_hits = l1_stats.hits
            before_buffer = buffer_stats.hits
            before_conf = stats.conflict_misses_predicted
            access(addresses[i], is_load=is_load[i], gap=gaps[i])
            t = threads[tid]
            t.accesses += 1
            if l1_stats.hits > before_hits:
                t.l1_hits += 1
            else:
                t.misses += 1
                if buffer_stats.hits > before_buffer:
                    t.buffer_hits += 1
                if stats.conflict_misses_predicted > before_conf:
                    t.conflict_misses += 1

    return SharedRunResult(threads=threads, combined=system.finish())


@dataclass(frozen=True)
class SharingPenalty:
    """Solo vs shared miss rates for one thread."""

    name: str
    solo_miss_rate: float
    shared_miss_rate: float

    @property
    def penalty(self) -> float:
        """Extra uncovered misses per 100 accesses caused by sharing."""
        return self.shared_miss_rate - self.solo_miss_rate


def sharing_penalties(
    traces: Sequence[Trace],
    policy: AssistConfig = BASELINE,
    machine: MachineConfig = PAPER_MACHINE,
    *,
    warmup_fraction: float = 0.25,
) -> List[SharingPenalty]:
    """Each thread's shared-cache miss rate against its solo run.

    Solo runs use the same per-thread reference count and warmup fraction
    so the comparison is apples-to-apples.
    """
    shared = simulate_shared(
        traces, policy, machine, warmup_fraction=warmup_fraction
    )
    n = min(len(t) for t in traces)
    out: List[SharingPenalty] = []
    for trace in traces:
        clipped = trace[:n]
        solo = simulate(
            clipped, policy, machine, warmup=int(n * warmup_fraction)
        )
        solo_uncovered = solo.l1.misses - solo.buffer.hits
        solo_rate = 100.0 * solo_uncovered / solo.l1.accesses
        out.append(
            SharingPenalty(
                name=trace.name,
                solo_miss_rate=solo_rate,
                shared_miss_rate=shared.thread(trace.name).miss_rate,
            )
        )
    return out
