"""Assist-buffer policy configuration.

Every Section-5 architecture — victim cache (§5.1), filtered next-line
prefetching (§5.2), cache exclusion (§5.3), and all Adaptive Miss Buffer
combinations (§5.5) — is one setting of :class:`AssistConfig` interpreted
by :class:`repro.system.memory_system.MemorySystem`.  That mirrors the
paper's observation that the four mechanisms share "a very similar
structure": a single small buffer whose fill/hit behaviour differs per
policy.  Named presets for each figure live in :mod:`repro.buffers`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Optional

from repro.core.filters import ConflictFilter


class ExclusionMode(Enum):
    """Which misses bypass the cache into the buffer (§5.3 policies)."""

    CAPACITY = "capacity"               # bypass misses the MCT calls capacity
    CONFLICT = "conflict"               # bypass misses the MCT calls conflict
    CAPACITY_HISTORY = "capacity-history"  # bypass regions with capacity history
    CONFLICT_HISTORY = "conflict-history"  # bypass regions with conflict history
    MAT = "mat"                          # Johnson & Hwu's memory access table

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AssistConfig:
    """One cache-assist architecture.

    The default instance is "no buffer at all" (the baseline bar of every
    figure).  Set the victim/prefetch/exclusion fields to enable the
    corresponding behaviours; they compose freely — the AMB presets enable
    several at once.

    Attributes
    ----------
    name:
        Label used in reports.
    buffer_entries:
        Buffer capacity; 0 disables the buffer entirely (pure baseline).
    victim_fills:
        Place lines evicted from L1 into the buffer (victim caching).
    victim_fill_filter:
        When set, only victim-fill if the filter labels the (new miss,
        evicted line) pair a conflict event — §5.1's "filter fills".
    victim_swap:
        Swap a victim-buffer hit back into L1 (the traditional policy).
    victim_no_swap_filter:
        When set, *skip* the swap if the filter labels the hit a conflict
        event — §5.1's "filter swaps" (serve the data from the buffer and
        leave the lines where they are).
    prefetch:
        Next-line prefetch into the buffer on misses and buffer hits.
    prefetch_filter:
        When set, suppress the prefetch if the filter labels the miss a
        conflict event — §5.2's capacity-only prefetching.
    exclusion:
        Bypass mode (§5.3), or None for no exclusion.
    mct_install_on_bypass:
        §5.3's MCT tweak: install a bypassed line's tag in the MCT so it
        can later be recognised as a conflict miss.  On by default
        (ablated in the benchmarks).
    mct_tag_bits:
        Stored-tag width for the MCT (None = full tags, as in all of
        Section 5).
    """

    name: str = "baseline"
    buffer_entries: int = 0
    victim_fills: bool = False
    victim_fill_filter: Optional[ConflictFilter] = None
    victim_swap: bool = True
    victim_no_swap_filter: Optional[ConflictFilter] = None
    prefetch: bool = False
    prefetch_filter: Optional[ConflictFilter] = None
    exclusion: Optional[ExclusionMode] = None
    mct_install_on_bypass: bool = True
    mct_tag_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.buffer_entries < 0:
            raise ValueError("buffer_entries must be >= 0")
        uses_buffer = self.victim_fills or self.prefetch or self.exclusion is not None
        if uses_buffer and self.buffer_entries == 0:
            raise ValueError(
                f"policy {self.name!r} uses the assist buffer but "
                "buffer_entries is 0"
            )

    @property
    def uses_buffer(self) -> bool:
        return self.buffer_entries > 0

    def renamed(self, name: str) -> "AssistConfig":
        return replace(self, name=name)

    def with_entries(self, entries: int) -> "AssistConfig":
        """Same policy, different buffer size (Figure 6's 16-entry AMB)."""
        return replace(self, buffer_entries=entries)


#: The no-buffer baseline every speedup figure normalises against.
BASELINE = AssistConfig()
