"""Conflict-aware co-scheduling (§5.6 "Multithreaded architectures").

"Jobs which produce an inordinate number of conflict misses when scheduled
together can be identified as bad candidates for co-scheduling in the
future."  The MCT makes that signal available in hardware: per schedule,
count the conflict misses of the shared cache.

:class:`CoScheduleAdvisor` measures every pairing of a set of jobs on a
shared L1 (reference-interleaved, the worst case for cache sharing),
records each pairing's conflict-miss rate, and greedily picks the pairing
set that minimises total conflict misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.mct import MissClassificationTable
from repro.workloads.trace import Trace, merge_round_robin


@dataclass(frozen=True)
class PairingReport:
    """Measured behaviour of one co-scheduled pair."""

    jobs: Tuple[str, str]
    miss_rate: float
    conflict_miss_rate: float   # MCT-conflict misses, % of accesses

    @property
    def conflict_share(self) -> float:
        """Conflict misses as a share of all misses, in percent."""
        return (
            100.0 * self.conflict_miss_rate / self.miss_rate
            if self.miss_rate
            else 0.0
        )


class CoScheduleAdvisor:
    """Measure pairings of jobs on a shared cache and recommend a schedule.

    Parameters
    ----------
    geometry:
        The shared cache the co-scheduled jobs contend for.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._reports: Dict[Tuple[str, str], PairingReport] = {}

    # ------------------------------------------------------------------
    def measure_pair(self, a: Trace, b: Trace) -> PairingReport:
        """Run two jobs interleaved on the shared cache and classify."""
        merged = merge_round_robin([a, b])
        mct = MissClassificationTable(self.geometry)
        cache = SetAssociativeCache(self.geometry, on_evict=mct.on_evict)
        conflicts = 0
        for addr in merged.addresses:
            addr = int(addr)
            out = cache.lookup(addr)
            if not out.hit:
                if mct.classify_is_conflict(addr):
                    conflicts += 1
                cache.fill(addr)
        n = cache.stats.accesses
        report = PairingReport(
            jobs=(a.name, b.name),
            miss_rate=cache.stats.miss_rate,
            conflict_miss_rate=100.0 * conflicts / n if n else 0.0,
        )
        self._reports[self._key(a.name, b.name)] = report
        return report

    def measure_all(self, jobs: Sequence[Trace]) -> List[PairingReport]:
        """Measure every pairing of the given jobs."""
        if len({j.name for j in jobs}) != len(jobs):
            raise ValueError("job names must be unique")
        return [self.measure_pair(a, b) for a, b in combinations(jobs, 2)]

    def recommend(self, job_names: Sequence[str]) -> List[Tuple[str, str]]:
        """Greedy minimum-conflict pairing of an even set of jobs.

        Requires every pairing among ``job_names`` to have been measured.
        Returns pairs sorted by ascending conflict-miss rate; each job
        appears exactly once.
        """
        if len(job_names) % 2:
            raise ValueError("need an even number of jobs to pair")
        candidates = sorted(
            (
                (self._report_for(a, b).conflict_miss_rate, a, b)
                for a, b in combinations(job_names, 2)
            ),
        )
        placed: set[str] = set()
        schedule: List[Tuple[str, str]] = []
        for _, a, b in candidates:
            if a in placed or b in placed:
                continue
            schedule.append((a, b))
            placed.update((a, b))
        return schedule

    def report_for(self, a: str, b: str) -> PairingReport:
        """The measured report for one pairing (order-insensitive)."""
        return self._report_for(a, b)

    # ------------------------------------------------------------------
    def _report_for(self, a: str, b: str) -> PairingReport:
        try:
            return self._reports[self._key(a, b)]
        except KeyError:
            raise KeyError(
                f"pairing ({a}, {b}) has not been measured; call "
                "measure_pair or measure_all first"
            ) from None

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)
