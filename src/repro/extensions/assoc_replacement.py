"""MCT-biased replacement for highly-associative caches (§5.6).

"Many real workloads will still experience conflict misses with 4-way or
higher-associative caches... the cache may benefit from using miss
classification as part of the cache line replacement algorithm.  For
example, a bias against capacity misses will ensure that accesses that
stride through memory (characterized by a capacity miss followed by a
short burst of activity) will move out of the cache set quickly once they
are no longer being used.  This is the same application suggested by
Stone and Pomerene."

Implementation: lines filled on MCT-identified *capacity* misses leave
their conflict bit clear; the replacement policy prefers evicting such
lines (LRU among them), falling back to plain LRU when the whole set is
conflict-marked.  To keep the reprieve one-time, consuming a clear-bit
victim is exactly the demotion the paper's pseudo-associative variant
applies — here the bias is purely at eviction time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cache.geometry import CacheGeometry
from repro.cache.line import CacheLine
from repro.cache.replacement import LRUReplacement, ReplacementPolicy
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.mct import MissClassificationTable
from repro.workloads.trace import Trace


class ConflictBiasedReplacement(ReplacementPolicy):
    """Prefer evicting lines that entered on capacity misses.

    Among the valid lines of a set, candidates without the conflict bit
    are evicted first (LRU order among them); when every line carries the
    bit, plain LRU decides and — matching §5.4's one-reprieve rule — the
    chosen victim's peers keep their bits.
    """

    def choose_victim(self, lines: Sequence[CacheLine]) -> int:
        empty = self.first_invalid(lines)
        if empty is not None:
            return empty
        capacity_ways = [w for w, l in enumerate(lines) if not l.conflict_bit]
        pool = capacity_ways if capacity_ways else range(len(lines))
        return min(pool, key=lambda w: lines[w].last_touch)


@dataclass(frozen=True)
class AssocReplacementResult:
    """Miss rates of plain-LRU vs conflict-biased replacement."""

    geometry: CacheGeometry
    lru_miss_rate: float
    biased_miss_rate: float

    @property
    def improvement(self) -> float:
        """Absolute miss-rate reduction in percentage points."""
        return self.lru_miss_rate - self.biased_miss_rate


def _run(trace: Trace, geometry: CacheGeometry, policy: ReplacementPolicy) -> float:
    mct = MissClassificationTable(geometry)
    cache = SetAssociativeCache(geometry, policy=policy, on_evict=mct.on_evict)
    for addr in trace.addresses:
        addr = int(addr)
        out = cache.lookup(addr)
        if not out.hit:
            is_conflict = mct.classify_is_conflict(addr)
            cache.fill(addr, conflict_bit=is_conflict)
    return cache.stats.miss_rate


def compare_assoc_replacement(
    trace: Trace, geometry: CacheGeometry
) -> AssocReplacementResult:
    """Miss rate of plain LRU vs the conflict-biased policy on one trace.

    Use an associativity of 4 or more — at low associativity LRU already
    separates streaming lines from resident ones and the bias has little
    room (which is itself the §5.6 observation about when this helps).
    """
    return AssocReplacementResult(
        geometry=geometry,
        lru_miss_rate=_run(trace, geometry, LRUReplacement()),
        biased_miss_rate=_run(trace, geometry, ConflictBiasedReplacement()),
    )
