"""Conflict-filtered dynamic page remapping (§5.6 "Runtime conflict avoidance").

Bershad et al.'s Cache Miss Lookaside buffer counts cache misses by page;
when two pages that map to the same region of a large direct-mapped cache
both miss heavily, the OS recolours one of them (changes its
virtual-to-physical mapping) to a different cache region.

The paper's observation: "Miss classification would allow this technique
to only count conflict misses.  Reallocation could be avoided when the
majority of misses are capacity misses (in which case reallocation
typically would not help)."

This module simulates the scheme with a software remap table:

* pages are ``page_size`` regions; a page's *colour* is the field of the
  address that selects which cache region it occupies;
* a miss counter per page (all misses, or MCT-conflict misses only);
* when a page's counter passes ``threshold``, the page is remapped to the
  currently least-loaded colour (load = remapped pages per colour), the
  counter resets, and a remap is charged (each remap costs a page copy —
  the expensive part the conflict filter avoids wasting).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from enum import Enum
from typing import Dict

from repro.cache.geometry import CacheGeometry
from repro.cache.set_assoc import SetAssociativeCache
from repro.core.mct import MissClassificationTable
from repro.workloads.trace import Trace


class RemapPolicy(Enum):
    """What the per-page miss counters count."""

    NONE = "none"                  # baseline: no remapping
    ALL_MISSES = "all-misses"      # Bershad et al.: every miss counts
    CONFLICT_ONLY = "conflict-only"  # §5.6: count MCT conflict misses only


@dataclass
class RemapStats:
    """Outcome of one remapping run."""

    policy: RemapPolicy
    accesses: int = 0
    misses: int = 0
    remaps: int = 0

    @property
    def miss_rate(self) -> float:
        return 100.0 * self.misses / self.accesses if self.accesses else 0.0


class PageRemapper:
    """OS-level page recolouring driven by per-page miss counts."""

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: RemapPolicy,
        page_size: int = 4096,
        threshold: int = 64,
    ) -> None:
        if page_size % geometry.line_size:
            raise ValueError("page_size must be a multiple of the line size")
        if geometry.size % page_size:
            raise ValueError("cache size must be a multiple of page_size")
        self.geometry = geometry
        self.policy = policy
        self.page_size = page_size
        self.threshold = threshold
        self.n_colours = geometry.size // (page_size * geometry.assoc)
        self._page_shift = page_size.bit_length() - 1
        self._colour_of: Dict[int, int] = {}       # page -> assigned colour
        self._counters: Dict[int, int] = defaultdict(int)
        self._colour_load: Counter[int] = Counter()
        self.remaps = 0

    # ------------------------------------------------------------------
    def translate(self, addr: int) -> int:
        """Apply the current virtual-to-physical colour mapping."""
        page = addr >> self._page_shift
        colour = self._colour_of.get(page)
        if colour is None:
            return addr
        offset = addr & (self.page_size - 1)
        # Replace the colour bits (the low bits of the page frame number
        # that land in the cache index) with the assigned colour.
        frame = page & ~(self.n_colours - 1) | colour
        return (frame << self._page_shift) | offset

    def note_miss(self, addr: int, is_conflict: bool) -> None:
        """Count one miss; remap the page if it crossed the threshold."""
        if self.policy is RemapPolicy.NONE:
            return
        if self.policy is RemapPolicy.CONFLICT_ONLY and not is_conflict:
            return
        page = addr >> self._page_shift
        self._counters[page] += 1
        if self._counters[page] < self.threshold:
            return
        self._counters[page] = 0
        self._remap(page)

    def _remap(self, page: int) -> None:
        old = self._colour_of.get(page, page & (self.n_colours - 1))
        # Least-loaded colour, avoiding the page's current colour on ties.
        target = min(
            range(self.n_colours),
            key=lambda c: (self._colour_load[c], c == old, c),
        )
        if target == old:
            return
        if self._colour_of.get(page) is not None:
            self._colour_load[old] -= 1
        self._colour_of[page] = target
        self._colour_load[target] += 1
        self.remaps += 1


def simulate_remap(
    trace: Trace,
    geometry: CacheGeometry,
    policy: RemapPolicy,
    *,
    page_size: int = 4096,
    threshold: int = 64,
) -> RemapStats:
    """Run one trace under a remapping policy; returns miss/remap counts.

    The cache is flushed of a remapped page implicitly: recolouring
    changes the page's physical addresses, so its old lines simply stop
    being referenced (a conservative model — a real kernel would also pay
    a copy cost, which is why spurious remaps matter).
    """
    remapper = PageRemapper(geometry, policy, page_size, threshold)
    mct = MissClassificationTable(geometry)
    cache = SetAssociativeCache(geometry, on_evict=mct.on_evict)
    stats = RemapStats(policy=policy)

    for addr in trace.addresses:
        addr = int(addr)
        phys = remapper.translate(addr)
        stats.accesses += 1
        out = cache.lookup(phys)
        if out.hit:
            continue
        stats.misses += 1
        is_conflict = mct.classify_is_conflict(phys)
        cache.fill(phys, conflict_bit=is_conflict)
        remapper.note_miss(addr, is_conflict)

    stats.remaps = remapper.remaps
    return stats
