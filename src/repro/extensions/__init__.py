"""Extensions: the paper's §5.6 'Other Applications of Miss Classification'.

The paper sketches three further uses of the MCT without evaluating them;
this package implements all three so they can be measured:

* :mod:`repro.extensions.assoc_replacement` — conflict-bit-biased
  replacement for highly-associative caches (the Stone/Pomerene shadow-
  directory suggestion).
* :mod:`repro.extensions.page_remap` — the cache-miss-lookaside /
  dynamic page-remapping scheme of Bershad et al., with the paper's
  proposed conflict-only miss counting.
* :mod:`repro.extensions.coscheduling` — conflict-aware job
  co-scheduling for multithreaded/multiprogrammed caches.
"""

from repro.extensions.assoc_replacement import (
    ConflictBiasedReplacement,
    compare_assoc_replacement,
)
from repro.extensions.coscheduling import CoScheduleAdvisor, PairingReport
from repro.extensions.page_remap import PageRemapper, RemapPolicy, simulate_remap

__all__ = [
    "CoScheduleAdvisor",
    "ConflictBiasedReplacement",
    "PageRemapper",
    "PairingReport",
    "RemapPolicy",
    "compare_assoc_replacement",
    "simulate_remap",
]
