"""Deterministic, seeded fault injection for the harness and obs layers.

The experiment harness sells *exactness*: a crashed campaign, once
repaired by ``python -m repro.harness.doctor`` and resumed, must produce
artifacts byte-identical to a run that never crashed.  That claim is
only worth something if the crash paths are actually exercised, so this
package makes every failure the run directory will realistically see —
workers SIGKILLed mid-checkpoint, disk-full, torn ``events.jsonl``
tails, stale manifests — reproducible on demand.

Design mirrors :mod:`repro.obs`: named injection *sites* are zero-cost
when nothing is armed (one module-global ``None`` check per operation,
never per reference), and everything is driven by a seeded
:class:`FaultPlan` so a failing CI chaos run can be replayed exactly.

* :mod:`repro.faults.sites` — the site catalog (checkpoint write,
  manifest update, report finalize, event append, worker spawn,
  mid-simulation tick).
* :mod:`repro.faults.plan` — :class:`FaultSpec` / :class:`FaultPlan`
  and the ``SITE:KIND[:SEED[:REPEAT]]`` grammar behind ``--inject`` and
  ``REPRO_INJECT``.
* :mod:`repro.faults.runtime` — process-local activation and the
  effect machinery (raise, ENOSPC, hard kill, torn partial write,
  seeded delay).

This package imports nothing from the rest of ``repro`` so any layer
(harness, obs, system) can hook into it without cycles.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    parse_plan,
)
from repro.faults.runtime import (
    activate,
    active_plan,
    deactivate,
    fire,
    sim_tick_every,
)
from repro.faults.sites import SIM_TICK_EVERY, SITES, WRITE_SITES

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "SIM_TICK_EVERY",
    "SITES",
    "WRITE_SITES",
    "activate",
    "active_plan",
    "deactivate",
    "fire",
    "parse_plan",
    "sim_tick_every",
]
