"""Fault specs and the seeded plan that schedules them.

A :class:`FaultSpec` arms one fault *kind* at one *site*; the spec's
seed deterministically picks which hit of that site fires (the
``nth``-hit rule below), so two runs of the same plan against the same
campaign crash at the same place.  A :class:`FaultPlan` is an immutable,
picklable bundle of specs — it crosses the process boundary into cell
workers exactly like :class:`~repro.obs.config.ObsConfig` does.

Grammar (CLI ``--inject`` and the ``REPRO_INJECT`` environment
variable; comma-separated for several specs)::

    SITE:KIND[:SEED[:REPEAT]]

    checkpoint_write:partial:3      tear the 1st/2nd/3rd... checkpoint
    worker_spawn:enospc:0:8         fail eight consecutive spawns
    sim_tick:kill                   die mid-simulation (seed 0)

``KIND`` is one of:

=============  ========================================================
``kill``       hard process death (``os._exit``), as a SIGKILL would
``exception``  raise :class:`InjectedCrash` at the site
``enospc``     raise ``OSError(ENOSPC)``, as a full disk would
``partial``    write a torn prefix to the site's file, then die
``delay``      seeded sleep (exercises timeout paths; never corrupts)
=============  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.faults.sites import SITES

#: Every fault kind a spec may arm.
FAULT_KINDS = ("kill", "exception", "enospc", "partial", "delay")

#: The seed's nth-hit window: a spec fires on hit ``1 + seed % _NTH_MOD``
#: of its site.  Small on purpose — short campaigns only hit each site a
#: handful of times, and a spec whose nth is never reached simply does
#: not fire (the run completes fault-free, which recovery tests treat as
#: a trivially consistent outcome).
_NTH_MOD = 3


class InjectedCrash(RuntimeError):
    """Raised by the ``exception`` fault kind at an injection site."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: fire ``kind`` at hit ``nth`` of ``site``.

    ``repeat`` bounds how many times the spec fires once its nth hit is
    reached (further hits keep firing until the budget is spent);
    ``repeat=0`` means unbounded — that is how the circuit-breaker tests
    model persistently broken infrastructure.
    """

    site: str
    kind: str
    seed: int = 0
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown injection site {self.site!r}; "
                f"expected one of {', '.join(sorted(SITES))}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}"
            )
        if self.seed < 0:
            raise ValueError("fault seed must be >= 0")
        if self.repeat < 0:
            raise ValueError("fault repeat must be >= 0 (0 = unbounded)")

    @property
    def nth(self) -> int:
        """The 1-based site hit on which this spec starts firing."""
        return 1 + self.seed % _NTH_MOD

    def format(self) -> str:
        return f"{self.site}:{self.kind}:{self.seed}:{self.repeat}"

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        parts = text.strip().split(":")
        if not 2 <= len(parts) <= 4 or not parts[0]:
            raise ValueError(
                f"bad fault spec {text!r}: expected SITE:KIND[:SEED[:REPEAT]]"
            )
        seed = 0
        repeat = 1
        try:
            if len(parts) > 2:
                seed = int(parts[2])
            if len(parts) > 3:
                repeat = int(parts[3])
        except ValueError:
            raise ValueError(
                f"bad fault spec {text!r}: SEED and REPEAT must be integers"
            ) from None
        return cls(site=parts[0], kind=parts[1], seed=seed, repeat=repeat)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable bundle of armed fault specs.

    The plan itself carries no mutable state; per-process hit counters
    live in :mod:`repro.faults.runtime`, so a worker process starts
    counting its own site hits from zero — deterministic per process,
    which is what makes a crashed run replayable.
    """

    specs: Tuple[FaultSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def sites(self) -> List[str]:
        return sorted({spec.site for spec in self.specs})

    def format(self) -> str:
        return ",".join(spec.format() for spec in self.specs)


def parse_plan(text: str) -> FaultPlan:
    """Parse a comma-separated spec list into a :class:`FaultPlan`."""
    specs = tuple(
        FaultSpec.parse(part) for part in text.split(",") if part.strip()
    )
    if not specs:
        raise ValueError(f"empty fault plan {text!r}")
    return FaultPlan(specs=specs)
