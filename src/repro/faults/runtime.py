"""Process-local fault activation and the effect machinery.

Mirrors :mod:`repro.obs.events`: one module-global holds the active
:class:`~repro.faults.plan.FaultPlan` (``None`` by default), and every
hook in production code starts with that single ``None`` check — a
disarmed build pays nothing measurable (the bench CI gate runs with
faults off and enforces exactly that).

Hit counters are per process and per site, guarded by a lock because
supervisor threads under ``--jobs N`` hit the write sites concurrently.
Workers ``activate()`` the plan on startup (the executor passes it
alongside :class:`~repro.obs.config.ObsConfig`), so each worker counts
its own hits from zero.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Union

from repro.faults.plan import FaultPlan, FaultSpec, InjectedCrash
from repro.faults.sites import SIM_TICK_EVERY, WRITE_SITES

#: Exit codes a hard-killed process reports (distinct from real signals
#: so a supervisor log makes the injection unambiguous).
KILL_EXIT = 137
TORN_EXIT = 138

_lock = threading.Lock()
_active_plan: Optional[FaultPlan] = None
_hits: Dict[str, int] = {}
_fired: Dict[int, int] = {}


def activate(plan: Optional[FaultPlan]) -> None:
    """Arm ``plan`` in this process (resets hit counters); None disarms."""
    global _active_plan
    with _lock:
        _active_plan = plan if plan else None
        _hits.clear()
        _fired.clear()


def deactivate() -> None:
    """Disarm fault injection in this process (the default state)."""
    activate(None)


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, or ``None`` — the zero-cost fast-path check."""
    return _active_plan


def sim_tick_every() -> int:
    """Chunk cadence for the ``sim_tick`` site; 0 when nothing is armed.

    Simulation drivers call this once per :func:`simulate` — never per
    reference — and keep their unchunked hot loop when it returns 0.
    """
    plan = _active_plan
    if plan is None:
        return 0
    return SIM_TICK_EVERY if any(s.site == "sim_tick" for s in plan.specs) else 0


def fire(
    site: str,
    *,
    path: Union[str, Path, None] = None,
    payload: Optional[str] = None,
) -> None:
    """Record one hit of ``site`` and trigger any spec scheduled for it.

    Write sites pass the destination ``path`` and the full ``payload``
    about to be written, so the ``partial`` kind can tear the file the
    way a crash between ``os.replace`` and the data reaching disk would.
    May raise (:class:`InjectedCrash`, ``OSError``), sleep, or terminate
    the process; returns normally when nothing fires.
    """
    plan = _active_plan
    if plan is None:
        return
    spec = _claim(plan, site)
    if spec is not None:
        _trigger(spec, site, path, payload)


def _claim(plan: FaultPlan, site: str) -> Optional[FaultSpec]:
    """Count the hit and return the spec that should fire now, if any."""
    with _lock:
        if _active_plan is not plan:  # disarmed concurrently
            return None
        _hits[site] = _hits.get(site, 0) + 1
        hit = _hits[site]
        for index, spec in enumerate(plan.specs):
            if spec.site != site or hit < spec.nth:
                continue
            fired = _fired.get(index, 0)
            if spec.repeat and fired >= spec.repeat:
                continue
            _fired[index] = fired + 1
            return spec
    return None


def _trigger(
    spec: FaultSpec,
    site: str,
    path: Union[str, Path, None],
    payload: Optional[str],
) -> None:
    kind = spec.kind
    if kind == "delay":
        # Seeded so a replay sleeps the same amount; short enough not to
        # stall a campaign, long enough to lose a tight timeout race.
        time.sleep(0.01 + 0.19 * random.Random(spec.seed).random())
        return
    if kind == "kill":
        os._exit(KILL_EXIT)
    if kind == "partial" and site in WRITE_SITES and path is not None:
        _tear(site, Path(path), payload or "")
        os._exit(TORN_EXIT)
    if kind == "enospc":
        raise OSError(
            errno.ENOSPC,
            f"injected ENOSPC at {site} "
            f"(fault spec {spec.format()})",
        )
    # "exception", and "partial" at a site with nothing to tear.
    raise InjectedCrash(
        f"injected {kind} fault at {site} (fault spec {spec.format()})"
    )


def _tear(site: str, path: Path, payload: str) -> None:
    """Leave a torn prefix of ``payload`` at ``path``, fsynced.

    This is the on-disk state an un-fsynced atomic write can leave after
    a power cut: the rename is durable but only part of the data is.
    ``event_append`` tears by appending a partial line; the other write
    sites tear by replacing the destination with a truncated document.
    """
    torn = payload[: max(1, len(payload) // 2)]
    mode = "a" if site == "event_append" else "w"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, mode) as fh:
            fh.write(torn)
            fh.flush()
            os.fsync(fh.fileno())
    except OSError:  # pragma: no cover - the point is to die regardless
        pass
