"""The injection-site catalog.

A *site* is a named point where the harness or obs layer touches shared,
durable state — exactly the points a real crash can corrupt.  Hook calls
are placed in production code (not tests), so the fault model covers the
code that actually runs; each hook costs one module-global ``None``
check when no plan is armed.

==================  ====================================================
``checkpoint_write``  cell artifact persisted (``cells/<id>.json``)
``manifest_update``   manifest rewrite (prepare + per-checkpoint
                      checksum registration)
``report_finalize``   ``report.json`` written at end of run
``event_append``      one ``events.jsonl`` line appended
``worker_spawn``      cell worker process about to start
``sim_tick``          inside a simulation's measured loop, every
                      :data:`SIM_TICK_EVERY` references
``serve_accept``      classification service: connection accepted,
                      before the session handshake
``serve_batch``       classification service: one address batch about
                      to be fed through a tenant pipeline
==================  ====================================================

The first four are *write* sites: the ``partial`` fault kind tears their
destination file (a truncated prefix reaches disk, then the process
dies), modelling the post-crash state an un-fsynced ``os.replace`` can
leave behind.  At non-write sites ``partial`` degrades to ``exception``.
"""

from __future__ import annotations

from typing import Dict

#: site name -> one-line description (doctor and --help print these).
SITES: Dict[str, str] = {
    "checkpoint_write": "cell artifact write (cells/<id>.json)",
    "manifest_update": "manifest.json rewrite (prepare / checksum registry)",
    "report_finalize": "report.json write at end of run",
    "event_append": "one events.jsonl line append",
    "worker_spawn": "cell worker process start",
    "sim_tick": "mid-simulation, every SIM_TICK_EVERY measured references",
    "serve_accept": "service connection accepted (pre-handshake)",
    "serve_batch": "service address batch about to be processed",
}

#: Sites whose hook carries a destination path + payload (``partial``
#: tears the file at these; elsewhere it degrades to ``exception``).
WRITE_SITES = frozenset(
    {"checkpoint_write", "manifest_update", "report_finalize", "event_append"}
)

#: Measured-reference cadence of the ``sim_tick`` site when the
#: simulation is not already chunked by a metrics heartbeat.
SIM_TICK_EVERY = 1000
