"""Cache substrate: geometry, tag stores, replacement, statistics."""

from repro.cache.fully_assoc import FullyAssociativeLRU
from repro.cache.geometry import AddressParts, CacheGeometry
from repro.cache.line import BufferRole, CacheLine, EvictedLine
from repro.cache.pseudo_assoc import (
    PacHit,
    PacResult,
    PacVariant,
    PseudoAssociativeCache,
)
from repro.cache.replacement import (
    FIFOReplacement,
    LRUReplacement,
    MRUReplacement,
    RandomReplacement,
    ReplacementPolicy,
    make_policy,
)
from repro.cache.set_assoc import AccessResult, SetAssociativeCache
from repro.cache.stats import (
    BufferStats,
    CacheStats,
    ClassificationStats,
    SystemStats,
    TimingStats,
)

__all__ = [
    "AccessResult",
    "AddressParts",
    "BufferRole",
    "BufferStats",
    "CacheGeometry",
    "CacheLine",
    "CacheStats",
    "ClassificationStats",
    "EvictedLine",
    "FIFOReplacement",
    "FullyAssociativeLRU",
    "LRUReplacement",
    "MRUReplacement",
    "PacHit",
    "PacResult",
    "PacVariant",
    "PseudoAssociativeCache",
    "RandomReplacement",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "SystemStats",
    "TimingStats",
    "make_policy",
]
