"""Replacement policies for set-associative structures.

Policies are small strategy objects: given the lines of one set, pick the
way to evict.  They are deliberately stateless — all the state they need
(``last_touch``, ``fill_time``) lives on the :class:`~repro.cache.line.CacheLine`
itself, so one policy instance can serve every set of every cache.

The paper's caches use LRU; FIFO and Random are provided for ablations and
because the victim buffer is described as "a FIFO from which entries can be
taken out of the middle".
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Sequence

from repro.cache.line import CacheLine


class ReplacementPolicy(ABC):
    """Strategy interface: choose a victim way within one set."""

    @abstractmethod
    def choose_victim(self, lines: Sequence[CacheLine]) -> int:
        """Return the way index to evict.

        Invalid ways are always preferred; implementations only need to
        order the valid ones.  ``lines`` is never empty.
        """

    @staticmethod
    def first_invalid(lines: Sequence[CacheLine]) -> int | None:
        """Index of the first invalid way, or None if the set is full."""
        for way, line in enumerate(lines):
            if not line.valid:
                return way
        return None

    @property
    def name(self) -> str:
        return type(self).__name__.replace("Replacement", "").lower()


class LRUReplacement(ReplacementPolicy):
    """Evict the least-recently-used valid line."""

    def choose_victim(self, lines: Sequence[CacheLine]) -> int:
        empty = self.first_invalid(lines)
        if empty is not None:
            return empty
        return min(range(len(lines)), key=lambda w: lines[w].last_touch)


class FIFOReplacement(ReplacementPolicy):
    """Evict the oldest-filled valid line, ignoring touches."""

    def choose_victim(self, lines: Sequence[CacheLine]) -> int:
        empty = self.first_invalid(lines)
        if empty is not None:
            return empty
        return min(range(len(lines)), key=lambda w: lines[w].fill_time)


class RandomReplacement(ReplacementPolicy):
    """Evict a uniformly random valid line (seeded, reproducible)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose_victim(self, lines: Sequence[CacheLine]) -> int:
        empty = self.first_invalid(lines)
        if empty is not None:
            return empty
        return self._rng.randrange(len(lines))


class MRUReplacement(ReplacementPolicy):
    """Evict the most-recently-used line.

    Not used by the paper; useful as an adversarial baseline in tests —
    any sane policy should beat it on LRU-friendly streams.
    """

    def choose_victim(self, lines: Sequence[CacheLine]) -> int:
        empty = self.first_invalid(lines)
        if empty is not None:
            return empty
        return max(range(len(lines)), key=lambda w: lines[w].last_touch)


def make_policy(name: str, *, seed: int = 0) -> ReplacementPolicy:
    """Factory by name: ``lru``, ``fifo``, ``random``, ``mru``."""
    table = {
        "lru": LRUReplacement,
        "fifo": FIFOReplacement,
        "mru": MRUReplacement,
    }
    if name == "random":
        return RandomReplacement(seed=seed)
    try:
        return table[name]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; expected one of "
            f"{sorted(table) + ['random']}"
        ) from None
