"""Pseudo-associative (column-associative) cache with MCT-biased eviction.

Section 5.4 of the paper.  A pseudo-associative cache [Agarwal & Pudar]
is a direct-mapped array in which each set has a *secondary* location —
the set whose index differs in the top index bit.  A primary hit costs the
usual one cycle; a secondary hit costs extra and triggers a swap of the
two locations; a miss picks its victim among the two candidate slots.

The paper's modification uses the Miss Classification Table plus per-line
conflict bits to bias that choice:

* the MCT entry at slot ``s`` holds the tag of the line most recently
  evicted from ``s``, *even if the line was sitting in its secondary
  position*;
* a new line's conflict bit is set only if it matches the MCT entry of its
  **primary** slot;
* on an eviction decision, if *exactly one* of the two candidates has its
  conflict bit set, the other is evicted and the survivor's bit is
  cleared (a one-time reprieve); if both are set, ordinary LRU decides and
  the kept line's bit is not cleared.

The paper reports this improves the pseudo-associative cache by 1.5% on
average (up to 7%), landing within 0.9% of a true 2-way cache, with
tomcatv/turb3d/wave5 actually beating 2-way; average miss rate improves
from 10.22% to 9.83%.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.line import CacheLine
from repro.cache.stats import CacheStats


class PacVariant(Enum):
    """Eviction policy of the pseudo-associative cache.

    ``CLASSIC`` is Agarwal & Pudar's column-associative scheme: on a miss
    the new line takes the primary slot, the old primary is demoted to the
    rehash slot, and the rehash slot's occupant is evicted.  ``LRU``
    replaces the demotion rule with true LRU between the two slots (this
    makes the cache content-equivalent to a 2-way set-associative cache —
    included as the upper bound).  ``MCT`` is §5.4: the conflict-bit
    reprieve first, LRU as the tiebreak.
    """

    CLASSIC = "classic"  # new line wins primary; rehash occupant evicted
    LRU = "lru"          # evict the older of the two candidates
    MCT = "mct"          # §5.4: conflict-bit bias, LRU tiebreak


class PacHit(Enum):
    PRIMARY = "primary"
    SECONDARY = "secondary"
    MISS = "miss"


@dataclass(frozen=True)
class PacResult:
    """Outcome of one pseudo-associative access."""

    kind: PacHit
    swapped: bool = False
    evicted_block: Optional[int] = None


class PseudoAssociativeCache:
    """Direct-mapped cache with a rehash (column-associative) backup slot.

    Lines are tracked by full block number (stored in ``CacheLine.tag``) so
    a line is unambiguous whether it sits in its primary or secondary slot.

    The embedded MCT is a plain per-slot evicted-block store rather than a
    :class:`~repro.core.mct.MissClassificationTable` because §5.4 indexes
    it by *slot* (where the eviction happened), not by the missing
    address's set — the semantics differ enough to warrant its own little
    table here.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        variant: PacVariant = PacVariant.CLASSIC,
    ) -> None:
        if geometry.assoc != 1:
            raise ValueError("a pseudo-associative cache is direct-mapped")
        if geometry.num_sets < 2:
            raise ValueError("need at least two sets for a rehash location")
        self.geometry = geometry
        self.variant = variant
        self.stats = CacheStats()
        self.primary_hits = 0
        self.secondary_hits = 0
        self._slots = [CacheLine() for _ in range(geometry.num_sets)]
        # §5.4 MCT: most recently evicted block per slot.
        self._evicted_from: list[Optional[int]] = [None] * geometry.num_sets
        self._rehash_mask = geometry.num_sets >> 1
        self._now = 0

    # ------------------------------------------------------------------
    def primary_index(self, addr: int) -> int:
        return self.geometry.set_index(addr)

    def secondary_index(self, addr: int) -> int:
        """The rehash slot: primary index with its top bit flipped."""
        return self.geometry.set_index(addr) ^ self._rehash_mask

    # ------------------------------------------------------------------
    def access(self, addr: int) -> PacResult:
        """Reference ``addr``; fills on miss per the configured variant."""
        self._now += 1
        self.stats.accesses += 1
        block = self.geometry.block_number(addr)
        pi = self.primary_index(addr)
        si = self.secondary_index(addr)
        p_line, s_line = self._slots[pi], self._slots[si]

        if p_line.valid and p_line.tag == block:
            p_line.touch(self._now)
            self.stats.hits += 1
            self.primary_hits += 1
            return PacResult(PacHit.PRIMARY)

        if s_line.valid and s_line.tag == block:
            # Secondary hit: swap the two slots so the hot line moves to
            # its primary position (classic column-associative behaviour).
            s_line.touch(self._now)
            self.stats.hits += 1
            self.secondary_hits += 1
            self._swap(pi, si)
            return PacResult(PacHit.SECONDARY, swapped=True)

        self.stats.misses += 1
        evicted = self._fill_miss(block, pi, si)
        return PacResult(PacHit.MISS, evicted_block=evicted)

    # ------------------------------------------------------------------
    def _fill_miss(self, block: int, pi: int, si: int) -> Optional[int]:
        """Install ``block`` at its primary slot, evicting per variant."""
        p_line, s_line = self._slots[pi], self._slots[si]

        # New line's conflict bit: set only on a match against the MCT
        # entry of its *primary* location (§5.4).  Tracked for every
        # variant (it is one bit); only the MCT variant acts on it.
        conflict_bit = self._evicted_from[pi] == block

        # Choose the victim among the two candidate slots.
        if not p_line.valid:
            victim_index = pi
        elif not s_line.valid:
            victim_index = si
        else:
            victim_index = self._choose_victim(pi, si)

        evicted_block: Optional[int] = None
        victim_line = self._slots[victim_index]
        if victim_line.valid:
            evicted_block = victim_line.tag
            self._evicted_from[victim_index] = evicted_block
            self.stats.evictions += 1

        if victim_index == si:
            # The survivor keeps the primary slot's content? No: the new
            # line must live at its primary slot, so the current primary
            # occupant (the survivor) moves to the secondary slot.
            self._slots[si] = self._slots[pi]
            self._slots[si].secondary = True
            self._slots[pi] = victim_line  # reuse the evicted slot object
            self._slots[pi].invalidate()

        new_line = self._slots[pi]
        new_line.fill(block, self._now, conflict_bit=conflict_bit)
        self.stats.fills += 1
        return evicted_block

    def _choose_victim(self, pi: int, si: int) -> int:
        p_line, s_line = self._slots[pi], self._slots[si]
        if self.variant is PacVariant.CLASSIC:
            # Column-associative demotion: the rehash slot's occupant dies.
            return si
        if self.variant is PacVariant.MCT:
            if p_line.conflict_bit and not s_line.conflict_bit:
                # Keep the conflict-marked primary (one reprieve).
                p_line.conflict_bit = False
                return si
            if s_line.conflict_bit and not p_line.conflict_bit:
                s_line.conflict_bit = False
                return pi
            # Both or neither marked: fall through to LRU, bits untouched.
        return pi if p_line.last_touch <= s_line.last_touch else si

    def _swap(self, pi: int, si: int) -> None:
        self._slots[pi], self._slots[si] = self._slots[si], self._slots[pi]
        self._slots[pi].secondary = False
        self._slots[si].secondary = self._slots[si].valid

    # ------------------------------------------------------------------
    def probe(self, addr: int) -> PacHit:
        """Non-mutating lookup: where would ``addr`` hit right now?"""
        block = self.geometry.block_number(addr)
        if (line := self._slots[self.primary_index(addr)]).valid and line.tag == block:
            return PacHit.PRIMARY
        if (line := self._slots[self.secondary_index(addr)]).valid and line.tag == block:
            return PacHit.SECONDARY
        return PacHit.MISS

    def occupancy(self) -> int:
        return sum(1 for line in self._slots if line.valid)

    @property
    def secondary_hit_fraction(self) -> float:
        return self.secondary_hits / self.stats.hits if self.stats.hits else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PseudoAssociativeCache {self.geometry.describe()} "
            f"variant={self.variant.value}>"
        )
