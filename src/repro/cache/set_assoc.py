"""The set-associative cache model.

This is the workhorse substrate: the L1 data cache, the L2 cache, the
Memory Access Table's backing store and the ground-truth models are all
built from it (or from its fully-associative sibling).

The cache is a *tag store only* — no data is modelled, because every
experiment in the paper depends on hit/miss behaviour and traffic, never on
values.  Lookups and fills are explicit and separated so policy code (e.g.
cache exclusion, which must *not* allocate on some misses) can control
allocation precisely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, NamedTuple, Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.line import CacheLine, EvictedLine
from repro.cache.replacement import LRUReplacement, ReplacementPolicy
from repro.cache.stats import CacheStats


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a single cache access.

    Attributes
    ----------
    hit:
        Whether the reference hit.
    way:
        The way that served the hit or received the fill (None when the
        access missed and the caller suppressed allocation).
    evicted:
        Snapshot of the line displaced by an allocating miss, or None when
        the fill landed in an invalid way or no fill happened.
    set_index:
        The set the reference mapped to.
    """

    hit: bool
    way: Optional[int]
    evicted: Optional[EvictedLine]
    set_index: int


class FillResult(NamedTuple):
    """Outcome of :meth:`SetAssociativeCache.fill`.

    Attributes
    ----------
    way:
        The way the incoming line was installed in.
    evicted:
        Snapshot of the displaced line, or None when the fill landed in
        an invalid way.
    """

    way: int
    evicted: Optional[EvictedLine]


class SetAssociativeCache:
    """A classic set-associative, write-back, allocate-on-miss tag store.

    Parameters
    ----------
    geometry:
        Address mapping (size / associativity / line size).
    policy:
        Replacement policy; the paper's caches use LRU.
    name:
        Label used in reports and reprs.
    on_evict:
        Optional hook called with each :class:`EvictedLine` and its set
        index at the moment of eviction.  The Miss Classification Table is
        attached through this hook.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: Optional[ReplacementPolicy] = None,
        name: str = "cache",
        on_evict: Optional[Callable[[int, EvictedLine], None]] = None,
    ) -> None:
        self.geometry = geometry
        self.policy = policy if policy is not None else LRUReplacement()
        self.name = name
        self.on_evict = on_evict
        self.stats = CacheStats()
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(geometry.assoc)]
            for _ in range(geometry.num_sets)
        ]
        self._now = 0

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Logical access counter used for LRU/FIFO ordering."""
        return self._now

    def _tick(self) -> int:
        self._now += 1
        return self._now

    # ------------------------------------------------------------------
    # Queries (non-allocating)
    # ------------------------------------------------------------------
    def probe(self, addr: int) -> bool:
        """True when ``addr`` is resident.  No state is changed."""
        geometry = self.geometry
        tag = geometry.tag(addr)
        for line in self._sets[geometry.set_index(addr)]:
            if line.valid and line.tag == tag:
                return True
        return False

    def find_way(self, addr: int) -> Optional[int]:
        """The way holding ``addr``, or None.  No state is changed."""
        tag = self.geometry.tag(addr)
        for way, line in enumerate(self._sets[self.geometry.set_index(addr)]):
            if line.valid and line.tag == tag:
                return way
        return None

    def peek_line(self, addr: int) -> Optional[CacheLine]:
        """The resident :class:`CacheLine` for ``addr``, or None."""
        way = self.find_way(addr)
        if way is None:
            return None
        return self._sets[self.geometry.set_index(addr)][way]

    def lines_of_set(self, index: int) -> List[CacheLine]:
        """Direct (mutable) view of one set — for tests and policies."""
        return self._sets[index]

    def victim_preview(self, addr: int) -> Optional[EvictedLine]:
        """Which line *would* be evicted by a fill of ``addr`` right now.

        Returns None when the fill would land in an invalid way.  Does not
        change any state; used by policies that must decide where an
        incoming line goes before committing the fill.
        """
        lines = self._sets[self.geometry.set_index(addr)]
        way = self.policy.choose_victim(lines)
        victim = lines[way]
        return victim.snapshot() if victim.valid else None

    # ------------------------------------------------------------------
    # Mutating operations
    # ------------------------------------------------------------------
    def access(self, addr: int, *, write: bool = False) -> AccessResult:
        """Reference ``addr``: touch on hit, allocate on miss (default flow).

        Policy code that separates lookup from allocation should use
        :meth:`lookup` and :meth:`fill` instead.
        """
        result = self.lookup(addr, write=write)
        if result.hit:
            return result
        filled = self.fill(addr, dirty=write)
        return AccessResult(
            hit=False,
            way=filled.way,
            evicted=filled.evicted,
            set_index=result.set_index,
        )

    def lookup(self, addr: int, *, write: bool = False) -> AccessResult:
        """Reference ``addr`` without allocating on a miss.

        Hits update LRU state and the dirty bit; misses only bump the miss
        counter.  The caller decides whether/where to allocate.
        """
        now = self._tick()
        geometry = self.geometry
        stats = self.stats
        index = geometry.set_index(addr)
        tag = geometry.tag(addr)
        stats.accesses += 1
        for way, line in enumerate(self._sets[index]):
            if line.valid and line.tag == tag:
                line.touch(now)
                if write:
                    line.dirty = True
                stats.hits += 1
                return AccessResult(hit=True, way=way, evicted=None, set_index=index)
        stats.misses += 1
        return AccessResult(hit=False, way=None, evicted=None, set_index=index)

    def fill(
        self,
        addr: int,
        *,
        conflict_bit: bool = False,
        dirty: bool = False,
    ) -> FillResult:
        """Install the line holding ``addr``, evicting per policy.

        Returns a :class:`FillResult` carrying the way that received the
        line and the evicted line's snapshot (None when an invalid way
        absorbed the fill), so callers never need to re-scan the set to
        locate the line they just installed.  Fires the ``on_evict`` hook
        and counts a writeback for dirty victims.

        Filling an address that is already resident is a programming error
        and raises ``ValueError`` — it would create a duplicate tag.
        """
        if self.probe(addr):
            raise ValueError(
                f"{self.name}: fill of resident address {addr:#x} would duplicate a tag"
            )
        now = self._tick()
        index = self.geometry.set_index(addr)
        lines = self._sets[index]
        way = self.policy.choose_victim(lines)
        victim_line = lines[way]
        evicted: Optional[EvictedLine] = None
        if victim_line.valid:
            evicted = victim_line.snapshot()
            self.stats.evictions += 1
            if evicted.dirty:
                self.stats.writebacks += 1
            if self.on_evict is not None:
                self.on_evict(index, evicted)
        victim_line.fill(
            self.geometry.tag(addr), now, conflict_bit=conflict_bit, dirty=dirty
        )
        self.stats.fills += 1
        return FillResult(way=way, evicted=evicted)

    def invalidate(self, addr: int) -> Optional[EvictedLine]:
        """Remove ``addr`` if resident; returns its snapshot.

        Used by swap operations (victim cache, pseudo-associative cache)
        that move a line out of the cache without a replacement fill.  Does
        not fire ``on_evict`` — a swap is not an eviction in the paper's
        sense (the line stays in the cache/buffer complex).
        """
        way = self.find_way(addr)
        if way is None:
            return None
        line = self._sets[self.geometry.set_index(addr)][way]
        snap = line.snapshot()
        line.invalidate()
        return snap

    def set_conflict_bit(self, addr: int, value: bool) -> bool:
        """Set the conflict bit of a resident line; returns False if absent."""
        line = self.peek_line(addr)
        if line is None:
            return False
        line.conflict_bit = value
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def resident_blocks(self) -> Iterator[int]:
        """Yield the line-aligned address of every valid resident line."""
        for index, lines in enumerate(self._sets):
            for line in lines:
                if line.valid:
                    yield self.geometry.compose(line.tag, index)

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(
            1 for lines in self._sets for line in lines if line.valid
        )

    def flush(self) -> None:
        """Invalidate every line (stats are kept)."""
        for lines in self._sets:
            for line in lines:
                line.invalidate()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.name}: {self.geometry.describe()}, "
            f"{self.occupancy()}/{self.geometry.num_lines} lines valid>"
        )
