"""Counters shared by caches, buffers and the memory system.

Statistics objects are plain mutable dataclasses with derived-rate
properties.  Everything the paper reports — hit rates, swap/fill rates as a
percentage of all accesses, prefetch accuracy and coverage, miss-rate
components — is computed from these counters, so they are deliberately
fine-grained.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict


def _pct(part: int | float, whole: int | float) -> float:
    """``part / whole`` in percent, 0.0 when the denominator is zero."""
    return 100.0 * part / whole if whole else 0.0


@dataclass
class CacheStats:
    """Per-cache-level counters."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits as a percentage of accesses."""
        return _pct(self.hits, self.accesses)

    @property
    def miss_rate(self) -> float:
        """Misses as a percentage of accesses."""
        return _pct(self.misses, self.accesses)

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another stats object into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class BufferStats:
    """Assist-buffer counters (victim / prefetch / bypass / AMB).

    ``swaps`` and ``fills`` mirror Table 1 of the paper: a *swap* is a
    victim-buffer hit that exchanges lines with the data cache; a *fill* is
    a line written into the buffer on a data-cache miss.  Both are reported
    as a percentage of **all cache accesses**, so the denominator is
    injected by the caller (see :meth:`swap_rate`).
    """

    probes: int = 0
    hits: int = 0
    victim_hits: int = 0
    prefetch_hits: int = 0
    exclusion_hits: int = 0
    fills: int = 0
    swaps: int = 0
    evictions: int = 0
    prefetches_issued: int = 0
    prefetches_used: int = 0
    prefetches_wasted: int = 0
    prefetches_discarded: int = 0

    @property
    def hit_rate_of_probes(self) -> float:
        return _pct(self.hits, self.probes)

    @property
    def prefetch_accuracy(self) -> float:
        """Useful prefetches as a percentage of issued prefetches."""
        return _pct(self.prefetches_used, self.prefetches_issued)

    def swap_rate(self, total_accesses: int) -> float:
        return _pct(self.swaps, total_accesses)

    def fill_rate(self, total_accesses: int) -> float:
        return _pct(self.fills, total_accesses)

    def hit_rate(self, total_accesses: int) -> float:
        """Buffer hits as a percentage of all cache accesses (Table 1 'V$ HR')."""
        return _pct(self.hits, total_accesses)

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def merge(self, other: "BufferStats") -> None:
        """Accumulate another stats object into this one.

        Used by multi-thread / multi-shard rollups; iterating
        :func:`~dataclasses.fields` means a newly added counter can never
        be silently dropped from an aggregate.
        """
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class ClassificationStats:
    """MCT outcome counters, split by the ground-truth class.

    ``predicted X, actual Y`` counters support the accuracy bars of
    Figures 1 and 2: *conflict accuracy* is the fraction of true conflict
    misses the MCT labels conflict, and symmetrically for capacity.
    """

    conflict_as_conflict: int = 0
    conflict_as_capacity: int = 0
    capacity_as_capacity: int = 0
    capacity_as_conflict: int = 0

    @property
    def true_conflicts(self) -> int:
        return self.conflict_as_conflict + self.conflict_as_capacity

    @property
    def true_capacities(self) -> int:
        return self.capacity_as_capacity + self.capacity_as_conflict

    @property
    def total(self) -> int:
        return self.true_conflicts + self.true_capacities

    @property
    def conflict_accuracy(self) -> float:
        """% of true conflict misses the MCT classified as conflict."""
        return _pct(self.conflict_as_conflict, self.true_conflicts)

    @property
    def capacity_accuracy(self) -> float:
        """% of true capacity misses the MCT classified as capacity."""
        return _pct(self.capacity_as_capacity, self.true_capacities)

    @property
    def overall_accuracy(self) -> float:
        """% of all misses classified correctly."""
        return _pct(self.conflict_as_conflict + self.capacity_as_capacity, self.total)

    def record(self, *, predicted_conflict: bool, actual_conflict: bool) -> None:
        if actual_conflict:
            if predicted_conflict:
                self.conflict_as_conflict += 1
            else:
                self.conflict_as_capacity += 1
        else:
            if predicted_conflict:
                self.capacity_as_conflict += 1
            else:
                self.capacity_as_capacity += 1

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def merge(self, other: "ClassificationStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class TimingStats:
    """Cycle-accounting output of the timing model."""

    # Cycle counters are genuinely fractional: bus/bank contention is
    # accounted at sub-cycle resolution, and they only ever cross the
    # obs layer in the final delta (published at finish()), so replay
    # reconciliation stays exact despite the floats.
    cycles: float = 0.0  # repro: noqa[RPR003]
    instructions: int = 0
    memory_refs: int = 0
    stall_cycles: float = 0.0  # repro: noqa[RPR003]
    contention_cycles: float = 0.0  # repro: noqa[RPR003]

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, type(getattr(self, f.name))(0))

    def merge(self, other: "TimingStats") -> None:
        """Accumulate another timing run into this one.

        Cycles and stalls sum, so the merged IPC/CPI is the throughput of
        the combined runs — the right convention when rolling up
        per-thread or per-shard runs executed back to back.
        """
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class SystemStats:
    """Everything a full simulation run produces."""

    l1: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    buffer: BufferStats = field(default_factory=BufferStats)
    timing: TimingStats = field(default_factory=TimingStats)
    memory_accesses: int = 0
    conflict_misses_predicted: int = 0
    capacity_misses_predicted: int = 0

    @property
    def total_hit_rate(self) -> float:
        """L1 hits plus buffer hits, as a percentage of L1 accesses.

        This is the "Total" column of Table 1.
        """
        return _pct(self.l1.hits + self.buffer.hits, self.l1.accesses)

    @property
    def effective_miss_rate(self) -> float:
        """Misses not covered by L1 or the assist buffer, in percent."""
        return 100.0 - self.total_hit_rate

    def reset(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if hasattr(value, "reset"):
                value.reset()
            else:
                setattr(self, f.name, 0)

    def reset_scalars(self) -> None:
        """Zero only the scalar counters owned directly by this object.

        The memory systems share the nested stats objects with their
        caches/buffers and reset those through the owners; this is their
        fields()-driven path for everything else, so a scalar counter
        added later can never leak warmup counts into the measured
        window (the RPR001 bug class).
        """
        for f in fields(self):
            if not hasattr(getattr(self, f.name), "reset"):
                setattr(self, f.name, 0)

    def merge(self, other: "SystemStats") -> None:
        """Accumulate another run's statistics into this one.

        Intended for multi-thread / multi-shard rollups: merged stats no
        longer satisfy the single-run coupling laws (pass
        ``coupled=False`` to the invariant checker), but every per-object
        law still holds and no counter is dropped.
        """
        for f in fields(self):
            value = getattr(self, f.name)
            if hasattr(value, "merge"):
                value.merge(getattr(other, f.name))
            else:
                setattr(self, f.name, value + getattr(other, f.name))

    def as_dict(self) -> Dict[str, object]:
        """Nested plain-dict snapshot of every counter.

        Used by the invariant checker's diagnostics and by debug dumps;
        contains raw counters only (derived rates are properties).
        It is also the counter schema of the observability layer: the
        ``counters`` events in ``events.jsonl`` are flattened deltas of
        exactly this structure (see :mod:`repro.obs.metrics`).
        """
        return asdict(self)
