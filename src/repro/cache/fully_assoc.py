"""Fully-associative LRU tag store with O(1) access.

Two consumers need a fully-associative model:

* the **ground-truth classifier** (:mod:`repro.core.ground_truth`), which
  implements Hill's classic conflict/capacity definition by asking "would
  this miss have hit in a fully-associative LRU cache of the same
  capacity?" — that model sees every access of a multi-million-reference
  trace, so the linear scan of a generic set-associative set would dominate
  simulation time.  This class keys an ``OrderedDict`` by block number for
  O(1) probes, fills and LRU updates;
* small cache-assist buffers, which layer richer entry metadata on top
  (see :mod:`repro.buffers.assist`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.cache.stats import CacheStats


class FullyAssociativeLRU:
    """Fully-associative LRU cache over line-granular block numbers.

    Parameters
    ----------
    capacity:
        Number of lines the cache can hold (must be positive).

    The cache is keyed by *block number* (address >> offset_bits); callers
    are responsible for that shift so this class stays geometry-free.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        # Maps block number -> None; ordering carries the LRU stack
        # (least recently used first).
        self._blocks: "OrderedDict[int, None]" = OrderedDict()

    def probe(self, block: int) -> bool:
        """True when ``block`` is resident; no LRU update."""
        return block in self._blocks

    def access(self, block: int) -> tuple[bool, Optional[int]]:
        """Reference ``block``: LRU-touch on hit, allocate on miss.

        Returns ``(hit, evicted_block)``; ``evicted_block`` is None unless
        the fill displaced a resident line.
        """
        self.stats.accesses += 1
        if block in self._blocks:
            self._blocks.move_to_end(block)
            self.stats.hits += 1
            return True, None
        self.stats.misses += 1
        evicted: Optional[int] = None
        if len(self._blocks) >= self.capacity:
            evicted, _ = self._blocks.popitem(last=False)
            self.stats.evictions += 1
        self._blocks[block] = None
        self.stats.fills += 1
        return False, evicted

    def touch(self, block: int) -> bool:
        """Move a resident block to MRU; returns False if absent."""
        if block not in self._blocks:
            return False
        self._blocks.move_to_end(block)
        return True

    def invalidate(self, block: int) -> bool:
        """Remove ``block``; returns False if it was not resident."""
        return self._blocks.pop(block, False) is None

    def lru_block(self) -> Optional[int]:
        """The block that would be evicted next, or None when empty."""
        if not self._blocks:
            return None
        return next(iter(self._blocks))

    def occupancy(self) -> int:
        return len(self._blocks)

    def contents_lru_to_mru(self) -> list[int]:
        """Resident blocks ordered least- to most-recently used."""
        return list(self._blocks)

    def flush(self) -> None:
        self._blocks.clear()

    def __contains__(self, block: int) -> bool:
        return block in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FullyAssociativeLRU {len(self._blocks)}/{self.capacity} lines>"
        )
