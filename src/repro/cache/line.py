"""Cache line (block) state.

A :class:`CacheLine` carries the metadata the paper's mechanisms need:

* the usual valid/dirty/tag state,
* the **conflict bit** from Section 3 of the paper — one extra bit per
  cache line that remembers whether the line originally entered the cache
  on a conflict miss.  The conflict bit is what makes the *in-conflict*,
  *and-conflict* and *or-conflict* filters possible, and it drives the
  pseudo-associative replacement bias of Section 5.4,
* a free-form ``role`` tag used by the Adaptive Miss Buffer (Section 5.5),
  which must "remember how a cache line entered the buffer".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class BufferRole(Enum):
    """How a line entered an assist buffer (AMB Section 5.5).

    The AMB treats a buffer hit differently depending on whether the line
    was placed as a victim, a prefetch, or an excluded (bypass) line; lines
    may also *transition* between roles on a hit.
    """

    VICTIM = "victim"
    PREFETCH = "prefetch"
    EXCLUSION = "exclusion"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class CacheLine:
    """Mutable per-line metadata.

    Attributes
    ----------
    tag:
        Tag of the resident line (meaningless when ``valid`` is False).
    valid:
        Whether the line holds data.
    dirty:
        Whether the line has been written since it was filled.
    conflict_bit:
        The paper's per-line conflict bit: True iff the line entered the
        cache on a miss the MCT classified as a conflict miss.
    role:
        For assist buffers only — how the line entered the buffer.
    last_touch:
        Logical timestamp of the most recent access (LRU bookkeeping).
    fill_time:
        Logical timestamp of the fill (FIFO bookkeeping).
    secondary:
        For the pseudo-associative cache — True when the line currently
        lives in its rehash (secondary) location.
    """

    tag: int = 0
    valid: bool = False
    dirty: bool = False
    conflict_bit: bool = False
    role: BufferRole | None = None
    last_touch: int = -1
    fill_time: int = -1
    secondary: bool = False

    def invalidate(self) -> None:
        """Reset to the empty state (all metadata cleared)."""
        self.tag = 0
        self.valid = False
        self.dirty = False
        self.conflict_bit = False
        self.role = None
        self.last_touch = -1
        self.fill_time = -1
        self.secondary = False

    def fill(
        self,
        tag: int,
        now: int,
        *,
        conflict_bit: bool = False,
        role: BufferRole | None = None,
        dirty: bool = False,
    ) -> None:
        """Install a new line, replacing whatever was here."""
        self.tag = tag
        self.valid = True
        self.dirty = dirty
        self.conflict_bit = conflict_bit
        self.role = role
        self.last_touch = now
        self.fill_time = now
        self.secondary = False

    def touch(self, now: int) -> None:
        """Record an access for LRU purposes."""
        self.last_touch = now

    def snapshot(self) -> "EvictedLine":
        """Freeze the line's identity for post-eviction processing."""
        return EvictedLine(
            tag=self.tag,
            dirty=self.dirty,
            conflict_bit=self.conflict_bit,
            role=self.role,
            secondary=self.secondary,
        )


@dataclass(frozen=True)
class EvictedLine:
    """Immutable record of a line at the moment it was evicted.

    Victim policies, the MCT update, and the conflict-bit filters all
    operate on the evicted line *after* the replacement decision, so they
    receive this frozen snapshot rather than the (already overwritten)
    :class:`CacheLine` slot.
    """

    tag: int
    dirty: bool = False
    conflict_bit: bool = False
    role: BufferRole | None = None
    secondary: bool = False
