"""Cache geometry: mapping addresses to (tag, set index, block offset).

Every structure in this library that deals with addresses — caches, the
Miss Classification Table, assist buffers, prefetchers — shares a single
:class:`CacheGeometry` so that tag/index arithmetic is defined exactly once.

Addresses are plain non-negative Python integers (byte addresses).  The
paper's machine uses 64-byte lines throughout; that is the default here,
but any power-of-two line size works.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def _log2(n: int) -> int:
    return n.bit_length() - 1


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity/line-size triple with derived address arithmetic.

    Parameters
    ----------
    size:
        Total data capacity in bytes (e.g. ``16 * 1024``).
    assoc:
        Associativity (number of ways).  ``1`` means direct-mapped.
    line_size:
        Cache line (block) size in bytes.

    All three must be powers of two, and ``size`` must be divisible by
    ``assoc * line_size``.

    Examples
    --------
    >>> g = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)
    >>> g.num_sets
    256
    >>> g.set_index(0x1234_5678)
    345
    >>> g.tag(0x1234_5678)
    4660
    """

    size: int
    assoc: int = 1
    line_size: int = 64

    num_sets: int = field(init=False)
    offset_bits: int = field(init=False)
    index_bits: int = field(init=False)

    def __post_init__(self) -> None:
        if not _is_pow2(self.size):
            raise ValueError(f"cache size must be a power of two, got {self.size}")
        if not _is_pow2(self.line_size):
            raise ValueError(
                f"line size must be a power of two, got {self.line_size}"
            )
        if not _is_pow2(self.assoc):
            raise ValueError(f"associativity must be a power of two, got {self.assoc}")
        lines = self.size // self.line_size
        if lines * self.line_size != self.size:
            raise ValueError("cache size must be a multiple of line size")
        if lines % self.assoc != 0:
            raise ValueError(
                f"size/line_size ({lines}) not divisible by assoc ({self.assoc})"
            )
        object.__setattr__(self, "num_sets", lines // self.assoc)
        object.__setattr__(self, "offset_bits", _log2(self.line_size))
        object.__setattr__(self, "index_bits", _log2(self.num_sets))

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------
    @property
    def num_lines(self) -> int:
        """Total number of cache lines (``num_sets * assoc``)."""
        return self.num_sets * self.assoc

    def block_address(self, addr: int) -> int:
        """The line-aligned address containing ``addr``."""
        return addr & ~(self.line_size - 1)

    def block_number(self, addr: int) -> int:
        """The line index of ``addr`` in a flat line-granular address space."""
        return addr >> self.offset_bits

    def set_index(self, addr: int) -> int:
        """Which cache set ``addr`` maps to."""
        return (addr >> self.offset_bits) & (self.num_sets - 1)

    def tag(self, addr: int) -> int:
        """The tag (everything above offset+index bits) of ``addr``."""
        return addr >> (self.offset_bits + self.index_bits)

    def split(self, addr: int) -> "AddressParts":
        """Decompose ``addr`` into (tag, set index, offset)."""
        return AddressParts(
            tag=self.tag(addr),
            index=self.set_index(addr),
            offset=addr & (self.line_size - 1),
        )

    def compose(self, tag: int, index: int, offset: int = 0) -> int:
        """Inverse of :meth:`split` — rebuild a byte address."""
        if not 0 <= index < self.num_sets:
            raise ValueError(f"set index {index} out of range [0, {self.num_sets})")
        if not 0 <= offset < self.line_size:
            raise ValueError(f"offset {offset} out of range [0, {self.line_size})")
        return (
            (tag << (self.offset_bits + self.index_bits))
            | (index << self.offset_bits)
            | offset
        )

    def next_line(self, addr: int) -> int:
        """The line-aligned address of the line after the one holding ``addr``.

        This is the address a next-line prefetcher fetches on a miss to
        ``addr`` (Section 5.2 of the paper).
        """
        return self.block_address(addr) + self.line_size

    def conflicts_with(self, a: int, b: int) -> bool:
        """True when two addresses map to the same set but different lines."""
        return (
            self.set_index(a) == self.set_index(b)
            and self.block_address(a) != self.block_address(b)
        )

    def with_assoc(self, assoc: int) -> "CacheGeometry":
        """Same capacity and line size, different associativity."""
        return CacheGeometry(size=self.size, assoc=assoc, line_size=self.line_size)

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``16KB 2-way, 64B lines``."""
        if self.size % 1024 == 0:
            size_s = f"{self.size // 1024}KB"
        else:
            size_s = f"{self.size}B"
        way_s = "DM" if self.assoc == 1 else f"{self.assoc}-way"
        return f"{size_s} {way_s}, {self.line_size}B lines"


@dataclass(frozen=True)
class AddressParts:
    """A decomposed byte address: ``tag | index | offset``."""

    tag: int
    index: int
    offset: int
