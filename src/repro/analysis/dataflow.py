"""Flow-aware name resolution for simlint checkers.

The PR-4 checkers were purely syntactic: they could see that a call is
spelled ``np.cumsum(...)`` but not what flows into it.  The invariants
the vector engine leans on (PR 7/8) are *semantic*: a sort is only a
problem when the sorted thing is a numpy array and the kind is not
stable; a ``.sum()`` is only an overflow hazard when the summed array's
dtype is narrower than int64; a ``stats.l1.hits`` store is only part of
the engine contract when ``stats`` really is a ``SystemStats``.

This module provides the small abstract interpreter those rules need:

* an **abstract-value lattice** — :class:`Const` (literal constants,
  folded through arithmetic), :class:`Array` (a numpy array with a
  tracked dtype and a provenance string), :class:`Instance` (an object
  of a known class, remembering the *field path* from the root object it
  was aliased off, e.g. ``stats.l1``), and :data:`UNKNOWN` (top);
* a **forward binding pass** over each scope in source order with joins
  at ``if``/``try`` merges and conservative demotion of loop-carried
  names, so ``l1 = stats.l1`` aliasing and ``x = x.astype(np.int64)``
  re-binding both resolve;
* a **class table** (:func:`collect_classes`) mapping class names to
  their annotated fields, methods and properties — built per module and
  optionally merged with classes collected from *other* modules, which
  is how the cross-engine stats-contract checker resolves
  ``SystemStats()`` constructed in ``system/vector.py`` against the
  dataclass declared in ``cache/stats.py``;
* an **attribute-write log** (:class:`AttributeWrite`): every
  ``obj.attr = ...`` / ``obj.attr += ...`` with the abstract value of
  ``obj`` at that point — the raw material for the write-set contract.

Checkers query a finished analysis with :meth:`DataflowAnalysis.value_of`
(any expression node in the tree), :meth:`~DataflowAnalysis.binding`
(final module-level value of a name) and the ``attribute_writes`` list.
The pass is deliberately *optimistic about straight lines and
pessimistic about everything else*: a value it cannot prove is
``UNKNOWN``, and checkers are written so ``UNKNOWN`` never fires a
finding that a human would have to argue with.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = [
    "UNKNOWN",
    "Array",
    "AttributeWrite",
    "ClassInfo",
    "Const",
    "DataflowAnalysis",
    "Instance",
    "Unknown",
    "Value",
    "assigned_names",
    "collect_classes",
    "dtype_name",
    "join",
]


# ----------------------------------------------------------------------
# The lattice
# ----------------------------------------------------------------------
class Value:
    """Base abstract value; concrete values are the frozen subclasses."""

    __slots__ = ()


@dataclass(frozen=True)
class Unknown(Value):
    """Top: nothing is known.  Compares equal to every other Unknown."""


#: The single shared top element.
UNKNOWN = Unknown()


@dataclass(frozen=True)
class Const(Value):
    """A literal constant (int/float/str/bool/None), folded through
    arithmetic where that cannot raise."""

    value: object


@dataclass(frozen=True)
class Array(Value):
    """A numpy array.  ``dtype`` is the canonical dtype name (``"int64"``,
    ``"bool"``, the platform-dependent ``"int_"``, ...) or ``None`` when
    the array is proven but its dtype is untracked.  ``origin`` is a
    provenance breadcrumb (``"np.zeros"``, ``"astype"``, ``"param"``)
    used only in messages."""

    dtype: Optional[str]
    origin: str = ""


@dataclass(frozen=True)
class Instance(Value):
    """An object of class ``cls``, reached from an object of class
    ``root`` through attribute ``path``.  A freshly constructed object
    has ``root == cls`` and an empty path; ``l1 = stats.l1`` where
    ``stats`` is a ``SystemStats`` yields
    ``Instance(cls="CacheStats", root="SystemStats", path=("l1",))``."""

    cls: str
    root: str
    path: Tuple[str, ...] = ()


def join(a: Value, b: Value) -> Value:
    """Least upper bound of two abstract values (branch merge)."""
    if a == b:
        return a
    if isinstance(a, Array) and isinstance(b, Array) and a.dtype == b.dtype:
        return Array(a.dtype, "join")
    return UNKNOWN


# ----------------------------------------------------------------------
# dtype vocabulary
# ----------------------------------------------------------------------
#: Spelling -> canonical dtype name.  ``int_`` is the platform C long
#: (int32 on 64-bit Windows) — the overflow hazard RPR061 exists for.
_DTYPE_CANON: Dict[str, str] = {
    "bool": "bool",
    "bool_": "bool",
    "int8": "int8",
    "byte": "int8",
    "int16": "int16",
    "short": "int16",
    "int32": "int32",
    "intc": "int32",
    "int64": "int64",
    "longlong": "int64",
    "int": "int_",
    "int_": "int_",
    "long": "int_",
    "intp": "intp",
    "uint8": "uint8",
    "ubyte": "uint8",
    "uint16": "uint16",
    "uint32": "uint32",
    "uint64": "uint64",
    "uintp": "uintp",
    "float": "float64",
    "float_": "float64",
    "float64": "float64",
    "double": "float64",
    "float32": "float32",
    "single": "float32",
    "float16": "float16",
    "half": "float16",
}

#: Integer-family dtypes ordered by width for binop promotion.
_INT_RANK: Dict[str, int] = {
    "bool": 0,
    "int8": 1,
    "uint8": 1,
    "int16": 2,
    "uint16": 2,
    "int32": 3,
    "uint32": 3,
    "int_": 4,  # C long: at most as wide as int64, can be int32
    "intp": 5,
    "uintp": 5,
    "int64": 6,
    "uint64": 6,
}

_FLOAT_DTYPES = frozenset({"float16", "float32", "float64"})


def dtype_name(node: Optional[ast.expr]) -> Optional[str]:
    """Canonical dtype name for a dtype-position expression, else None.

    Recognises ``np.int64`` / ``numpy.float32`` attribute spellings,
    the builtins ``int``/``float``/``bool`` (numpy maps ``int`` to the
    platform C long — exactly the hazard), and string literals.
    """
    if node is None:
        return None
    spelled: Optional[str] = None
    if isinstance(node, ast.Attribute):
        spelled = node.attr
    elif isinstance(node, ast.Name):
        spelled = node.id
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        spelled = node.value
    if spelled is None:
        return None
    return _DTYPE_CANON.get(spelled)


def _promote(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Result dtype of an elementwise binop between dtypes ``a``/``b``."""
    if a is None or b is None:
        return None
    if a == b:
        return a
    if a in _FLOAT_DTYPES or b in _FLOAT_DTYPES:
        return "float64"
    ra, rb = _INT_RANK.get(a), _INT_RANK.get(b)
    if ra is None or rb is None:
        return None
    return a if ra >= rb else b


# ----------------------------------------------------------------------
# Class table
# ----------------------------------------------------------------------
@dataclass
class ClassInfo:
    """Shape of one class: annotated fields, methods, properties, and
    (filled in while its module is analysed) inferred ``self.X`` types."""

    name: str
    fields: Dict[str, Optional[str]] = field(default_factory=dict)
    methods: FrozenSet[str] = frozenset()
    properties: FrozenSet[str] = frozenset()
    is_dataclass: bool = False
    #: ``self.X`` -> joined abstract value, accumulated during analysis.
    attr_types: Dict[str, Value] = field(default_factory=dict)


def _annotation_str(node: Optional[ast.expr]) -> Optional[str]:
    """Dotted string for an annotation node; unwraps Optional[...] and
    string annotations.  None when the shape is not a plain name."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = _annotation_str(node.value)
        if head in {"Optional", "typing.Optional"}:
            return _annotation_str(node.slice)
        if head in {"np.ndarray", "numpy.ndarray", "NDArray", "npt.NDArray"}:
            return head
        return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        parts: List[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            parts.append(cur.id)
            return ".".join(reversed(parts))
    return None


_NDARRAY_ANNS = frozenset(
    {"np.ndarray", "numpy.ndarray", "ndarray", "NDArray", "npt.NDArray"}
)


def _class_is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = _annotation_str(target)
        if name in {"dataclass", "dataclasses.dataclass"}:
            return True
    return False


def collect_classes(tree: ast.AST) -> Dict[str, ClassInfo]:
    """Class table for every ClassDef in ``tree`` (no dataflow yet)."""
    table: Dict[str, ClassInfo] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        fields: Dict[str, Optional[str]] = {}
        methods: Set[str] = set()
        properties: Set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                fields[stmt.target.id] = _annotation_str(stmt.annotation)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                deco_names = {_annotation_str(d) for d in stmt.decorator_list}
                if deco_names & {"property", "cached_property", "functools.cached_property"}:
                    properties.add(stmt.name)
                else:
                    methods.add(stmt.name)
        table.setdefault(
            node.name,
            ClassInfo(
                name=node.name,
                fields=fields,
                methods=frozenset(methods),
                properties=frozenset(properties),
                is_dataclass=_class_is_dataclass(node),
            ),
        )
    return table


# ----------------------------------------------------------------------
# Attribute writes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttributeWrite:
    """One ``obj.attr = value`` / ``obj.attr op= value`` store."""

    node: ast.Attribute
    base: Value
    attr: str
    value: Value
    augmented: bool
    scope: str


def assigned_names(stmts: Iterable[ast.stmt]) -> Set[str]:
    """Every plain name bound anywhere inside ``stmts`` (assignment
    targets, aug-assign targets, loop targets, with-as names)."""
    out: Set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
                out.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                out.add(node.name)
    return out


# ----------------------------------------------------------------------
# numpy call vocabulary
# ----------------------------------------------------------------------
_NP_CONSTRUCTORS = frozenset(
    {
        "zeros", "ones", "empty", "full", "array", "asarray",
        "ascontiguousarray", "arange", "linspace", "fromiter", "frombuffer",
    }
)
_NP_LIKE = frozenset({"zeros_like", "ones_like", "empty_like", "full_like"})
_NP_FLOAT_DEFAULT = frozenset({"zeros", "ones", "empty", "linspace"})
_NP_INDEX_RESULTS = frozenset(
    {"argsort", "flatnonzero", "argwhere", "searchsorted", "argmin",
     "argmax", "lexsort", "bincount", "digitize"}
)
_NP_BOOL_RESULTS = frozenset(
    {"logical_not", "logical_and", "logical_or", "logical_xor", "isin",
     "isnan", "isfinite", "isinf", "equal", "not_equal", "less", "greater",
     "less_equal", "greater_equal", "signbit"}
)
_NP_PRESERVE = frozenset(
    {"sort", "copy", "ravel", "unique", "diff", "repeat", "tile", "roll",
     "ascontiguousarray", "flip", "abs", "absolute", "clip", "minimum",
     "maximum", "concatenate", "where"}
)
_METHOD_PRESERVE = frozenset(
    {"copy", "ravel", "reshape", "flatten", "clip", "repeat", "take",
     "round", "view", "squeeze"}
)
#: Reductions whose integer accumulator is the platform C long unless a
#: dtype= is given — the RPR061 surface.
REDUCTIONS = frozenset({"sum", "prod", "cumsum", "cumprod", "nansum",
                        "nanprod", "nancumsum", "nancumprod"})


def _numpy_aliases(tree: ast.AST) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


# ----------------------------------------------------------------------
# The analysis
# ----------------------------------------------------------------------
class DataflowAnalysis:
    """One forward abstract-interpretation pass over a parsed module.

    ``extra_classes`` merges a class table collected from *other*
    modules (locally defined classes win); the cross-file stats-contract
    checker uses this to resolve constructors of imported dataclasses.
    The instance is immutable after construction — checkers only query.
    """

    def __init__(
        self,
        tree: ast.Module,
        extra_classes: Optional[Mapping[str, ClassInfo]] = None,
    ) -> None:
        self.tree = tree
        self.classes: Dict[str, ClassInfo] = dict(extra_classes or {})
        self.classes.update(collect_classes(tree))
        self.numpy_aliases: FrozenSet[str] = frozenset(_numpy_aliases(tree))
        self.attribute_writes: List[AttributeWrite] = []
        #: class name -> first ``Cls()`` constructor call seen (anchor node).
        self.instantiations: Dict[str, ast.Call] = {}
        self._name_values: Dict[int, Value] = {}
        self._func_returns: Dict[str, Value] = {}
        self._module_env: Dict[str, Value] = {}
        self._collect_function_returns()
        self._exec_block(tree.body, self._module_env, scope="<module>", self_class=None)

    # -- public queries -------------------------------------------------
    def binding(self, name: str) -> Value:
        """Final module-level abstract value bound to ``name``."""
        return self._module_env.get(name, UNKNOWN)

    def value_of(self, node: ast.expr) -> Value:
        """Abstract value of any expression node in the analysed tree."""
        if isinstance(node, ast.Name):
            return self._name_values.get(id(node), UNKNOWN)
        if isinstance(node, ast.Constant):
            return Const(node.value)
        if isinstance(node, ast.Attribute):
            return self._attr_value(self.value_of(node.value), node.attr)
        if isinstance(node, ast.Call):
            return self._call_value(node)
        if isinstance(node, ast.BinOp):
            return self._binop_value(
                self.value_of(node.left), node.op, self.value_of(node.right)
            )
        if isinstance(node, ast.UnaryOp):
            operand = self.value_of(node.operand)
            if isinstance(node.op, ast.Not):
                if isinstance(operand, Const):
                    return Const(not operand.value)
                if isinstance(operand, Array):
                    return Array("bool", "not")
                return UNKNOWN
            if isinstance(operand, Array):
                return operand
            if isinstance(operand, Const) and isinstance(node.op, ast.USub):
                if isinstance(operand.value, (int, float)) and not isinstance(
                    operand.value, bool
                ):
                    return Const(-operand.value)
            return UNKNOWN
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            if any(isinstance(self.value_of(o), Array) for o in operands):
                return Array("bool", "compare")
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            base = self.value_of(node.value)
            if isinstance(base, Array):
                return Array(base.dtype, "subscript")
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            return join(self.value_of(node.body), self.value_of(node.orelse))
        return UNKNOWN

    def dtype_of(self, node: ast.expr) -> Optional[str]:
        """Canonical dtype when ``node`` is a proven array, else None."""
        value = self.value_of(node)
        return value.dtype if isinstance(value, Array) else None

    def numpy_call_name(self, call: ast.Call) -> Optional[str]:
        """``"cumsum"`` for ``np.cumsum(...)`` through a numpy alias."""
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.numpy_aliases
        ):
            return func.attr
        return None

    # -- value transfer -------------------------------------------------
    def _attr_value(self, base: Value, attr: str) -> Value:
        if not isinstance(base, Instance):
            return UNKNOWN
        info = self.classes.get(base.cls)
        if info is None:
            return UNKNOWN
        ann = info.fields.get(attr)
        if ann is not None:
            if ann in self.classes:
                return Instance(cls=ann, root=base.root, path=base.path + (attr,))
            if ann in _NDARRAY_ANNS:
                return Array(None, "field")
            return UNKNOWN
        tracked = info.attr_types.get(attr)
        if tracked is not None:
            return tracked
        return UNKNOWN

    def _dtype_kwarg(self, call: ast.Call) -> Optional[str]:
        for kw in call.keywords:
            if kw.arg == "dtype":
                return dtype_name(kw.value)
        return None

    def has_dtype_kwarg(self, call: ast.Call) -> bool:
        return any(kw.arg == "dtype" for kw in call.keywords)

    def _call_value(self, node: ast.Call) -> Value:
        func = node.func
        # Constructor of a known class / call of an annotated local function.
        if isinstance(func, ast.Name):
            if func.id in self.classes:
                self.instantiations.setdefault(func.id, node)
                return Instance(cls=func.id, root=func.id, path=())
            ret = self._func_returns.get(func.id)
            if ret is not None:
                return ret
            return UNKNOWN
        if not isinstance(func, ast.Attribute):
            return UNKNOWN
        # np.* calls through a recognised alias.
        np_name = self.numpy_call_name(node)
        if np_name is not None:
            return self._numpy_call_value(node, np_name)
        # astype() is numpy-specific enough to trust even when the
        # receiver is untracked: the result dtype is the argument.
        if func.attr == "astype":
            target = self._dtype_kwarg(node)
            if target is None and node.args:
                target = dtype_name(node.args[0])
            return Array(target, "astype")
        # Method calls: resolve through the receiver's abstract value.
        recv = self.value_of(func.value)
        if isinstance(recv, Array):
            if func.attr in _METHOD_PRESERVE:
                return Array(recv.dtype, func.attr)
            if func.attr in REDUCTIONS:
                explicit = self._dtype_kwarg(node)
                if explicit is not None:
                    return Array(explicit, func.attr)
                return Array(_promote(recv.dtype, "int_") if recv.dtype in _INT_RANK else recv.dtype, func.attr)
            if func.attr in {"argsort", "argmin", "argmax"}:
                return Array("intp", func.attr)
            if func.attr in {"max", "min"}:
                return Array(recv.dtype, func.attr)
        return UNKNOWN

    def _numpy_call_value(self, node: ast.Call, fname: str) -> Value:
        explicit = self._dtype_kwarg(node)
        if fname in _NP_CONSTRUCTORS:
            if explicit is not None:
                return Array(explicit, f"np.{fname}")
            if fname in _NP_FLOAT_DEFAULT:
                return Array("float64", f"np.{fname}")
            if fname == "arange":
                arg_values = [self.value_of(a) for a in node.args]
                if arg_values and all(
                    isinstance(v, Const) and isinstance(v.value, int)
                    for v in arg_values
                ):
                    return Array("int_", "np.arange")
                return Array(None, "np.arange")
            if fname in {"array", "asarray", "ascontiguousarray"} and node.args:
                arg = self.value_of(node.args[0])
                if isinstance(arg, Array):
                    return Array(arg.dtype, f"np.{fname}")
            return Array(None, f"np.{fname}")
        if fname in _NP_LIKE:
            if explicit is not None:
                return Array(explicit, f"np.{fname}")
            if node.args:
                arg = self.value_of(node.args[0])
                if isinstance(arg, Array):
                    return Array(arg.dtype, f"np.{fname}")
            return Array(None, f"np.{fname}")
        if fname in _NP_INDEX_RESULTS:
            return Array("intp", f"np.{fname}")
        if fname in _NP_BOOL_RESULTS:
            return Array("bool", f"np.{fname}")
        if fname in REDUCTIONS:
            if explicit is not None:
                return Array(explicit, f"np.{fname}")
            if node.args:
                arg = self.value_of(node.args[0])
                if isinstance(arg, Array) and arg.dtype in _INT_RANK:
                    return Array(_promote(arg.dtype, "int_"), f"np.{fname}")
                if isinstance(arg, Array):
                    return Array(arg.dtype, f"np.{fname}")
            return Array(None, f"np.{fname}")
        if fname in _NP_PRESERVE:
            dtypes: List[Optional[str]] = []
            for arg in node.args:
                av = self.value_of(arg)
                if isinstance(av, Array):
                    dtypes.append(av.dtype)
                elif isinstance(arg, (ast.List, ast.Tuple)):
                    for elt in arg.elts:
                        ev = self.value_of(elt)
                        if isinstance(ev, Array):
                            dtypes.append(ev.dtype)
            agreed = dtypes[0] if dtypes and all(d == dtypes[0] for d in dtypes) else None
            return Array(agreed, f"np.{fname}")
        canon = _DTYPE_CANON.get(fname)
        if canon is not None:
            # np.int64(x) etc: a zero-dim scalar; behaves like its dtype.
            return Array(canon, "scalar")
        return UNKNOWN

    def _binop_value(self, left: Value, op: ast.operator, right: Value) -> Value:
        if isinstance(left, Const) and isinstance(right, Const):
            return self._fold_const(left, op, right)
        array = left if isinstance(left, Array) else right if isinstance(right, Array) else None
        if array is None:
            return UNKNOWN
        other = right if array is left else left
        if isinstance(op, ast.Div):
            return Array("float64", "binop")
        if isinstance(other, Array):
            return Array(_promote(array.dtype, other.dtype), "binop")
        if isinstance(other, Const) and isinstance(other.value, float):
            return Array("float64", "binop")
        # int scalar / unknown scalar: numpy keeps the array dtype.
        return Array(array.dtype, "binop")

    @staticmethod
    def _fold_const(left: Const, op: ast.operator, right: Const) -> Value:
        lv, rv = left.value, right.value
        if not isinstance(lv, (int, float)) or not isinstance(rv, (int, float)):
            return UNKNOWN
        try:
            if isinstance(op, ast.Add):
                return Const(lv + rv)
            if isinstance(op, ast.Sub):
                return Const(lv - rv)
            if isinstance(op, ast.Mult):
                return Const(lv * rv)
            if isinstance(op, ast.FloorDiv):
                return Const(lv // rv)
            if isinstance(op, ast.Mod):
                return Const(lv % rv)
            if isinstance(op, ast.Div):
                return Const(lv / rv)
            if isinstance(op, ast.Pow):
                return Const(lv**rv)
            if isinstance(lv, int) and isinstance(rv, int):
                if isinstance(op, ast.LShift):
                    return Const(lv << rv)
                if isinstance(op, ast.RShift):
                    return Const(lv >> rv)
                if isinstance(op, ast.BitAnd):
                    return Const(lv & rv)
                if isinstance(op, ast.BitOr):
                    return Const(lv | rv)
                if isinstance(op, ast.BitXor):
                    return Const(lv ^ rv)
        except (ZeroDivisionError, OverflowError, ValueError):
            return UNKNOWN
        return UNKNOWN

    # -- annotations ----------------------------------------------------
    def _ann_value(self, node: Optional[ast.expr]) -> Value:
        ann = _annotation_str(node)
        if ann is None:
            return UNKNOWN
        if ann in self.classes:
            return Instance(cls=ann, root=ann, path=())
        if ann in _NDARRAY_ANNS:
            return Array(None, "param")
        return UNKNOWN

    def _collect_function_returns(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                value = self._ann_value(stmt.returns)
                if not isinstance(value, Unknown):
                    self._func_returns[stmt.name] = value

    # -- the walk -------------------------------------------------------
    def _record_loads(self, node: ast.AST, env: Dict[str, Value]) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                self._name_values[id(sub)] = env.get(sub.id, UNKNOWN)

    def _exec_block(
        self,
        stmts: Sequence[ast.stmt],
        env: Dict[str, Value],
        scope: str,
        self_class: Optional[str],
    ) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env, scope, self_class)

    def _exec_stmt(
        self,
        stmt: ast.stmt,
        env: Dict[str, Value],
        scope: str,
        self_class: Optional[str],
    ) -> None:
        if isinstance(stmt, ast.Assign):
            self._record_loads(stmt, env)
            value = self.value_of(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, value, env, scope, self_class)
        elif isinstance(stmt, ast.AnnAssign):
            self._record_loads(stmt, env)
            if stmt.value is not None:
                value = self.value_of(stmt.value)
                if isinstance(value, Unknown):
                    value = self._ann_value(stmt.annotation)
            else:
                value = self._ann_value(stmt.annotation)
            self._bind_target(stmt.target, value, env, scope, self_class)
        elif isinstance(stmt, ast.AugAssign):
            self._record_loads(stmt, env)
            rhs = self.value_of(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Name):
                old = env.get(target.id, UNKNOWN)
                # Record the pre-state under the *target* node too, so
                # checkers can ask what `x += ...` operated on.
                self._name_values[id(target)] = old
                env[target.id] = self._binop_value(old, stmt.op, rhs)
            elif isinstance(target, ast.Attribute):
                base = self.value_of(target.value)
                self.attribute_writes.append(
                    AttributeWrite(target, base, target.attr, rhs, True, scope)
                )
        elif isinstance(stmt, ast.If):
            self._record_loads(stmt.test, env)
            then_env = dict(env)
            self._exec_block(stmt.body, then_env, scope, self_class)
            else_env = dict(env)
            self._exec_block(stmt.orelse, else_env, scope, self_class)
            merged: Dict[str, Value] = {}
            for key in then_env.keys() | else_env.keys():
                merged[key] = join(
                    then_env.get(key, UNKNOWN), else_env.get(key, UNKNOWN)
                )
            env.clear()
            env.update(merged)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._record_loads(stmt.iter, env)
            carried = assigned_names(stmt.body) | assigned_names([stmt])
            for name in carried:
                env[name] = UNKNOWN
            self._bind_target(stmt.target, UNKNOWN, env, scope, self_class)
            self._exec_block(stmt.body, env, scope, self_class)
            self._exec_block(stmt.orelse, env, scope, self_class)
        elif isinstance(stmt, ast.While):
            carried = assigned_names(stmt.body)
            for name in carried:
                env[name] = UNKNOWN
            self._record_loads(stmt.test, env)
            self._exec_block(stmt.body, env, scope, self_class)
            self._exec_block(stmt.orelse, env, scope, self_class)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self._exec_block(stmt.body, body_env, scope, self_class)
            branch_envs = [body_env]
            for handler in stmt.handlers:
                handler_env = dict(env)
                if handler.name is not None:
                    handler_env[handler.name] = UNKNOWN
                self._exec_block(handler.body, handler_env, scope, self_class)
                branch_envs.append(handler_env)
            merged = {}
            all_keys: Set[str] = set()
            for branch in branch_envs:
                all_keys |= branch.keys()
            for key in all_keys:
                value = branch_envs[0].get(key, UNKNOWN)
                for branch in branch_envs[1:]:
                    value = join(value, branch.get(key, UNKNOWN))
                merged[key] = value
            env.clear()
            env.update(merged)
            self._exec_block(stmt.orelse, env, scope, self_class)
            self._exec_block(stmt.finalbody, env, scope, self_class)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._record_loads(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind_target(
                        item.optional_vars, UNKNOWN, env, scope, self_class
                    )
            self._exec_block(stmt.body, env, scope, self_class)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in stmt.decorator_list:
                self._record_loads(deco, env)
            for default in [*stmt.args.defaults, *stmt.args.kw_defaults]:
                if default is not None:
                    self._record_loads(default, env)
            fn_env = dict(env)
            args = stmt.args
            all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
            for index, arg in enumerate(all_args):
                if (
                    index == 0
                    and arg.arg == "self"
                    and self_class is not None
                    and not any(
                        _annotation_str(d) == "staticmethod"
                        for d in stmt.decorator_list
                    )
                ):
                    fn_env["self"] = Instance(
                        cls=self_class, root=self_class, path=()
                    )
                else:
                    fn_env[arg.arg] = self._ann_value(arg.annotation)
            for vararg in (args.vararg, args.kwarg):
                if vararg is not None:
                    fn_env[vararg.arg] = UNKNOWN
            self._exec_block(
                stmt.body, fn_env, f"{scope}.{stmt.name}", self_class
            )
            env[stmt.name] = UNKNOWN
        elif isinstance(stmt, ast.ClassDef):
            for deco in stmt.decorator_list:
                self._record_loads(deco, env)
            class_env = dict(env)
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._exec_stmt(
                        sub, class_env, f"{scope}.{stmt.name}", stmt.name
                    )
                else:
                    self._exec_stmt(sub, class_env, f"{scope}.{stmt.name}", None)
            env[stmt.name] = UNKNOWN
        else:
            # Expr / Return / Assert / Raise / Delete / Import / Pass ...
            self._record_loads(stmt, env)

    def _bind_target(
        self,
        target: ast.expr,
        value: Value,
        env: Dict[str, Value],
        scope: str,
        self_class: Optional[str],
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, ast.Attribute):
            base = self.value_of(target.value)
            self.attribute_writes.append(
                AttributeWrite(target, base, target.attr, value, False, scope)
            )
            if (
                self_class is not None
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                info = self.classes.get(self_class)
                if info is not None:
                    existing = info.attr_types.get(target.attr)
                    info.attr_types[target.attr] = (
                        value if existing is None else join(existing, value)
                    )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, UNKNOWN, env, scope, self_class)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, UNKNOWN, env, scope, self_class)
        # Subscript targets carry no name binding we track.
