"""The simlint engine: file collection, scoping, suppression, reporting.

``repro.analysis`` is a *domain-specific* static-analysis pass: each
checker encodes an invariant this repository has already been bitten by
(or now depends on), keyed by an ``RPR0xx`` error code.  The framework
here is deliberately small:

* a :class:`ModuleInfo` per checked file (parsed AST + source lines +
  scope tags),
* a :class:`Checker` base class with a per-module pass and an optional
  cross-module ``finalize`` pass (used by the obs-schema checker, whose
  two sides live in different files),
* ``# repro: noqa`` / ``# repro: noqa[RPR001,RPR040]`` line suppressions,
* deterministic, sorted output (the linter itself must obey the repo's
  determinism rules — its output feeds CI diffs).

Scope tags drive applicability: the determinism rules apply to the
simulation core but not to the harness (whose backoff jitter *is*
seeded wall-clock-free already, but which legitimately sleeps), the
concurrency rules apply to the harness only, and so on.  A fixture file
can override its computed tags with a ``# repro-analysis-scope: ...``
directive so checker tests are self-contained.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.dataflow import DataflowAnalysis

#: Sub-packages of ``repro`` forming the deterministic simulation core.
SIMCORE_PACKAGES = frozenset(
    {"cache", "buffers", "core", "system", "workloads", "extensions", "mrc"}
)

#: Directive overriding a file's computed scope tags (fixtures use this).
_SCOPE_DIRECTIVE = re.compile(r"#\s*repro-analysis-scope:\s*([\w\s,-]+)")

#: Line suppression: ``# repro: noqa`` or ``# repro: noqa[RPR001,RPR002]``.
_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Z0-9,\s]+)\])?")


@dataclass(frozen=True)
class Violation:
    """One finding, anchored to a file position."""

    code: str
    message: str
    path: str
    line: int
    col: int
    checker: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "checker": self.checker,
        }


@dataclass
class ModuleInfo:
    """One parsed source file plus everything checkers need to scope it."""

    path: Path
    rel: str
    tree: ast.Module
    lines: List[str]
    tags: FrozenSet[str]
    _dataflow: Optional[DataflowAnalysis] = field(
        default=None, repr=False, compare=False
    )

    def dataflow(self) -> DataflowAnalysis:
        """Flow analysis of this module, built on first use and cached.

        Resolves against classes defined *in this module* only; a
        checker that needs classes from other files (the stats-contract
        join) builds its own :class:`DataflowAnalysis` with a merged
        class table in ``finalize``.
        """
        if self._dataflow is None:
            self._dataflow = DataflowAnalysis(self.tree)
        return self._dataflow

    def violation(
        self, checker: "Checker", code: str, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            code=code,
            message=message,
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            checker=checker.name,
        )


class Checker:
    """Base class: subclasses set ``name``/``codes``/``tags`` and override
    :meth:`check_module` (and :meth:`finalize` for cross-file rules).

    ``tags`` is the set of scope tags a module must intersect for the
    checker to visit it; ``None`` means every checked module.
    """

    name: str = "checker"
    #: code -> one-line description (the catalog ``--list-checkers`` prints).
    codes: Dict[str, str] = {}
    tags: Optional[FrozenSet[str]] = None

    def applies(self, module: ModuleInfo) -> bool:
        return self.tags is None or bool(self.tags & module.tags)

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        return iter(())

    def finalize(self) -> Iterator[Violation]:
        """Cross-module findings, called once after every module pass."""
        return iter(())


# ----------------------------------------------------------------------
# Scoping
# ----------------------------------------------------------------------
def compute_tags(rel: str, source_head: str) -> FrozenSet[str]:
    """Scope tags for a file: directive wins, else derived from its path.

    Tags: ``src`` (library code under ``src/repro``), ``simcore``,
    ``harness``, ``obs``, ``analysis``, ``experiments``, ``serve``,
    ``test``.  A
    simulation-core file additionally carries its own package name
    (``cache``, ``mrc``, ...) so a checker can target one subsystem
    without widening its scope to the whole core.
    """
    match = _SCOPE_DIRECTIVE.search(source_head)
    if match:
        tags = {t for t in re.split(r"[,\s]+", match.group(1).strip()) if t}
        return frozenset(tags)
    parts = Path(rel).parts
    tags = set()
    if "repro" in parts:
        package = parts[parts.index("repro") + 1] if parts[-1] != "repro" else ""
        package = package[:-3] if package.endswith(".py") else package
        tags.add("src")
        if package in SIMCORE_PACKAGES:
            tags.add("simcore")
            tags.add(package)
        elif package in {
            "harness",
            "obs",
            "analysis",
            "experiments",
            "faults",
            "serve",
        }:
            tags.add(package)
    if "tests" in parts:
        tags.add("test")
    return frozenset(tags)


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into ``.py`` files, sorted, deduplicated.

    Directories are walked recursively; ``fixtures/analysis`` trees are
    skipped during the walk (they hold *deliberate* violations for the
    checker tests) but a fixture given explicitly as a file argument is
    always checked — that is how the tests drive them.
    """
    seen = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                rel_parts = sub.parts
                if "fixtures" in rel_parts and "analysis" in rel_parts:
                    continue
                if sub not in seen:
                    seen.add(sub)
                    yield sub
        elif path.suffix == ".py":
            if path not in seen:
                seen.add(path)
                yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {raw}")


# ----------------------------------------------------------------------
# Suppression
# ----------------------------------------------------------------------
def suppressed(violation: Violation, lines: List[str]) -> bool:
    """Whether the violation's source line carries a matching noqa."""
    if not 1 <= violation.line <= len(lines):
        return False
    match = _NOQA.search(lines[violation.line - 1])
    if not match:
        return False
    if match.group(1) is None:
        return True
    codes = {c.strip() for c in match.group(1).split(",")}
    return violation.code in codes


# ----------------------------------------------------------------------
# The run
# ----------------------------------------------------------------------
@dataclass
class RunResult:
    """Everything one engine run produced."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    errors: List[str] = field(default_factory=list)


def relpath_for(path: Path, root: Optional[Path] = None) -> str:
    base = root or Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def load_module(path: Path, root: Optional[Path] = None) -> Tuple[Optional[ModuleInfo], Optional[str]]:
    """Parse one file into a ModuleInfo, or return an error string."""
    rel = relpath_for(path, root)
    try:
        source = path.read_text()
    except OSError as exc:
        return None, f"{rel}: unreadable ({exc})"
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        return None, f"{rel}: syntax error ({exc.msg} at line {exc.lineno})"
    lines = source.splitlines()
    head = "\n".join(lines[:10])
    return ModuleInfo(path, rel, tree, lines, compute_tags(rel, head)), None


def run(
    paths: Sequence[str],
    checkers: Sequence[Checker],
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> RunResult:
    """Run ``checkers`` over ``paths``; returns sorted, noqa-filtered findings.

    ``select``/``ignore`` are code prefixes (``RPR0`` selects the whole
    family), applied after suppression: select first (empty = all), then
    ignore.
    """
    result = RunResult()
    lines_by_path: Dict[str, List[str]] = {}
    raw: List[Violation] = []
    for path in iter_python_files(paths):
        module, error = load_module(path, root)
        if module is None:
            assert error is not None
            result.errors.append(error)
            continue
        result.files_checked += 1
        lines_by_path[module.rel] = module.lines
        for checker in checkers:
            if checker.applies(module):
                raw.extend(checker.check_module(module))
    for checker in checkers:
        raw.extend(checker.finalize())

    def kept(v: Violation) -> bool:
        lines = lines_by_path.get(v.path)
        if lines is not None and suppressed(v, lines):
            return False
        if select and not any(v.code.startswith(s) for s in select):
            return False
        if ignore and any(v.code.startswith(s) for s in ignore):
            return False
        return True

    deduped: Dict[Tuple[str, int, int, str], Violation] = {}
    for v in raw:
        if kept(v):
            deduped.setdefault((v.path, v.line, v.col, v.code), v)
    result.violations = sorted(
        deduped.values(), key=lambda v: (v.path, v.line, v.col, v.code)
    )
    return result


# ----------------------------------------------------------------------
# Shared AST helpers (used by several checkers)
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = dotted_name(target)
        if name in {"dataclass", "dataclasses.dataclass"}:
            return True
    return False


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def all_checkers() -> List[Checker]:
    """The full registered checker set, in catalog order."""
    from repro.analysis.checkers import ALL_CHECKERS

    return [cls() for cls in ALL_CHECKERS]
