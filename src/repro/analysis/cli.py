"""``python -m repro.analysis`` — the simlint command line.

Usage::

    python -m repro.analysis src tests
    python -m repro.analysis src --format json
    python -m repro.analysis src --format github   # PR annotations
    python -m repro.analysis src --format sarif > simlint.sarif
    python -m repro.analysis src --select RPR06 --ignore RPR013
    python -m repro.analysis --list-checkers

Exit status: 0 clean, 1 violations found, 2 usage or I/O error — the
same contract as ``repro.obs.validate``, so CI treats both uniformly.
``--select``/``--ignore`` take full codes or family prefixes
(``RPR06`` is the whole numpy-hygiene family); a prefix that matches
nothing in the catalog is a usage error (exit 2), not a silent no-op.
Directories are walked recursively; ``tests/fixtures/analysis`` is
skipped unless a fixture file is named explicitly (the fixtures are
deliberate violations that the checker tests drive one file at a time).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.analysis.checkers import catalog
from repro.analysis.core import RunResult, Violation, all_checkers, run

FORMATS = ("text", "json", "github", "sarif")


def _code_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    codes = [c.strip() for c in raw.split(",") if c.strip()]
    return codes or None


def _validate_prefixes(
    parser: argparse.ArgumentParser, option: str, codes: Optional[List[str]]
) -> None:
    """Reject a --select/--ignore entry no catalog code starts with.

    A typo like ``RPR6`` (for ``RPR06``) or ``rpr060`` would otherwise
    select nothing and pass a gate vacuously.
    """
    if not codes:
        return
    known = catalog()
    for entry in codes:
        if not any(code.startswith(entry) for code in known):
            parser.error(
                f"{option}: {entry!r} matches no known code or family "
                f"prefix (see --list-checkers)"
            )


def _gh_escape(text: str, properties: bool = False) -> str:
    """Escape data for a GitHub Actions workflow command."""
    text = text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if properties:
        text = text.replace(":", "%3A").replace(",", "%2C")
    return text


def _print_github(result: RunResult) -> None:
    """One ``::error`` workflow command per finding: the lint job's log
    lines become inline PR annotations."""
    for v in result.violations:
        print(
            f"::error file={_gh_escape(v.path, properties=True)},"
            f"line={v.line},col={v.col},"
            f"title={_gh_escape(v.code, properties=True)}"
            f"::{_gh_escape(v.message)}"
        )


def _sarif_result(v: Violation) -> Dict[str, Any]:
    return {
        "ruleId": v.code,
        "level": "error",
        "message": {"text": v.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": v.path},
                    "region": {"startLine": v.line, "startColumn": v.col},
                }
            }
        ],
    }


def _sarif_payload(result: RunResult) -> Dict[str, Any]:
    """Minimal SARIF 2.1.0 log: one run, rules from the catalog."""
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static_analysis.md"
                        ),
                        "rules": [
                            {
                                "id": code,
                                "shortDescription": {"text": description},
                            }
                            for code, description in catalog().items()
                        ],
                    }
                },
                "results": [_sarif_result(v) for v in result.violations],
            }
        ],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analysis (simlint): stats "
        "completeness, determinism, scheduler concurrency, obs schema "
        "coherence, hot-path hygiene, durability, numpy dtype/stability "
        "hygiene and the cross-engine stats contract.",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH", help="files or directories to check"
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default=None,
        dest="output_format",
        help="output format: text (default), json, github (workflow-"
        "command annotations), sarif (SARIF 2.1.0 on stdout)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="alias for --format json (kept for older CI configs)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated codes or family prefixes to keep "
        "(e.g. RPR06,RPR040)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated codes or family prefixes to drop",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="print the error-code catalog and exit",
    )
    args = parser.parse_args(argv)
    output_format = args.output_format or ("json" if args.json else "text")

    if args.list_checkers:
        for code, description in catalog().items():
            print(f"{code}  {description}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis src tests)")

    select = _code_list(args.select)
    ignore = _code_list(args.ignore)
    _validate_prefixes(parser, "--select", select)
    _validate_prefixes(parser, "--ignore", ignore)

    try:
        result = run(
            args.paths,
            all_checkers(),
            select=select,
            ignore=ignore,
        )
    except FileNotFoundError as exc:
        print(f"analysis: {exc}", file=sys.stderr)
        return 2

    for error in result.errors:
        print(f"analysis: {error}", file=sys.stderr)

    if output_format == "json":
        print(
            json.dumps(
                {
                    "files_checked": result.files_checked,
                    "violations": [v.to_dict() for v in result.violations],
                    "errors": result.errors,
                },
                indent=2,
                sort_keys=True,
            )
        )
    elif output_format == "sarif":
        print(json.dumps(_sarif_payload(result), indent=2, sort_keys=True))
    else:
        if output_format == "github":
            _print_github(result)
        else:
            for violation in result.violations:
                print(violation.format())
        summary = (
            f"{len(result.violations)} violation(s) in "
            f"{result.files_checked} file(s)"
        )
        print(
            f"analysis: {'FAIL — ' + summary if result.violations else 'OK — ' + summary}",
            file=sys.stderr,
        )

    if result.errors:
        return 2
    return 1 if result.violations else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
