"""``python -m repro.analysis`` — the simlint command line.

Usage::

    python -m repro.analysis src tests
    python -m repro.analysis src --json
    python -m repro.analysis src --select RPR01 --ignore RPR013
    python -m repro.analysis --list-checkers

Exit status: 0 clean, 1 violations found, 2 usage or I/O error — the
same contract as ``repro.obs.validate``, so CI treats both uniformly.
Directories are walked recursively; ``tests/fixtures/analysis`` is
skipped unless a fixture file is named explicitly (the fixtures are
deliberate violations that the checker tests drive one file at a time).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.checkers import catalog
from repro.analysis.core import all_checkers, run


def _code_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    codes = [c.strip() for c in raw.split(",") if c.strip()]
    return codes or None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Repo-specific static analysis (simlint): stats "
        "completeness, determinism, scheduler concurrency, obs schema "
        "coherence and hot-path hygiene.",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH", help="files or directories to check"
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable findings on stdout"
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated code prefixes to keep (e.g. RPR01,RPR040)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated code prefixes to drop",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="print the error-code catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_checkers:
        for code, description in catalog().items():
            print(f"{code}  {description}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis src tests)")

    try:
        result = run(
            args.paths,
            all_checkers(),
            select=_code_list(args.select),
            ignore=_code_list(args.ignore),
        )
    except FileNotFoundError as exc:
        print(f"analysis: {exc}", file=sys.stderr)
        return 2

    for error in result.errors:
        print(f"analysis: {error}", file=sys.stderr)

    if args.json:
        print(
            json.dumps(
                {
                    "files_checked": result.files_checked,
                    "violations": [v.to_dict() for v in result.violations],
                    "errors": result.errors,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for violation in result.violations:
            print(violation.format())
        summary = (
            f"{len(result.violations)} violation(s) in "
            f"{result.files_checked} file(s)"
        )
        print(
            f"analysis: {'FAIL — ' + summary if result.violations else 'OK — ' + summary}",
            file=sys.stderr,
        )

    if result.errors:
        return 2
    return 1 if result.violations else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
