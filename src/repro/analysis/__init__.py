"""``repro.analysis`` — simlint, the repo-specific static-analysis pass.

Eight rule families, each earned the hard way (see
``docs/static_analysis.md`` for the catalog with the original bugs):

* **stats-completeness** (RPR001-003) — statistics dataclasses must
  route ``reset()``/``merge()`` through :func:`dataclasses.fields` and
  keep counters ``int``;
* **determinism** (RPR010-013) — no wall clock, unseeded RNG, OS
  entropy or set-order dependence in the simulation core;
* **concurrency** (RPR020-022) — harness child-process lifecycle under
  the serialised lock, no bare shared-dict mutation from scheduler
  threads;
* **obs-schema** (RPR030-032) — emitted event names and the validator
  schema must agree exactly, in both directions;
* **hot-path** (RPR040-042) — no repeated attribute chains or repeated
  ``tolist()`` slicing in simulation-core loops, no ``print()`` in
  library code;
* **durability** (RPR050-051) — harness/obs persistence goes through
  the fsync'd atomic-write path;
* **numpy-hygiene** (RPR060-064) — stable sorts, 64-bit reduction
  accumulators, hoisted ``astype``, no chained boolean-mask indexing,
  no dtype-changing in-place ops (dataflow-backed: rules fire on
  *proven* arrays and dtypes, see :mod:`repro.analysis.dataflow`);
* **stats-contract** (RPR070-072) — the scalar and vector engines'
  ``SystemStats`` write sets and measurement cadence must agree
  (cross-file join).

Run ``python -m repro.analysis src tests`` (CI does, before anything
else).  Suppress a finding with ``# repro: noqa[RPR003]`` on its line —
every suppression should say *why* in an adjacent comment.
"""

from repro.analysis.checkers import ALL_CHECKERS, catalog
from repro.analysis.core import (
    Checker,
    ModuleInfo,
    RunResult,
    Violation,
    all_checkers,
    run,
)

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "ModuleInfo",
    "RunResult",
    "Violation",
    "all_checkers",
    "catalog",
    "run",
]
