"""RPR030-032 — event names vs. the validator schema, both directions.

The observability contract is two-sided: the emit side
(:class:`repro.obs.events.EventLog`) only accepts names in
``EVENT_TYPES``, and the validate side (``python -m repro.obs.validate``)
only accepts names in ``REQUIRED_FIELDS``.  A name present on one side
but not the other means either events that can never validate (silent
telemetry loss in CI) or schema entries that nothing ever emits (dead
contract).  This checker joins the two sides *statically* across files:

* every string literal passed to an ``.emit("name", ...)`` call must be
  a schema name (RPR030);
* every schema name must be emitted by at least one call site (RPR031);
* ``EVENT_TYPES`` and ``REQUIRED_FIELDS`` must agree exactly (RPR032) —
  the same drift the runtime validator now also refuses.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis.core import Checker, ModuleInfo, Violation, literal_str


class ObsSchemaChecker(Checker):
    name = "obs-schema"
    codes: Dict[str, str] = {
        "RPR030": "event name emitted but absent from the validator schema",
        "RPR031": "schema event name never emitted anywhere",
        "RPR032": "EVENT_TYPES and REQUIRED_FIELDS disagree",
    }
    # Collects from library code only: tests emit deliberately-bogus
    # names when exercising the runtime guard, and those are not part of
    # the contract.
    tags: Optional[FrozenSet[str]] = frozenset({"src"})

    def __init__(self) -> None:
        # (name, module, node) per emit site / schema entry, in visit order.
        self._emits: List[Tuple[str, ModuleInfo, ast.AST]] = []
        self._event_types: List[Tuple[str, ModuleInfo, ast.AST]] = []
        self._required: List[Tuple[str, ModuleInfo, ast.AST]] = []

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                self._collect_emit(module, node)
            elif isinstance(node, ast.Assign):
                self._collect_schema(module, node)
        return iter(())

    def _collect_emit(self, module: ModuleInfo, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "emit":
            return
        if not node.args:
            return
        name = literal_str(node.args[0])
        if name is not None:
            self._emits.append((name, module, node))

    def _collect_schema(self, module: ModuleInfo, node: ast.Assign) -> None:
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "EVENT_TYPES" in targets:
            for name, sub in _string_elements(node.value):
                self._event_types.append((name, module, sub))
        if "REQUIRED_FIELDS" in targets and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                name = literal_str(key) if key is not None else None
                if name is not None:
                    self._required.append((name, module, key))

    def finalize(self) -> Iterator[Violation]:
        # No schema in the checked set (e.g. a run over a subtree that
        # excludes obs/): nothing to join against, so stay silent rather
        # than flagging every emit site.
        if not self._event_types and not self._required:
            return
        schema = {n for n, _, _ in self._event_types} | {
            n for n, _, _ in self._required
        }
        emitted = {n for n, _, _ in self._emits}
        # `emit` is also the generic entry point spans go through:
        # EventLog.emit_span forwards with the literal "span", which the
        # collection above already sees, so no special-casing is needed.
        for name, module, node in self._emits:
            if name not in schema:
                yield module.violation(
                    self,
                    "RPR030",
                    node,
                    f"event {name!r} is emitted but absent from the "
                    f"validator schema (EVENT_TYPES/REQUIRED_FIELDS)",
                )
        for name, module, node in self._event_types + self._required:
            if name not in emitted:
                yield module.violation(
                    self,
                    "RPR031",
                    node,
                    f"schema event {name!r} is never emitted by any call "
                    f"site — dead contract entry",
                )
        types = {n for n, _, _ in self._event_types}
        required = {n for n, _, _ in self._required}
        if self._event_types and self._required and types != required:
            only_types = sorted(types - required)
            only_required = sorted(required - types)
            _, module, node = (self._event_types + self._required)[0]
            details = []
            if only_types:
                details.append(f"only in EVENT_TYPES: {', '.join(only_types)}")
            if only_required:
                details.append(
                    f"only in REQUIRED_FIELDS: {', '.join(only_required)}"
                )
            yield module.violation(
                self,
                "RPR032",
                node,
                "EVENT_TYPES and REQUIRED_FIELDS disagree "
                f"({'; '.join(details)})",
            )


def _string_elements(node: ast.AST) -> List[Tuple[str, ast.AST]]:
    """String constants inside a (frozen)set/list/tuple literal, possibly
    wrapped in a ``frozenset({...})`` call."""
    if isinstance(node, ast.Call) and node.args:
        return _string_elements(node.args[0])
    out: List[Tuple[str, ast.AST]] = []
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        for element in node.elts:
            value = literal_str(element)
            if value is not None:
                out.append((value, element))
    return out
