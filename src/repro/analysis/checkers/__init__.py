"""Checker registry: every rule family, in catalog (code) order.

To add a checker: subclass :class:`repro.analysis.core.Checker`, give it
a ``name``, a ``codes`` dict and scope ``tags``, implement
``check_module`` (and ``finalize`` for cross-file rules), then append
the class here and add one passing and one failing fixture under
``tests/fixtures/analysis/`` — ``tests/test_analysis.py`` asserts every
registered code fires on at least one fixture.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.analysis.checkers.concurrency import ConcurrencyChecker
from repro.analysis.checkers.determinism import (
    DeterminismChecker,
    SetOrderConstructorChecker,
)
from repro.analysis.checkers.durability import DurabilityChecker
from repro.analysis.checkers.hotpath import HotPathChecker
from repro.analysis.checkers.numpy_hygiene import NumpyHygieneChecker
from repro.analysis.checkers.obs_schema import ObsSchemaChecker
from repro.analysis.checkers.stats import StatsCompletenessChecker
from repro.analysis.checkers.stats_contract import StatsContractChecker
from repro.analysis.core import Checker

ALL_CHECKERS: List[Type[Checker]] = [
    StatsCompletenessChecker,
    DeterminismChecker,
    SetOrderConstructorChecker,
    ConcurrencyChecker,
    ObsSchemaChecker,
    HotPathChecker,
    DurabilityChecker,
    NumpyHygieneChecker,
    StatsContractChecker,
]


def catalog() -> Dict[str, str]:
    """code -> description across every registered checker."""
    out: Dict[str, str] = {}
    for cls in ALL_CHECKERS:
        for code, description in cls.codes.items():
            out.setdefault(code, description)
    return dict(sorted(out.items()))
