"""RPR060-RPR064: dtype- and stability-aware numpy hygiene (sim core).

The vector engine (PR 7/8) is a pile of numpy array algebra whose
byte-identity contract with the scalar reference engine rests on
properties the interpreter will not check for us:

* **sort stability** — set-partitioned replay sorts references by L1
  set and depends on equal keys keeping their program order.  numpy's
  default introsort makes no such promise (RPR060).
* **accumulator width** — ``sum``/``cumsum``/``prod`` over integer
  arrays accumulate at the platform C long unless told otherwise:
  int32 on 64-bit Windows, where a prefix sum over a long trace
  silently wraps (RPR061).
* **copy discipline** — ``astype`` always copies, and ``x[mask][...]``
  materialises the mask selection before indexing it again; both are
  pure waste inside a hot loop, and a *store* through a chained mask is
  silently dropped (RPR062/RPR063).
* **in-place casting** — ``int_array /= n`` (or ``+= 0.5``) asks numpy
  to change an array's dtype in place, which raises a casting error at
  runtime (RPR064).

All five rules query the module's :class:`~repro.analysis.dataflow.
DataflowAnalysis`: they fire only when the value in question is a
*proven* numpy array (or, for RPR061, when a reduction's dtype cannot
be proven safe — an untracked accumulator is exactly the hazard).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional, Set, Tuple

from repro.analysis.core import Checker, ModuleInfo, Violation
from repro.analysis.dataflow import (
    REDUCTIONS,
    Array,
    Const,
    DataflowAnalysis,
    assigned_names,
    dtype_name,
)

#: Accumulator dtypes that cannot wrap at int32 width (intp/uintp are
#: pointer-sized: 64-bit on every platform this repo supports).
_SAFE_ACCUM = frozenset({"int64", "uint64", "intp", "uintp",
                         "float16", "float32", "float64"})

#: Integer-family dtypes that provably accumulate at C-long width.
_NARROW_INT = frozenset({"bool", "int8", "int16", "int32",
                         "uint8", "uint16", "uint32", "int_"})

_STABLE_KINDS = frozenset({"stable", "mergesort"})

_FLOAT_DTYPES = frozenset({"float16", "float32", "float64"})


def _root_name(node: ast.expr) -> Optional[str]:
    """Leftmost name of an attribute/subscript/call-receiver chain."""
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            node = node.func.value
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return None


def _kind_keyword(call: ast.Call) -> Tuple[bool, Optional[str]]:
    """(present, literal value) of a sort call's ``kind=`` keyword."""
    for kw in call.keywords:
        if kw.arg == "kind":
            if isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str):
                return True, kw.value.value
            return True, None
    return False, None


class NumpyHygieneChecker(Checker):
    """Dataflow-backed numpy rules for the simulation core."""

    name = "numpy-hygiene"
    codes = {
        "RPR060": "numpy sort/argsort in sim core without kind='stable' "
        "(default introsort reorders equal keys; set-partitioned replay "
        "depends on stable tie order)",
        "RPR061": "integer sum/cumsum/prod accumulating at the platform "
        "C-long dtype (int32 on 64-bit Windows) — pass dtype=np.int64 or "
        "prove the operand is already 64-bit",
        "RPR062": "loop-invariant astype() inside a loop re-copies the "
        "same array every iteration — hoist it out",
        "RPR063": "chained boolean-mask indexing x[mask][...] "
        "materialises the selection twice (and a store through it is "
        "silently dropped) — combine the masks or use np.flatnonzero",
        "RPR064": "in-place operator would change an integer array's "
        "dtype (numpy raises a casting error) — use an out-of-place op "
        "or astype first",
    }
    tags: Optional[FrozenSet[str]] = frozenset({"simcore"})

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        flow = module.dataflow()
        yield from self._check_sorts(module, flow)
        yield from self._check_reductions(module, flow)
        yield from self._check_loop_astype(module)
        yield from self._check_chained_masks(module, flow)
        yield from self._check_inplace_casts(module, flow)

    # -- RPR060 ---------------------------------------------------------
    def _check_sorts(
        self, module: ModuleInfo, flow: DataflowAnalysis
    ) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            np_name = flow.numpy_call_name(node)
            is_sort = np_name in {"sort", "argsort"}
            if not is_sort and isinstance(node.func, ast.Attribute):
                if node.func.attr in {"sort", "argsort"} and isinstance(
                    flow.value_of(node.func.value), Array
                ):
                    is_sort = True
            if not is_sort:
                continue
            present, kind = _kind_keyword(node)
            if present and kind in _STABLE_KINDS:
                continue
            detail = (
                f"kind={kind!r} is not a stable sort"
                if present
                else "no kind= given, so numpy picks introsort"
            )
            yield module.violation(
                self,
                "RPR060",
                node,
                f"unstable numpy sort in sim core ({detail}); equal keys "
                "must keep program order for set-partitioned replay — use "
                "kind='stable' (value-only sorts may noqa with a reason)",
            )

    # -- RPR061 ---------------------------------------------------------
    def _check_reductions(
        self, module: ModuleInfo, flow: DataflowAnalysis
    ) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            np_name = flow.numpy_call_name(node)
            operand: Optional[ast.expr] = None
            if np_name in REDUCTIONS and node.args:
                operand = node.args[0]
                reduction = np_name
            elif isinstance(node.func, ast.Attribute) and node.func.attr in REDUCTIONS:
                if not isinstance(flow.value_of(node.func.value), Array):
                    continue  # not provably a numpy array: list.sum() etc.
                operand = node.func.value
                reduction = node.func.attr
            else:
                continue
            assert reduction is not None
            explicit = self._explicit_dtype(node)
            if explicit is not None:
                if explicit in _SAFE_ACCUM:
                    continue
                yield module.violation(
                    self,
                    "RPR061",
                    node,
                    f"{reduction}() accumulates at explicit dtype "
                    f"{explicit!r}, which can overflow int32-width counts "
                    "on long traces — accumulate at int64",
                )
                continue
            value = flow.value_of(operand) if operand is not None else None
            if isinstance(value, Array):
                if value.dtype in _SAFE_ACCUM:
                    continue
                if value.dtype in _NARROW_INT:
                    yield module.violation(
                        self,
                        "RPR061",
                        node,
                        f"{reduction}() over a {value.dtype} array "
                        f"(origin: {value.origin or 'unknown'}) accumulates "
                        "at the platform C long — int32 on 64-bit Windows; "
                        "pass dtype=np.int64",
                    )
                    continue
            # Untracked dtype: the accumulator width is unprovable.
            yield module.violation(
                self,
                "RPR061",
                node,
                f"{reduction}() over an array of untracked dtype — the "
                "accumulator may be the platform C long (int32 on 64-bit "
                "Windows); pass dtype=np.int64 to pin it",
            )

    @staticmethod
    def _explicit_dtype(call: ast.Call) -> Optional[str]:
        for kw in call.keywords:
            if kw.arg == "dtype":
                return dtype_name(kw.value)
        return None

    # -- RPR062 ---------------------------------------------------------
    def _check_loop_astype(self, module: ModuleInfo) -> Iterator[Violation]:
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            rebound: Set[str] = assigned_names(loop.body)
            if isinstance(loop, ast.For):
                rebound |= assigned_names([loop]) - assigned_names(loop.orelse)
            for stmt in loop.body:
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "astype"
                    ):
                        root = _root_name(node.func.value)
                        if root is None or root in rebound:
                            continue
                        yield module.violation(
                            self,
                            "RPR062",
                            node,
                            f"astype() of loop-invariant {root!r} inside a "
                            "loop copies the whole array every iteration — "
                            "hoist the conversion above the loop",
                        )

    # -- RPR063 ---------------------------------------------------------
    def _check_chained_masks(
        self, module: ModuleInfo, flow: DataflowAnalysis
    ) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Subscript):
                continue
            inner = node.value
            if not isinstance(inner, ast.Subscript):
                continue
            mask = flow.value_of(inner.slice)
            if not (isinstance(mask, Array) and mask.dtype == "bool"):
                continue
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                message = (
                    "store through chained boolean-mask indexing writes "
                    "into a temporary copy and is silently dropped — index "
                    "once with a combined mask or np.flatnonzero(mask)"
                )
            else:
                message = (
                    "chained boolean-mask indexing materialises the masked "
                    "selection before indexing it again — combine the masks "
                    "or index np.flatnonzero(mask)"
                )
            yield module.violation(self, "RPR063", node, message)

    # -- RPR064 ---------------------------------------------------------
    def _check_inplace_casts(
        self, module: ModuleInfo, flow: DataflowAnalysis
    ) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AugAssign):
                continue
            target = flow.value_of(node.target)
            if not isinstance(target, Array):
                continue
            if target.dtype not in _NARROW_INT and target.dtype not in {
                "int64",
                "uint64",
                "intp",
                "uintp",
            }:
                continue  # float / untracked targets: no forced downcast
            if isinstance(node.op, ast.Div):
                yield module.violation(
                    self,
                    "RPR064",
                    node,
                    f"in-place /= on a {target.dtype} array requires a "
                    "float result — numpy raises a casting error; use "
                    "x = x / y or //= if integer division is meant",
                )
                continue
            rhs = flow.value_of(node.value)
            rhs_is_float = (
                isinstance(rhs, Array) and rhs.dtype in _FLOAT_DTYPES
            ) or (isinstance(rhs, Const) and isinstance(rhs.value, float))
            if rhs_is_float:
                yield module.violation(
                    self,
                    "RPR064",
                    node,
                    f"in-place op mixes a {target.dtype} array with a float "
                    "operand — numpy cannot cast the result back in place; "
                    "widen the array first or compute out of place",
                )


__all__ = ["NumpyHygieneChecker"]
