"""RPR040-042 — hot-path hygiene.

The per-reference loop is this repo's entire performance budget: PR 2
bought ~1.2x by hoisting bound methods and converting numpy arrays to
lists *once* outside the loop.  RPR040 keeps that discipline: a
multi-level attribute chain (``self.stats.l1.hits``) repeated inside a
loop in the simulation core re-walks the descriptor protocol every
iteration when a single hoisted local would do.  RPR041 bans ``print``
in library code — simulation output goes through the ``obs`` event
stream (or a returned result), never stdout, which the harness owns for
progress reporting.  RPR042 catches the triple-copy shape that hid in
``simulate()`` for five PRs: a ``.tolist()`` materialisation that is
then *sliced* repeatedly (``xs[:w]`` + ``xs[w:]``) copies every element
again per slice — feed one iterator through ``itertools.islice`` (or
slice the numpy array, whose slices are views) instead.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Checker, ModuleInfo, Violation, dotted_name

#: Occurrences of the same chain inside one loop body before flagging.
CHAIN_THRESHOLD = 2

#: Attribute depth (``a.b`` = 1, ``a.b.c`` = 2) from which chains count.
CHAIN_DEPTH = 2


def _chain_depth(node: ast.Attribute) -> int:
    depth = 0
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        depth += 1
        current = current.value
    return depth


def _load_chains(body: List[ast.stmt]) -> List[Tuple[str, ast.Attribute]]:
    """Deepest pure-load attribute chains in a loop body.

    Only the *outermost* attribute of each chain is counted (so
    ``self.stats.l1`` inside ``self.stats.l1.hits`` is not double
    counted), and only chains rooted at a plain name.
    """
    chains: List[Tuple[str, ast.Attribute]] = []
    parents: Set[int] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Attribute):
                parents.add(id(node.value))
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Attribute)
                and id(node) not in parents
                and isinstance(node.ctx, ast.Load)
                and _chain_depth(node) >= CHAIN_DEPTH
            ):
                name = dotted_name(node)
                if name is not None:
                    chains.append((name, node))
    return chains


def _stored_prefixes(body: List[ast.stmt]) -> Set[str]:
    """Dotted names (and their roots) assigned anywhere in the loop body."""
    stored: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for tgt in targets:
                name = dotted_name(tgt)
                if name is not None:
                    stored.add(name)
                elif isinstance(tgt, ast.Subscript):
                    sub_name = dotted_name(tgt.value)
                    if sub_name is not None:
                        stored.add(sub_name)
    return stored


def _rebinds(stored: Set[str], chain: str) -> bool:
    """Whether any stored name rebinds the chain or one of its prefixes.

    Mutating an *attribute through* the chain (``self.stats.x += 1``)
    does not rebind the objects along ``self.stats`` — hoisting is still
    sound — but assigning the prefix itself does.
    """
    parts = chain.split(".")
    prefixes = {".".join(parts[: i + 1]) for i in range(len(parts))}
    return bool(stored & prefixes)


class HotPathChecker(Checker):
    name = "hot-path"
    codes: Dict[str, str] = {
        "RPR040": "attribute chain repeated inside a simulation-core loop "
        "(hoist it to a local before the loop)",
        "RPR041": "print() in library code (output goes through obs "
        "events or returned results)",
        "RPR042": "tolist() materialisation sliced repeatedly (each "
        "slice re-copies the elements; iterate once via islice or "
        "slice the array before converting)",
    }
    tags: Optional[FrozenSet[str]] = frozenset({"src"})

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        if "simcore" in module.tags:
            yield from self._check_loops(module)
            yield from self._check_tolist_slices(module)
        yield from self._check_prints(module)

    # ------------------------------------------------------------------
    def _check_loops(self, module: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            body = node.body
            stored = _stored_prefixes(body)
            counts: Dict[str, List[ast.Attribute]] = {}
            for name, attr in _load_chains(body):
                counts.setdefault(name, []).append(attr)
            for name, sites in sorted(counts.items()):
                if len(sites) < CHAIN_THRESHOLD or _rebinds(stored, name):
                    continue
                first = min(sites, key=lambda a: (a.lineno, a.col_offset))
                prefix = name.rsplit(".", 1)[0]
                yield module.violation(
                    self,
                    "RPR040",
                    first,
                    f"attribute chain {name!r} read {len(sites)}x per "
                    f"iteration; hoist `{prefix}` to a local before the "
                    f"loop",
                )

    # ------------------------------------------------------------------
    def _check_tolist_slices(self, module: ModuleInfo) -> Iterator[Violation]:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            materialised = _tolist_locals(fn)
            if not materialised:
                continue
            slices: Dict[str, List[ast.Subscript]] = {}
            for node in ast.walk(fn):
                if (
                    isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in materialised
                    and isinstance(node.slice, ast.Slice)
                ):
                    slices.setdefault(node.value.id, []).append(node)
            for name, sites in sorted(slices.items()):
                if len(sites) < 2:
                    continue
                first = min(sites, key=lambda s: (s.lineno, s.col_offset))
                yield module.violation(
                    self,
                    "RPR042",
                    first,
                    f"list {name!r} materialised via tolist() is sliced "
                    f"{len(sites)}x — every slice copies the whole "
                    f"window; consume one iterator (itertools.islice) "
                    f"or slice the numpy array first (its slices are "
                    f"views)",
                )

    # ------------------------------------------------------------------
    def _check_prints(self, module: ModuleInfo) -> Iterator[Violation]:
        if _is_cli_module(module.tree):
            return
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                if _in_allowed_function(module.tree, node):
                    continue
                yield module.violation(
                    self,
                    "RPR041",
                    node,
                    "print() in library code: simulation output goes "
                    "through obs events or returned results, stdout "
                    "belongs to the harness CLI",
                )


def _tolist_locals(fn: ast.AST) -> Set[str]:
    """Function-local names bound (at least once) to a ``.tolist()`` call.

    Tuple-unpacking targets count too — ``a, b = x.tolist(), y.tolist()``
    binds both names to materialised lists.
    """
    names: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        values = (
            list(value.elts) if isinstance(value, ast.Tuple) else [value]
        )
        if not any(
            isinstance(v, ast.Call)
            and isinstance(v.func, ast.Attribute)
            and v.func.attr == "tolist"
            for v in values
        ):
            continue
        for tgt in node.targets:
            elts = tgt.elts if isinstance(tgt, ast.Tuple) else [tgt]
            for elt in elts:
                if isinstance(elt, ast.Name):
                    names.add(elt.id)
    return names


def _is_cli_module(tree: ast.Module) -> bool:
    """A module with a ``main()`` or an ``if __name__ == '__main__'`` guard
    owns its stdout; prints there are CLI output, not library noise."""
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == "main":
            return True
        if isinstance(node, ast.If):
            test = node.test
            if (
                isinstance(test, ast.Compare)
                and isinstance(test.left, ast.Name)
                and test.left.id == "__name__"
            ):
                return True
    return False


def _in_allowed_function(tree: ast.Module, call: ast.Call) -> bool:
    """Prints inside ``main``/``print_*`` functions are reporting helpers."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        if not (node.name == "main" or node.name.startswith(("print_", "_print"))):
            continue
        for sub in ast.walk(node):
            if sub is call:
                return True
    return False
