"""RPR010-013 — determinism in the simulation core.

Checkpoint/resume and ``--jobs`` 1-vs-N equivalence are byte-identical
guarantees: the same spec must produce the same artifact bytes on every
run.  Anything in the simulation core (``cache/``, ``buffers/``,
``core/``, ``system/``, ``workloads/``, ``extensions/``, ``mrc/``) that
reads the
wall clock, an unseeded RNG, the OS entropy pool, or iterates a hash-
randomised ``set`` into results can break that silently — on a machine
you do not own, months later.  (The observability layer *is* allowed to
read the clock: timestamps are telemetry, not results, and live in
``obs/`` which this checker does not visit.)
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, Optional, Set

from repro.analysis.core import Checker, ModuleInfo, Violation, dotted_name

#: Wall-clock reads banned from the simulation core.
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}

#: OS entropy / uuid reads that can never be seeded.
_ENTROPY_CALLS = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbelow",
    "secrets.choice",
}

#: ``numpy.random`` attributes that are *constructors taking a seed*,
#: not draws from the legacy global generator.
_NP_RANDOM_OK = {
    "Generator",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "SeedSequence",
    "default_rng",
}


def _set_expression(node: ast.AST) -> bool:
    """A set display, set comprehension, or bare ``set(...)`` call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee in {"set", "frozenset"}:
            return True
    return False


class DeterminismChecker(Checker):
    name = "determinism"
    codes: Dict[str, str] = {
        "RPR010": "wall-clock read in simulation core "
        "(breaks byte-identical replay)",
        "RPR011": "unseeded RNG in simulation core "
        "(seed it, or thread a seeded generator through)",
        "RPR012": "OS entropy / uuid in simulation core "
        "(cannot be seeded, cannot be replayed)",
        "RPR013": "iteration over a set feeds results "
        "(hash-randomised order; wrap in sorted())",
    }
    tags: Optional[FrozenSet[str]] = frozenset({"simcore"})

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        random_aliases = _module_aliases(module.tree, "random")
        numpy_aliases = _module_aliases(module.tree, "numpy") | {"np"}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    module, node, random_aliases, numpy_aliases
                )
            elif isinstance(node, (ast.For, ast.comprehension)):
                iterable = node.iter
                if _set_expression(iterable) and not _wrapped_sorted(iterable):
                    yield module.violation(
                        self,
                        "RPR013",
                        iterable,
                        "iterating a set: order is hash-randomised across "
                        "processes, so anything derived from it is not "
                        "reproducible — iterate sorted(...) instead",
                    )

    def _check_call(
        self,
        module: ModuleInfo,
        node: ast.Call,
        random_aliases: Set[str],
        numpy_aliases: Set[str],
    ) -> Iterator[Violation]:
        name = dotted_name(node.func)
        if name is None:
            return
        if name in _CLOCK_CALLS:
            yield module.violation(
                self,
                "RPR010",
                node,
                f"{name}() read in simulation core: results must not "
                f"depend on the wall clock (telemetry belongs in obs/)",
            )
            return
        if name in _ENTROPY_CALLS:
            yield module.violation(
                self,
                "RPR012",
                node,
                f"{name}() in simulation core: OS entropy cannot be "
                f"seeded, so runs cannot be reproduced",
            )
            return
        parts = name.split(".")
        # random.Random() / np.random.default_rng() with no seed argument.
        if parts[-1] in {"Random", "default_rng"} and not node.args:
            yield module.violation(
                self,
                "RPR011",
                node,
                f"{name}() constructed without a seed",
            )
            return
        # Draws from the `random` module's hidden global generator.
        if (
            len(parts) == 2
            and parts[0] in random_aliases
            and parts[1] not in {"Random", "SystemRandom"}
        ):
            yield module.violation(
                self,
                "RPR011",
                node,
                f"{name}() draws from the process-global random state; "
                f"use a random.Random(seed) instance",
            )
            return
        # Draws from numpy's legacy global generator (np.random.<fn>).
        if (
            len(parts) == 3
            and parts[0] in numpy_aliases
            and parts[1] == "random"
            and parts[2] not in _NP_RANDOM_OK
        ):
            yield module.violation(
                self,
                "RPR011",
                node,
                f"{name}() draws from numpy's legacy global generator; "
                f"use np.random.Generator(np.random.PCG64(seed))",
            )

    # list(set(..)) / tuple(set(..)) / "".join(set(..)) also leak order.
    # They are reported through the For/comprehension rule when iterated;
    # the common constructor forms are caught here.
    def finalize(self) -> Iterator[Violation]:
        return iter(())


def _module_aliases(tree: ast.Module, module_name: str) -> Set[str]:
    """Names the module is imported as (``import random as rnd`` -> rnd)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module_name:
                    aliases.add(alias.asname or alias.name)
    return aliases


class SetOrderConstructorChecker(Checker):
    """The constructor half of RPR013: ``list(set(..))`` and friends."""

    name = "determinism-set-order"
    codes: Dict[str, str] = {
        "RPR013": "set order fed into an ordered container",
    }
    tags: Optional[FrozenSet[str]] = frozenset({"simcore"})

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee in {"list", "tuple", "enumerate"} and node.args:
                if _set_expression(node.args[0]):
                    yield module.violation(
                        self,
                        "RPR013",
                        node,
                        f"{callee}() over a set: order is hash-randomised; "
                        f"use sorted(...)",
                    )


def _wrapped_sorted(node: ast.AST) -> bool:
    """True when the iterable is already ``sorted(...)`` (never, for a raw
    set expression, but kept for symmetry with future chain handling)."""
    return isinstance(node, ast.Call) and dotted_name(node.func) == "sorted"
