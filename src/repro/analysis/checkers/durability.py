"""RPR050-051 — crash-consistency rules for ``harness``/``obs`` code.

PR 6 made every run-directory write crash-consistent: data fsync'd
before ``os.replace``, parent directory fsync'd after, checksums in
every artifact (:mod:`repro.harness.durable`).  That guarantee only
holds if nothing writes *around* the helper.  These rules keep it true:

* **RPR050** — a truncating write (``open(..., "w")``/``"wb"``,
  ``Path.write_text``/``write_bytes``) in harness/obs code.  Such a
  write can be torn by a crash and leaves no checksum; route it through
  :func:`repro.harness.durable.atomic_write_text`.  Append-mode opens
  are exempt: the events.jsonl protocol is an append stream whose torn
  tail the validator tolerates by design.

* **RPR051** — ``os.replace`` with no preceding ``fsync`` in the same
  function.  The rename alone is not an atomic write: after a power cut
  the rename can be durable while the data is not, leaving a
  present-but-torn file (exactly the state the ``partial`` fault kind
  manufactures and the doctor quarantines).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Union

from repro.analysis.core import Checker, ModuleInfo, Violation, dotted_name

#: Attribute calls that truncate-and-write their receiver.
_RAW_WRITE_METHODS = {"write_text", "write_bytes"}

_Scope = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]


def _scope_calls(scope: _Scope) -> List[ast.Call]:
    """Calls lexically in ``scope``, excluding nested function bodies.

    Each function is its own write protocol: an fsync in a nested helper
    must not license an ``os.replace`` in the enclosing function.
    """
    out: List[ast.Call] = []

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(child, ast.Call):
                out.append(child)
            walk(child)

    walk(scope)
    return out


def _open_mode(node: ast.Call) -> Optional[str]:
    """The literal mode string of an ``open`` call, if determinable."""
    if len(node.args) >= 2:
        arg = node.args[1]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        return None
    for kw in node.keywords:
        if kw.arg == "mode":
            if isinstance(kw.value, ast.Constant) and isinstance(
                kw.value.value, str
            ):
                return kw.value.value
            return None
    return "r"


def _is_fsync(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name in {"os.fsync", "fsync"}:
        return True
    # Anything delegating to the durable layer fsyncs internally.
    return name is not None and (
        name.endswith("fsync_dir") or name.endswith("atomic_write_text")
    )


class DurabilityChecker(Checker):
    name = "durability"
    codes: Dict[str, str] = {
        "RPR050": "raw truncating write in harness/obs code "
        "(bypasses the fsync'd atomic-write helper; a crash can tear it)",
        "RPR051": "os.replace without a preceding fsync in the same "
        "function (rename can outlive the data after a power cut)",
    }
    tags: Optional[FrozenSet[str]] = frozenset({"harness", "obs"})

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        scopes: List[_Scope] = [module.tree]
        scopes.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            yield from self._check_scope(module, _scope_calls(scope))

    def _check_scope(
        self, module: ModuleInfo, calls: List[ast.Call]
    ) -> Iterator[Violation]:
        fsync_lines = [c.lineno for c in calls if _is_fsync(c)]
        for call in calls:
            name = dotted_name(call.func)
            if name == "open":
                mode = _open_mode(call)
                if mode is not None and mode.startswith("w"):
                    yield module.violation(
                        self,
                        "RPR050",
                        call,
                        f"open(..., {mode!r}) writes without the atomic "
                        "helper: use repro.harness.durable.atomic_write_text",
                    )
            elif (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in _RAW_WRITE_METHODS
            ):
                yield module.violation(
                    self,
                    "RPR050",
                    call,
                    f".{call.func.attr}() is a bare truncating write: use "
                    "repro.harness.durable.atomic_write_text",
                )
            elif name == "os.replace":
                if not any(line < call.lineno for line in fsync_lines):
                    yield module.violation(
                        self,
                        "RPR051",
                        call,
                        "os.replace with no fsync of the data first: the "
                        "rename can reach disk before the contents do",
                    )
