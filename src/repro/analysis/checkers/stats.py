"""RPR001-003 — stats-completeness.

PR 3 fixed a family of real bugs: ``BufferStats.merge()`` and several
``reset()`` methods hand-enumerated their counter fields, so a counter
added later was silently dropped from aggregates (or leaked warmup
counts into the measured window).  The repo's convention since then is
that every statistics dataclass routes ``reset()``/``merge()`` through
:func:`dataclasses.fields` — these rules make that convention a build
failure instead of a review comment.

A class is *stats-like* when it is a ``@dataclass`` following the
repo's naming convention — class name ending in ``Stats``, or any
dataclass inside a ``stats.py`` module — that defines ``reset`` or
``merge`` and declares at least two scalar counter fields (``int`` /
``float`` annotation, zero default).  Workload/config dataclasses whose
``reset()`` rewinds a position are not statistics and are not visited.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis.core import Checker, ModuleInfo, Violation, is_dataclass


def _counter_fields(node: ast.ClassDef) -> List[Tuple[str, str, ast.AnnAssign]]:
    """(name, annotation, node) for scalar counter fields of a dataclass."""
    out: List[Tuple[str, str, ast.AnnAssign]] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        if not isinstance(stmt.annotation, ast.Name):
            continue
        annotation = stmt.annotation.id
        if annotation not in {"int", "float"}:
            continue
        default = stmt.value
        if (
            isinstance(default, ast.Constant)
            and isinstance(default.value, (int, float))
            and not isinstance(default.value, bool)
            and default.value == 0
        ):
            out.append((stmt.target.id, annotation, stmt))
    return out


def _method(node: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _uses_fields(func: ast.FunctionDef) -> bool:
    """Whether the method iterates ``dataclasses.fields`` anywhere."""
    for sub in ast.walk(func):
        if isinstance(sub, ast.Call):
            callee = sub.func
            if isinstance(callee, ast.Name) and callee.id == "fields":
                return True
            if isinstance(callee, ast.Attribute) and callee.attr == "fields":
                return True
    return False


class StatsCompletenessChecker(Checker):
    name = "stats-completeness"
    codes: Dict[str, str] = {
        "RPR001": "stats dataclass reset() hand-enumerates fields "
        "(route through dataclasses.fields())",
        "RPR002": "stats dataclass merge() hand-enumerates fields "
        "(route through dataclasses.fields())",
        "RPR003": "counter field annotated float (counters must be int; "
        "noqa only for genuinely fractional quantities)",
    }
    tags: Optional[FrozenSet[str]] = frozenset({"src"})

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        stats_module = module.path.name == "stats.py"
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or not is_dataclass(node):
                continue
            if not (node.name.endswith("Stats") or stats_module):
                continue
            counters = _counter_fields(node)
            reset = _method(node, "reset")
            merge = _method(node, "merge")
            if len(counters) < 2 or (reset is None and merge is None):
                continue
            if reset is not None and not _uses_fields(reset):
                yield module.violation(
                    self,
                    "RPR001",
                    reset,
                    f"{node.name}.reset() does not iterate dataclasses."
                    f"fields(); a counter added later would silently "
                    f"survive reset",
                )
            if merge is not None and not _uses_fields(merge):
                yield module.violation(
                    self,
                    "RPR002",
                    merge,
                    f"{node.name}.merge() does not iterate dataclasses."
                    f"fields(); a counter added later would silently "
                    f"be dropped from aggregates",
                )
            for field_name, annotation, stmt in counters:
                if annotation == "float":
                    yield module.violation(
                        self,
                        "RPR003",
                        stmt,
                        f"{node.name}.{field_name} is a float counter; "
                        f"counters must be int so replay/merge stays exact",
                    )
