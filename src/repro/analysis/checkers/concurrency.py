"""RPR020-022, RPR080-081 — concurrency rules for ``harness/``+``serve/``.

PR 2 hit a real race: with ``--jobs N``, CPython's ``Process.start()``
reaps *every* finished child (``util._cleanup`` polls them all), so one
scheduler thread's ``start()`` could win the ``os.waitpid`` race against
another thread's ``join()``/``close()`` — the loser saw ECHILD and
``close()`` raised on a "still running" child.  The fix serialises every
worker start and reap under one lifecycle lock.  These rules generalise
that fix: in ``harness/`` code, anything that can wait on or reap a
child process must sit under a lock, and state shared between scheduler
threads must not be mutated bare.

The service brought a second concurrency model into the repo, with its
own failure mode: the asyncio event loop is cooperative, so one
*blocking* call inside an ``async def`` stalls every live session at
once — a 100ms ``time.sleep`` in a thousand-session server is a
100ms p99 floor for everyone.  RPR080/081 flag the two blocking shapes
that actually sneak into async code (sleeps and synchronous file I/O)
directly in ``async def`` bodies; nested *sync* ``def``s are exempt,
because the legitimate pattern for blocking work is exactly to wrap it
in a sync helper and hand it to an executor.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from repro.analysis.core import Checker, ModuleInfo, Violation, dotted_name

#: Receiver names treated as child-process handles.
_PROC_NAME = re.compile(r"(^|_)(proc|process|worker|child)s?$")

#: Methods that wait on / reap a child (the waitpid holders).
_REAP_METHODS = {"start", "join", "close", "kill"}

#: A with-item expression counts as "a lock" when its source mentions one.
_LOCK_HINT = re.compile(r"lock|mutex", re.IGNORECASE)

#: Blocking sleeps that stall the event loop (``asyncio.sleep`` yields).
_BLOCKING_SLEEP = {"time.sleep"}

#: Synchronous file-open entry points.
_SYNC_OPEN = {"open", "io.open", "os.open"}

#: ``pathlib.Path`` convenience I/O — each one opens, transfers and
#: closes a file synchronously.
_SYNC_PATH_IO = {"read_text", "write_text", "read_bytes", "write_bytes"}


def _is_lock_with(node: ast.With) -> bool:
    for item in node.items:
        name = dotted_name(item.context_expr)
        if isinstance(item.context_expr, ast.Call):
            name = dotted_name(item.context_expr.func)
        if name is not None and _LOCK_HINT.search(name):
            return True
    return False


class _WithTracker(ast.NodeVisitor):
    """Walks a tree recording, per node, whether a lock ``with`` encloses it."""

    def __init__(self) -> None:
        self.under_lock: Set[int] = set()
        self._depth = 0

    def visit_With(self, node: ast.With) -> None:  # noqa: N802 - ast API
        if _is_lock_with(node):
            self._depth += 1
            self.generic_visit(node)
            self._depth -= 1
        else:
            self.generic_visit(node)

    def generic_visit(self, node: ast.AST) -> None:
        if self._depth > 0:
            self.under_lock.add(id(node))
        super().generic_visit(node)


class ConcurrencyChecker(Checker):
    name = "concurrency"
    codes: Dict[str, str] = {
        "RPR020": "direct os.waitpid in harness code "
        "(reaping must go through the serialised lifecycle path)",
        "RPR021": "process start/join/close outside a lifecycle lock "
        "(the PR-2 waitpid race)",
        "RPR022": "shared dict mutated from a scheduler-thread function "
        "outside a lock",
        "RPR080": "blocking sleep inside an async function "
        "(stalls every session on the event loop)",
        "RPR081": "synchronous file I/O inside an async function "
        "(stalls every session on the event loop)",
    }
    tags: Optional[FrozenSet[str]] = frozenset({"harness", "serve"})

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        tracker = _WithTracker()
        tracker.visit(module.tree)
        under_lock = tracker.under_lock

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in {"os.waitpid", "waitpid"}:
                    yield module.violation(
                        self,
                        "RPR020",
                        node,
                        "os.waitpid called directly: child reaping must be "
                        "serialised through the process-lifecycle lock",
                    )
                    continue
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _REAP_METHODS
                    and isinstance(node.func.value, ast.Name)
                    and _PROC_NAME.search(node.func.value.id)
                    and id(node) not in under_lock
                ):
                    yield module.violation(
                        self,
                        "RPR021",
                        node,
                        f"{node.func.value.id}.{node.func.attr}() outside a "
                        f"lifecycle lock: concurrent start()/join()/close() "
                        f"race on os.waitpid (ECHILD)",
                    )

        yield from self._check_shared_mutation(module, under_lock)
        yield from self._check_async_blocking(module)

    # ------------------------------------------------------------------
    def _check_async_blocking(self, module: ModuleInfo) -> Iterator[Violation]:
        """RPR080/081: blocking calls directly on the event loop."""
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in _async_body_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name in _BLOCKING_SLEEP:
                    yield module.violation(
                        self,
                        "RPR080",
                        node,
                        f"{name}() blocks the event loop inside async "
                        f"{func.name!r} — await asyncio.sleep() instead",
                    )
                elif name in _SYNC_OPEN:
                    yield module.violation(
                        self,
                        "RPR081",
                        node,
                        f"{name}() inside async {func.name!r} does file "
                        f"I/O on the event loop — move it into a sync "
                        f"helper (run before/after, or via an executor)",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SYNC_PATH_IO
                ):
                    yield module.violation(
                        self,
                        "RPR081",
                        node,
                        f".{node.func.attr}() inside async {func.name!r} "
                        f"does file I/O on the event loop — move it into "
                        f"a sync helper (run before/after, or via an "
                        f"executor)",
                    )

    # ------------------------------------------------------------------
    def _check_shared_mutation(
        self, module: ModuleInfo, under_lock: Set[int]
    ) -> Iterator[Violation]:
        """RPR022: a nested function handed to a thread pool / Thread that
        subscript-assigns into a dict owned by the enclosing scope."""
        for outer in ast.walk(module.tree):
            if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            dict_vars = _dict_locals(outer)
            if not dict_vars:
                continue
            threaded = _threaded_function_names(outer)
            for stmt in outer.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name in threaded
                ):
                    local = _assigned_names(stmt)
                    for sub in ast.walk(stmt):
                        target: Optional[ast.Subscript] = None
                        if isinstance(sub, ast.Assign):
                            for tgt in sub.targets:
                                if isinstance(tgt, ast.Subscript):
                                    target = tgt
                        elif isinstance(sub, ast.AugAssign) and isinstance(
                            sub.target, ast.Subscript
                        ):
                            target = sub.target
                        if target is None:
                            continue
                        if (
                            isinstance(target.value, ast.Name)
                            and target.value.id in dict_vars
                            and target.value.id not in local
                            and id(sub) not in under_lock
                        ):
                            yield module.violation(
                                self,
                                "RPR022",
                                sub,
                                f"dict {target.value.id!r} shared with "
                                f"scheduler threads is mutated without a "
                                f"lock",
                            )


def _async_body_nodes(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Nodes that execute *on the event loop* within one async function.

    Nested function bodies are excluded in both directions: a nested
    sync ``def`` is the executor-helper pattern (its blocking calls run
    off-loop), and a nested ``async def`` is visited as its own
    function by the outer walk.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _dict_locals(func: ast.AST) -> Set[str]:
    """Names bound to ``{}``/``dict(...)`` directly in ``func``'s body."""
    out: Set[str] = set()
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, (ast.Dict,)):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    out.add(tgt.id)
        elif (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Call)
            and dotted_name(stmt.value.func) == "dict"
        ):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    out.add(tgt.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if isinstance(stmt.value, ast.Dict) or (
                isinstance(stmt.value, ast.Call)
                and dotted_name(stmt.value.func) == "dict"
            ):
                out.add(stmt.target.id)
    return out


def _threaded_function_names(func: ast.AST) -> Set[str]:
    """Nested function names passed to pool.submit / Thread(target=...)."""
    out: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func)
        if callee is None:
            continue
        if callee.endswith(".submit") or callee.endswith(".map"):
            for arg in node.args[:1]:
                if isinstance(arg, ast.Name):
                    out.add(arg.id)
        if callee in {"Thread", "threading.Thread"}:
            for kw in node.keywords:
                if kw.arg == "target" and isinstance(kw.value, ast.Name):
                    out.add(kw.value.id)
    return out


def _assigned_names(func: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    out.add(tgt.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) and isinstance(
            node.target, ast.Name
        ):
            out.add(node.target.id)
    return out
