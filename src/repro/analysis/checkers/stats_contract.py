"""RPR070-RPR072: the cross-engine SystemStats write-set contract.

PR 7/8's vector engine is only correct because it produces a
byte-identical ``SystemStats`` to the scalar reference engine.  That
contract is enforced dynamically by the bench gate and the paired-run
tests — but a *new counter* added to the scalar path and forgotten in
the vector path only fails those gates if some test happens to assert
on it.  This checker makes the contract static, the same way the
obs-schema checker joins event emit sites against the schema table:

* ``check_module`` only *collects* — every sim-core module's parsed
  tree is kept;
* ``finalize`` builds a merged class table (so ``SystemStats()``
  constructed in ``system/vector.py`` resolves against the dataclass
  declared in ``cache/stats.py``), runs the dataflow pass per module,
  and joins three ways:

  - **RPR070** — every ``SystemStats`` counter the scalar engine writes
    (expanded through the nested ``l1``/``l2``/``timing`` dataclasses)
    must have a vector-side write at the same path, or be covered by a
    whole-object delegation like ``stats.timing = timing`` whose value
    class the vector module fills in completely; and vice versa.
  - **RPR071** — a store to a ``*Stats`` dataclass attribute that is
    not a declared field is a typo that silently loses a counter.
  - **RPR072** — the ``heartbeat_every`` / ``tick_every`` cadence
    expressions (the ``measure_boundaries()`` inputs) must be derived
    identically in both engine modules, or the two event streams
    diverge while the final stats still agree.

The checker is silent unless both engine sides are present in the run
(so single-file fixture runs of other families don't light it up).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Checker, ModuleInfo, Violation
from repro.analysis.dataflow import (
    ClassInfo,
    DataflowAnalysis,
    Instance,
    collect_classes,
)

#: SystemStats paths the scalar engine writes that the vector engine is
#: *documented* not to: the vector engine only runs bufferless cells
#: (``buffer.*``) and models the L2 tag-only, so it can never hold a
#: dirty line (``l2.writebacks`` is structurally zero in both engines).
EXEMPT_PREFIXES: Tuple[str, ...] = ("buffer.",)
EXEMPT_PATHS: FrozenSet[str] = frozenset({"l2.writebacks"})

#: The cadence names both engines must derive the same way.
CADENCE_NAMES: Tuple[str, ...] = ("heartbeat_every", "tick_every")

_ROOT_CLASS = "SystemStats"


def _is_vector_side(module: ModuleInfo) -> bool:
    return module.rel.endswith("system/vector.py") or "engine-vector" in module.tags


def _is_scalar_engine(module: ModuleInfo) -> bool:
    return module.rel.endswith("system/simulator.py") or "engine-scalar" in module.tags


def _cadence_assignments(
    tree: ast.Module,
) -> Dict[str, List[Tuple[str, ast.AST]]]:
    """name -> [(normalized RHS dump, assignment node), ...]."""
    out: Dict[str, List[Tuple[str, ast.AST]]] = {n: [] for n in CADENCE_NAMES}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in out:
                    out[target.id].append((ast.dump(node.value), node))
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id in out
            and node.value is not None
        ):
            out[node.target.id].append((ast.dump(node.value), node))
    return out


def _calls_measure_boundaries(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            name: Optional[str] = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name == "measure_boundaries":
                return True
    return False


class StatsContractChecker(Checker):
    """Cross-file join of the scalar and vector engines' stats writes."""

    name = "stats-contract"
    codes = {
        "RPR070": "SystemStats counter written by one engine but not the "
        "other — the byte-identity contract between the scalar and vector "
        "engines drifts silently",
        "RPR071": "write to an undeclared *Stats dataclass attribute "
        "(typo?) — the counter is silently lost by reset/merge/reporting",
        "RPR072": "heartbeat/sim-tick cadence derived differently in the "
        "two engine modules — measure_boundaries() boundaries (and so the "
        "event streams) diverge",
    }
    tags: Optional[FrozenSet[str]] = frozenset(
        {"simcore", "engine-scalar", "engine-vector"}
    )

    def __init__(self) -> None:
        self._modules: List[ModuleInfo] = []

    def check_module(self, module: ModuleInfo) -> Iterator[Violation]:
        self._modules.append(module)
        return iter(())

    # -- the join -------------------------------------------------------
    def finalize(self) -> Iterator[Violation]:
        modules = sorted(self._modules, key=lambda m: m.rel)
        if not modules:
            return
        table: Dict[str, ClassInfo] = {}
        for module in modules:
            for name, info in collect_classes(module.tree).items():
                table.setdefault(name, info)
        flows: Dict[str, DataflowAnalysis] = {
            m.rel: DataflowAnalysis(m.tree, extra_classes=table) for m in modules
        }

        yield from self._check_unknown_fields(modules, flows, table)

        root = table.get(_ROOT_CLASS)
        vector_modules = [m for m in modules if _is_vector_side(m)]
        scalar_modules = [m for m in modules if not _is_vector_side(m)]
        if root is None or not vector_modules or not scalar_modules:
            return
        yield from self._check_write_sets(
            root, table, flows, vector_modules, scalar_modules
        )
        yield from self._check_cadence(modules, vector_modules)

    # -- RPR071 ---------------------------------------------------------
    def _check_unknown_fields(
        self,
        modules: List[ModuleInfo],
        flows: Dict[str, DataflowAnalysis],
        table: Dict[str, ClassInfo],
    ) -> Iterator[Violation]:
        for module in modules:
            for write in flows[module.rel].attribute_writes:
                base = write.base
                if not isinstance(base, Instance):
                    continue
                info = table.get(base.cls)
                if (
                    info is None
                    or not info.is_dataclass
                    or not base.cls.endswith("Stats")
                ):
                    continue
                if (
                    write.attr in info.fields
                    or write.attr in info.methods
                    or write.attr in info.properties
                ):
                    continue
                yield module.violation(
                    self,
                    "RPR071",
                    write.node,
                    f"{base.cls}.{write.attr} is not a declared field of "
                    f"dataclass {base.cls} — the write is silently invisible "
                    "to reset/merge/reporting (typo?)",
                )

    # -- RPR070 ---------------------------------------------------------
    def _check_write_sets(
        self,
        root: ClassInfo,
        table: Dict[str, ClassInfo],
        flows: Dict[str, DataflowAnalysis],
        vector_modules: List[ModuleInfo],
        scalar_modules: List[ModuleInfo],
    ) -> Iterator[Violation]:
        # Scalar side: per-dataclass field write sets, with an anchor
        # node for each (class, field) so missing-path findings point at
        # the scalar write the vector engine fails to mirror.
        scalar_writes: Dict[str, Set[str]] = {}
        scalar_anchor: Dict[Tuple[str, str], Tuple[ModuleInfo, ast.AST]] = {}
        for module in scalar_modules:
            for write in flows[module.rel].attribute_writes:
                base = write.base
                if isinstance(base, Instance) and base.cls in table:
                    scalar_writes.setdefault(base.cls, set()).add(write.attr)
                    scalar_anchor.setdefault(
                        (base.cls, write.attr), (module, write.node)
                    )

        # Vector side: SystemStats-rooted path writes, whole-object
        # delegations, and per-class writes (to expand delegations).
        vector_paths: Dict[str, Tuple[ModuleInfo, ast.AST]] = {}
        delegated: Dict[str, str] = {}
        vector_class_writes: Dict[str, Set[str]] = {}
        vector_class_anchor: Dict[Tuple[str, str], Tuple[ModuleInfo, ast.AST]] = {}
        for module in vector_modules:
            for write in flows[module.rel].attribute_writes:
                base = write.base
                if not isinstance(base, Instance):
                    continue
                if base.cls in table:
                    vector_class_writes.setdefault(base.cls, set()).add(write.attr)
                    vector_class_anchor.setdefault(
                        (base.cls, write.attr), (module, write.node)
                    )
                if base.root != _ROOT_CLASS:
                    continue
                info = table.get(base.cls)
                field_ann = info.fields.get(write.attr) if info else None
                if field_ann in table:
                    # stats.timing = timing — delegation of a whole
                    # nested object; credit the delegate class's writes.
                    value = write.value
                    if isinstance(value, Instance) and value.cls == field_ann:
                        delegated[".".join(base.path + (write.attr,))] = field_ann
                    continue
                vector_paths[".".join(base.path + (write.attr,))] = (
                    module,
                    write.node,
                )

        def scalar_fields(info: ClassInfo) -> List[str]:
            return [f for f, ann in info.fields.items() if ann not in table]

        # Expand the scalar per-class sets over the SystemStats nesting.
        required: Dict[str, Tuple[ModuleInfo, ast.AST]] = {}
        for field_name, ann in root.fields.items():
            nested = table.get(ann) if ann is not None else None
            if nested is not None:
                for counter in scalar_fields(nested):
                    if counter in scalar_writes.get(nested.name, set()):
                        anchor = scalar_anchor[(nested.name, counter)]
                        required[f"{field_name}.{counter}"] = anchor
            elif field_name in scalar_writes.get(_ROOT_CLASS, set()):
                required[field_name] = scalar_anchor[(_ROOT_CLASS, field_name)]

        # Expand vector delegations into covered paths.
        covered: Set[str] = set(vector_paths)
        for prefix, cls_name in delegated.items():
            info = table[cls_name]
            for counter in scalar_fields(info):
                if counter in vector_class_writes.get(cls_name, set()):
                    covered.add(f"{prefix}.{counter}")

        def exempt(path: str) -> bool:
            return path in EXEMPT_PATHS or path.startswith(EXEMPT_PREFIXES)

        for path in sorted(required):
            if exempt(path) or path in covered:
                continue
            module, node = required[path]
            yield module.violation(
                self,
                "RPR070",
                node,
                f"scalar engine writes SystemStats.{path} here, but the "
                "vector engine neither writes that path nor delegates the "
                "containing object — the engines' byte-identity contract "
                "drifts silently",
            )
        for path in sorted(covered):
            if path in required or exempt(path):
                continue
            anchor2 = vector_paths.get(path)
            if anchor2 is None:
                continue  # delegated counter: anchored per-class below
            module, node = anchor2
            yield module.violation(
                self,
                "RPR070",
                node,
                f"vector engine writes SystemStats.{path}, but the scalar "
                "reference engine never writes it — dead counter or "
                "contract drift",
            )

    # -- RPR072 ---------------------------------------------------------
    def _check_cadence(
        self,
        modules: List[ModuleInfo],
        vector_modules: List[ModuleInfo],
    ) -> Iterator[Violation]:
        scalar_engines = [m for m in modules if _is_scalar_engine(m)]
        if not scalar_engines or not vector_modules:
            return
        scalar = scalar_engines[0]
        scalar_cadence = _cadence_assignments(scalar.tree)
        for vector in vector_modules:
            vector_cadence = _cadence_assignments(vector.tree)
            for name in CADENCE_NAMES:
                s_exprs = {dump for dump, _ in scalar_cadence[name]}
                v_exprs = {dump for dump, _ in vector_cadence[name]}
                if not s_exprs and not v_exprs:
                    continue
                if s_exprs == v_exprs:
                    continue
                anchor_node: ast.AST = (
                    vector_cadence[name][0][1] if vector_cadence[name] else vector.tree
                )
                yield vector.violation(
                    self,
                    "RPR072",
                    anchor_node,
                    f"cadence {name!r} is derived differently in "
                    f"{scalar.rel} and {vector.rel} — "
                    "measure_boundaries() boundaries (heartbeat/sim-tick "
                    "event cadence) must agree between engines",
                )
            if _calls_measure_boundaries(scalar.tree) and not _calls_measure_boundaries(
                vector.tree
            ):
                yield vector.violation(
                    self,
                    "RPR072",
                    vector.tree,
                    f"{vector.rel} never calls measure_boundaries() while "
                    f"{scalar.rel} does — the vector engine would emit no "
                    "heartbeat/sim-tick boundaries at all",
                )


__all__ = ["StatsContractChecker"]
