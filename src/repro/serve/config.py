"""Service configuration and the per-tenant resource-budget mapping."""

from __future__ import annotations

import resource
from dataclasses import dataclass
from typing import Optional

#: Structural state entries per sampled block, measured (not guessed):
#: the bounded-memory test in ``tests/test_mrc.py`` pins the estimator's
#: :meth:`~repro.mrc.ShardsEstimator.state_entries` peak under
#: ``80 × max_blocks`` over a million-reference stream, and each entry
#: (dict slot, heap tuple, Fenwick cell) costs on the order of 100
#: bytes of CPython object overhead — call it 8KB per block, rounded to
#: a power of two so budgets translate predictably.
BYTES_PER_SAMPLED_BLOCK = 8192

#: Sample-size clamp: below 64 blocks a SHARDS curve is noise (the
#: sampling module's error model documents the sharp degradation under
#: ~1K blocks; 64 is the floor where the curve is still directionally
#: usable for a verdict), and above 65536 a "sample" is just a stack.
MIN_MAX_BLOCKS = 64
MAX_MAX_BLOCKS = 65536


def max_blocks_for_budget(budget_bytes: int) -> int:
    """Translate a per-tenant byte budget into a SHARDS sample bound.

    The service's eviction policy is *not* "kill the tenant when it
    grows" — the pipeline is built so it cannot grow: the budget is
    applied up front by sizing the fixed-size SHARDS bound, the only
    state in the pipeline whose footprint depends on the stream (the
    MCT and resident-tag arrays are fixed by cache geometry at open).
    """
    if budget_bytes <= 0:
        raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
    blocks = budget_bytes // BYTES_PER_SAMPLED_BLOCK
    return max(MIN_MAX_BLOCKS, min(MAX_MAX_BLOCKS, blocks))


def raise_fd_limit(wanted: int) -> int:
    """Raise ``RLIMIT_NOFILE``'s soft limit toward ``wanted``.

    One session is one socket, so serving N sessions needs roughly
    N + a handful of descriptors (double that when the load generator
    shares the process, as the bench cell does); default soft limits
    (often 1024) sit below the service's default admission cap.  Best
    effort: the hard limit bounds what an unprivileged process may
    request, and the achieved soft limit is returned.
    """
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    target = min(max(soft, wanted), hard)
    if target > soft:
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE, (target, hard))
        except (ValueError, OSError):
            return soft
    return target


@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`~repro.serve.server.ConflictServer` needs.

    Exactly one of ``socket_path`` (unix-domain) or ``host``/``port``
    (TCP) selects the listener.  The remaining knobs are the
    backpressure/eviction policy:

    ``max_sessions``
        Admission gate: connections beyond this are refused with an
        error frame before any session state is allocated.
    ``default_budget_bytes``
        Per-tenant state budget applied when an ``open`` frame does not
        carry its own ``budget_bytes``; see :func:`max_blocks_for_budget`.
    ``max_batch_refs``
        Largest address batch a single frame may carry.  Combined with
        the one-ack-per-batch flow control this bounds the bytes a
        client can have in flight.
    ``idle_timeout_s``
        Sessions with no frame activity for this long are reaped
        (closed server-side with reason ``"idle"``).  ``0`` disables
        the reaper.
    """

    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    max_sessions: int = 1024
    default_budget_bytes: int = 1 << 21
    max_batch_refs: int = 65536
    idle_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {self.max_sessions}")
        if self.max_batch_refs < 1:
            raise ValueError(
                f"max_batch_refs must be >= 1, got {self.max_batch_refs}"
            )
        if self.idle_timeout_s < 0:
            raise ValueError(
                f"idle_timeout_s must be >= 0, got {self.idle_timeout_s}"
            )
        # Touches the validation in max_blocks_for_budget too.
        max_blocks_for_budget(self.default_budget_bytes)
