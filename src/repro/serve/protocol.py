"""Length-prefixed JSON frames — the service wire format.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object.  JSON rather than a binary
codec keeps the wire format dependency-free and directly greppable in
packet captures; the length prefix is what makes it a *protocol* —
frames never split or coalesce on read, so a reader is either at a
frame boundary or knows it is not.

Client → server operations (the ``op`` field):

==============  =====================================================
``open``        start a session: ``tenant``, optional ``cache_kb``,
                ``line_size``, ``budget_bytes``, ``seed``, ``tag_bits``
``batch``       feed addresses: ``addrs`` (list of ints); the reply is
                the acknowledgement the client must await before the
                next batch — that ack *is* the flow control
``query``       ask about the stream so far: ``what`` is one of
                ``conflict_share`` | ``mrc`` | ``verdict``
``close``       retire the session; the reply carries final totals
``shutdown``    stop the whole server (first frame only, admin use)
==============  =====================================================

Every reply carries ``ok`` (bool); failed requests carry ``error``.
The server never leaves a request unanswered: even a refused connection
(admission control) gets an error frame before the socket closes.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, Optional

#: Hard cap on one frame's payload.  A 64K-address batch of 64-bit
#: addresses is ~1.3MB of JSON text; 4MB leaves headroom without letting
#: one tenant stage unbounded bytes in server memory.
MAX_FRAME_BYTES = 4 << 20

_LEN = struct.Struct(">I")


class FrameError(Exception):
    """A malformed frame: bad length, bad JSON, or not an object."""


def encode_frame(message: Dict[str, object]) -> bytes:
    """Serialise one message to its on-wire bytes (length + JSON)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame payload {len(payload)} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    return _LEN.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Dict[str, object]:
    """Parse one frame payload; raises :class:`FrameError` on garbage."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise FrameError("frame payload is not a JSON object")
    return message


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF *inside* a frame (mid-length or mid-payload) is a torn frame
    and raises :class:`FrameError` — the stream analogue of the torn
    final line the obs validator flags.
    """
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError(
            f"connection closed mid-frame ({len(exc.partial)} header byte(s))"
        ) from exc
    (length,) = _LEN.unpack(header)
    if length == 0 or length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} outside (0, {MAX_FRAME_BYTES}]")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return decode_frame(payload)


async def write_frame(
    writer: asyncio.StreamWriter, message: Dict[str, object]
) -> None:
    """Send one frame and drain — the await point backpressure rides on."""
    writer.write(encode_frame(message))
    await writer.drain()
