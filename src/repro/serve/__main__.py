"""``python -m repro.serve`` — run the classification service.

Examples::

    python -m repro.serve --socket /tmp/repro.sock --metrics events.jsonl
    python -m repro.serve --port 9931 --max-sessions 2048 \\
        --inject serve_batch:exception:3

The process serves until a client sends a ``shutdown`` frame, the
optional ``--max-runtime`` elapses, or it is interrupted.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro import faults
from repro.obs import events
from repro.obs.config import ObsConfig
from repro.serve.config import ServeConfig, raise_fd_limit
from repro.serve.server import ConflictServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Streaming multi-tenant conflict-classification service.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--socket", help="listen on a unix socket at this path")
    target.add_argument(
        "--port", type=int, help="listen on TCP at this port (0 = ephemeral)"
    )
    parser.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    parser.add_argument(
        "--max-sessions", type=int, default=1024, help="admission cap"
    )
    parser.add_argument(
        "--budget-bytes",
        type=int,
        default=1 << 21,
        help="default per-tenant state budget (open frames may override)",
    )
    parser.add_argument(
        "--max-batch-refs",
        type=int,
        default=65536,
        help="largest address batch one frame may carry",
    )
    parser.add_argument(
        "--idle-timeout",
        type=float,
        default=60.0,
        help="reap sessions idle this many seconds (0 disables)",
    )
    parser.add_argument(
        "--metrics",
        metavar="EVENTS_JSONL",
        help="emit obs events (session_open/batch/answer/session_close) here",
    )
    parser.add_argument(
        "--inject",
        metavar="SITE:KIND[:SEED[:REPEAT]]",
        help="arm a fault plan (sites serve_accept, serve_batch, "
        "event_append, ...) — testing only",
    )
    parser.add_argument(
        "--max-runtime",
        type=float,
        default=0.0,
        help="exit after this many seconds (0 = run until shutdown frame)",
    )
    return parser


async def _run(args: argparse.Namespace) -> int:
    config = ServeConfig(
        socket_path=args.socket,
        host=args.host,
        port=args.port or 0,
        max_sessions=args.max_sessions,
        default_budget_bytes=args.budget_bytes,
        max_batch_refs=args.max_batch_refs,
        idle_timeout_s=args.idle_timeout,
    )
    server = ConflictServer(config)
    await server.start()
    where = args.socket if args.socket else f"{args.host}:{server.port}"
    print(f"serve: listening on {where}", flush=True)
    try:
        if args.max_runtime > 0:
            try:
                await asyncio.wait_for(
                    server.serve_until_stopped(), timeout=args.max_runtime
                )
            except asyncio.TimeoutError:
                await server.stop()
        else:
            await server.serve_until_stopped()
    finally:
        print(
            f"serve: stopped after {server.sessions_closed} session(s), "
            f"{server.refs_total} refs",
            flush=True,
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.inject:
        faults.activate(faults.parse_plan(args.inject))
    if args.metrics:
        events.activate(ObsConfig(events_path=args.metrics))
    raise_fd_limit(args.max_sessions + 64)
    try:
        return asyncio.run(_run(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130
    finally:
        events.deactivate()
        faults.deactivate()


if __name__ == "__main__":
    raise SystemExit(main())
