"""Async load generator for the classification service.

Drives many concurrent sessions against a running server and reports
the numbers the bench harness commits to the baseline: aggregate
refs/sec and p50/p99 answer latency (time from sending a ``query``
frame to receiving its reply, measured while batches from *other*
sessions keep the server busy — i.e. latency under load, not in a quiet
lab).

Address streams come from :mod:`repro.workloads.spec_analogs`; a small
pool of traces is synthesised once up front and sessions cycle through
it with per-session address offsets, so a thousand sessions cost
thousands of *streams* server-side while the generator itself does no
per-session trace synthesis.

Usage::

    python -m repro.serve.loadgen --socket /tmp/repro.sock \\
        --sessions 64 --concurrency 32 --refs-per-session 4096
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serve.protocol import FrameError, read_frame, write_frame
from repro.workloads.spec_analogs import build

#: Trace pool synthesised once and shared by all sessions.
DEFAULT_BENCHES = ("gcc", "tomcatv", "go", "swim")

#: Per-session address offset stride: shifts the whole stream into a
#: disjoint tag range so no two sessions present identical streams,
#: without changing the stream's set-conflict structure.
_OFFSET_STRIDE = 1 << 32


class LoadgenError(RuntimeError):
    """A session failed and ``--tolerate-errors`` was not given."""


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[rank]


def build_trace_pool(
    benches: Sequence[str], refs_per_session: int, seed: int
) -> List[List[int]]:
    """Synthesise the shared address pool (one list per bench)."""
    pool: List[List[int]] = []
    for i, bench in enumerate(benches):
        trace = build(bench, refs_per_session, seed=seed + i)
        pool.append([int(a) for a in trace.addresses])
    return pool


async def _open_connection(
    socket_path: Optional[str], host: str, port: int
) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    if socket_path is not None:
        return await asyncio.open_unix_connection(socket_path)
    return await asyncio.open_connection(host, port)


async def run_session(
    index: int,
    addrs: List[int],
    args: argparse.Namespace,
    answer_latencies: List[float],
    fault_errors: List[str],
) -> int:
    """One full session: open, feed batches, query, close.

    Returns the refs acknowledged.  Server-side session failures (an
    injected fault closes the session with an error frame, or drops the
    connection entirely) are recorded in ``fault_errors`` and tolerated
    only under ``--tolerate-errors``.
    """
    try:
        reader, writer = await _open_connection(args.socket, args.host, args.port)
    except (OSError, ConnectionError) as exc:
        # A killed server refuses everything after it dies; under
        # --tolerate-errors that is data, not an abort.
        if not args.tolerate_errors:
            raise
        fault_errors.append(f"session {index}: connect failed: {exc}")
        return 0
    refs_done = 0
    try:
        offset = index * _OFFSET_STRIDE
        await write_frame(
            writer,
            {
                "op": "open",
                "tenant": f"tenant-{index % max(args.tenants, 1)}",
                "cache_kb": args.cache_kb,
                "budget_bytes": args.budget_bytes,
                "seed": index,
            },
        )
        opened = await read_frame(reader)
        if opened is None or not opened.get("ok"):
            raise LoadgenError(
                f"session {index}: open refused: "
                f"{(opened or {}).get('error', 'connection closed')}"
            )
        for start in range(0, len(addrs), args.batch_size):
            chunk = [a + offset for a in addrs[start : start + args.batch_size]]
            await write_frame(writer, {"op": "batch", "addrs": chunk})
            ack = await read_frame(reader)
            if ack is None or not ack.get("ok"):
                raise LoadgenError(
                    f"session {index}: batch rejected: "
                    f"{(ack or {}).get('error', 'connection closed')}"
                )
            acked = ack["refs"]
            assert isinstance(acked, int)
            refs_done += acked
        for what in ("conflict_share", "mrc", "verdict"):
            sent = time.perf_counter()
            await write_frame(writer, {"op": "query", "what": what})
            answer = await read_frame(reader)
            if answer is None or not answer.get("ok"):
                raise LoadgenError(
                    f"session {index}: query {what} failed: "
                    f"{(answer or {}).get('error', 'connection closed')}"
                )
            answer_latencies.append(time.perf_counter() - sent)
        await write_frame(writer, {"op": "close"})
        closed = await read_frame(reader)
        if closed is None or not closed.get("ok"):
            raise LoadgenError(f"session {index}: close failed: {closed!r}")
    except (LoadgenError, FrameError, OSError, ConnectionError) as exc:
        if not args.tolerate_errors:
            raise
        fault_errors.append(f"session {index}: {exc}")
    finally:
        writer.close()
    return refs_done


async def run_load(args: argparse.Namespace) -> Dict[str, object]:
    """Drive the configured load; returns the metrics report."""
    pool = build_trace_pool(args.benches, args.refs_per_session, args.seed)
    answer_latencies: List[float] = []
    fault_errors: List[str] = []
    gate = asyncio.Semaphore(args.concurrency)
    refs_done = 0
    wall_start = time.perf_counter()

    async def gated(index: int) -> int:
        async with gate:
            return await run_session(
                index, pool[index % len(pool)], args, answer_latencies, fault_errors
            )

    totals = await asyncio.gather(*(gated(i) for i in range(args.sessions)))
    wall = time.perf_counter() - wall_start
    refs_done = sum(totals)
    latencies = sorted(answer_latencies)
    report: Dict[str, object] = {
        "sessions": args.sessions,
        "concurrency": args.concurrency,
        "refs_done": refs_done,
        "wall_s": round(wall, 6),
        "refs_per_sec": round(refs_done / wall, 1) if wall > 0 else 0.0,
        "answers": len(latencies),
        "answer_p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
        "answer_p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
        "errors": len(fault_errors),
        "error_samples": fault_errors[:5],
    }
    if args.shutdown:
        try:
            reader, writer = await _open_connection(args.socket, args.host, args.port)
            await write_frame(writer, {"op": "shutdown"})
            await read_frame(reader)
            writer.close()
        except (OSError, ConnectionError, FrameError) as exc:
            # An injected kill may have taken the server down already —
            # under --tolerate-errors "nothing left to shut down" is
            # the expected end state, not a failure.
            if not args.tolerate_errors:
                raise
            fault_errors.append(f"shutdown: {exc}")
            report["errors"] = len(fault_errors)
    return report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Drive concurrent sessions against a running "
        "classification service and report throughput/latency.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--socket", help="unix socket path of the server")
    target.add_argument("--port", type=int, help="TCP port of the server")
    parser.add_argument("--host", default="127.0.0.1", help="TCP host")
    parser.add_argument(
        "--sessions", type=int, default=32, help="total sessions to run"
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=32,
        help="sessions in flight at once (semaphore)",
    )
    parser.add_argument(
        "--refs-per-session", type=int, default=4096, help="addresses per session"
    )
    parser.add_argument(
        "--batch-size", type=int, default=2048, help="addresses per batch frame"
    )
    parser.add_argument(
        "--cache-kb", type=int, default=16, help="cache size each session asks about"
    )
    parser.add_argument(
        "--budget-bytes",
        type=int,
        default=1 << 20,
        help="per-tenant state budget sent in the open frame",
    )
    parser.add_argument(
        "--tenants", type=int, default=8, help="distinct tenant names to cycle"
    )
    parser.add_argument(
        "--benches",
        nargs="+",
        default=list(DEFAULT_BENCHES),
        help="workload analogs for the trace pool",
    )
    parser.add_argument("--seed", type=int, default=0, help="trace synthesis seed")
    parser.add_argument(
        "--tolerate-errors",
        action="store_true",
        help="count per-session failures instead of aborting (use when "
        "the server runs with an --inject fault plan)",
    )
    parser.add_argument(
        "--shutdown",
        action="store_true",
        help="send a shutdown frame to the server after the run",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.port is None and args.socket is None:
        raise SystemExit("one of --socket or --port is required")
    try:
        report = asyncio.run(run_load(args))
    except (LoadgenError, FrameError, ConnectionError, OSError) as exc:
        print(f"loadgen: FAIL: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            "loadgen: {sessions} session(s), {refs_done} refs in {wall_s}s "
            "({refs_per_sec} refs/s); answers p50={answer_p50_ms}ms "
            "p99={answer_p99_ms}ms; errors={errors}".format(**report)
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
