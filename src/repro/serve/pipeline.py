"""The per-tenant incremental pipeline behind each service session.

One :class:`TenantPipeline` owns everything a session accumulates, and
all of it is constant-size once the session opens:

* a direct-mapped resident-tag array (the L1 the tenant asked about) —
  one slot per set;
* the paper's :class:`~repro.core.mct.MissClassificationTable` — one
  evicted tag per set, consulted on every miss *before* the fill, so
  conflict vs capacity is decided exactly as the hardware would;
* a fixed-size :class:`~repro.mrc.ShardsEstimator` — the sampled
  fully-associative model that prices Hill's definition of the same
  split, bounded by the tenant's byte budget.

The two classifiers answer the same question from opposite sides
(mechanism vs model), which is what makes the service's *verdict*
trustworthy: a victim cache is recommended only when both the MCT's
conflict share and the model-side share (actual miss rate vs the FA
miss ratio at equal capacity, the PR-5 decomposition) say the misses
are conflict-driven.

``feed`` is the hot path: address decomposition is vectorised with
numpy, the residency check is a tight loop over plain ints, and only
actual misses pay the MCT method calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.core.mct import MissClassificationTable
from repro.mrc.sampling import SampleResult, ShardsEstimator

#: Verdict thresholds.  ``victim_cache`` needs *both* classifiers to
#: call the stream conflict-heavy: the MCT share alone can be inflated
#: by partial-tag false matches or ping-pong patterns a tiny buffer
#: would not fix, and the model share alone can be sampling noise.
HW_CONFLICT_SHARE = 0.30
MODEL_CONFLICT_SHARE = 0.20
#: A stream missing this hard while the FA model *also* misses (model
#: share below the bar) is capacity-bound — more associativity will not
#: help, so the useful lever is exclusion/bypass (paper §5.3).
CAPACITY_MISS_RATE = 0.25
#: Below this many observed misses any share is statistically empty.
MIN_MISSES_FOR_VERDICT = 32


@dataclass(frozen=True)
class PipelineSnapshot:
    """Counters of a pipeline at one instant (all derivable fields)."""

    refs: int
    misses: int
    conflict_misses: int
    capacity_misses: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.refs if self.refs else 0.0

    @property
    def conflict_share(self) -> float:
        """Share of misses the MCT called conflict (0.0 when missless)."""
        return self.conflict_misses / self.misses if self.misses else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "refs": self.refs,
            "misses": self.misses,
            "conflict_misses": self.conflict_misses,
            "capacity_misses": self.capacity_misses,
            "miss_rate": self.miss_rate,
            "conflict_share": self.conflict_share,
        }


def _session_size_ladder(capacity_lines: int) -> Tuple[int, ...]:
    """Probe sizes bracketing the session's cache: C/8 .. 8C.

    The verdict needs the FA miss ratio *at* the cache's capacity; the
    neighbours up and down the ladder make the returned curve useful on
    its own (how much capacity would actually buy).
    """
    sizes = sorted(
        {
            max(1, capacity_lines >> shift)
            for shift in range(3, -1, -1)
        }
        | {capacity_lines << shift for shift in range(1, 4)}
    )
    return tuple(sizes)


class TenantPipeline:
    """Streaming MCT classification + sampled MRC for one session."""

    def __init__(
        self,
        *,
        cache_kb: int = 64,
        line_size: int = 64,
        max_blocks: int = 256,
        seed: int = 0,
        tag_bits: Optional[int] = None,
    ) -> None:
        self.geometry = CacheGeometry(
            size=cache_kb * 1024, assoc=1, line_size=line_size
        )
        self.mct = MissClassificationTable(self.geometry, tag_bits)
        self.max_blocks = max_blocks
        capacity_lines = self.geometry.num_lines
        self.estimator = ShardsEstimator(
            line_size,
            _session_size_ladder(capacity_lines),
            max_blocks=max_blocks,
            seed=seed,
        )
        self._capacity_lines = capacity_lines
        #: Resident tag per set; -1 = invalid (no tag is negative).
        self._resident: List[int] = [-1] * self.geometry.num_sets
        self.refs = 0
        self.misses = 0
        self.conflict_misses = 0
        self.capacity_misses = 0

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def feed(self, addresses: Sequence[int]) -> int:
        """Run one address batch through both classifiers; returns refs."""
        if len(addresses) == 0:
            return 0
        arr = np.asarray(addresses, dtype=np.uint64)
        self.estimator.feed(arr)
        geo = self.geometry
        idx_list = ((arr >> np.uint64(geo.offset_bits)) & np.uint64(geo.num_sets - 1)).tolist()
        tag_list = (arr >> np.uint64(geo.offset_bits + geo.index_bits)).tolist()
        resident = self._resident
        classify = self.mct.classify_is_conflict
        record = self.mct.record_eviction
        offset_index_bits = geo.offset_bits + geo.index_bits
        misses = 0
        conflicts = 0
        for set_index, tag in zip(idx_list, tag_list):
            prev = resident[set_index]
            if prev == tag:
                continue
            misses += 1
            # Classify *before* the fill updates any state, exactly as
            # the hardware does (the MCT compares against the tag most
            # recently evicted from this set).
            if classify((tag << offset_index_bits) | (set_index << geo.offset_bits)):
                conflicts += 1
            if prev >= 0:
                record(set_index, prev)
            resident[set_index] = tag
        self.refs += len(idx_list)
        self.misses += misses
        self.conflict_misses += conflicts
        self.capacity_misses += misses - conflicts
        return len(idx_list)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def snapshot(self) -> PipelineSnapshot:
        return PipelineSnapshot(
            refs=self.refs,
            misses=self.misses,
            conflict_misses=self.conflict_misses,
            capacity_misses=self.capacity_misses,
        )

    def mrc(self) -> SampleResult:
        """Current sampled FA miss-ratio curve (a snapshot, not a drain)."""
        return self.estimator.result()

    def fa_miss_ratio_at_capacity(self) -> float:
        """Sampled FA miss ratio at exactly the session cache's size."""
        result = self.estimator.result()
        ratios = result.curve.miss_ratios()
        index = result.curve.sizes_lines.index(self._capacity_lines)
        return ratios[index]

    def model_conflict_share(self) -> float:
        """Share of the actual miss rate the FA model would eliminate.

        The PR-5 decomposition read sideways: misses with FA stack
        distance within capacity are conflict misses, so
        ``1 - fa_ratio / miss_rate`` is the model's conflict share
        (clamped at 0 — sampling noise can put the FA ratio above the
        DM miss rate on conflict-free streams).
        """
        snap = self.snapshot()
        if snap.miss_rate == 0.0:
            return 0.0
        return max(0.0, 1.0 - self.fa_miss_ratio_at_capacity() / snap.miss_rate)

    def verdict(self) -> Dict[str, object]:
        """Recommendation for this stream, with the evidence attached."""
        snap = self.snapshot()
        model_share = self.model_conflict_share()
        hw_share = snap.conflict_share
        if snap.misses < MIN_MISSES_FOR_VERDICT:
            verdict = "none"
            reason = (
                f"only {snap.misses} miss(es) observed "
                f"(need {MIN_MISSES_FOR_VERDICT})"
            )
        elif hw_share >= HW_CONFLICT_SHARE and model_share >= MODEL_CONFLICT_SHARE:
            verdict = "victim_cache"
            reason = (
                f"MCT conflict share {hw_share:.2f} and model share "
                f"{model_share:.2f} both above threshold"
            )
        elif snap.miss_rate >= CAPACITY_MISS_RATE and model_share < MODEL_CONFLICT_SHARE:
            verdict = "bypass"
            reason = (
                f"miss rate {snap.miss_rate:.2f} is capacity-bound "
                f"(model share {model_share:.2f})"
            )
        else:
            verdict = "none"
            reason = (
                f"no dominant miss class (hw {hw_share:.2f}, "
                f"model {model_share:.2f}, miss rate {snap.miss_rate:.2f})"
            )
        return {
            "verdict": verdict,
            "reason": reason,
            "hw_conflict_share": hw_share,
            "model_conflict_share": model_share,
            "miss_rate": snap.miss_rate,
            "fa_miss_ratio_at_capacity": self.fa_miss_ratio_at_capacity(),
            "misses": snap.misses,
        }

    def state_entries(self) -> int:
        """Structural footprint proxy: fixed arrays + estimator state."""
        return 2 * self.geometry.num_sets + self.estimator.state_entries()
