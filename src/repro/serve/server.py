"""The asyncio front end: sessions, admission, reaping, telemetry.

One connection is one session.  The handler is a plain request/reply
loop over :mod:`repro.serve.protocol` frames; concurrency comes from
asyncio scheduling many handlers, not from threads, so pipeline state
needs no locks (each pipeline is touched only by its own handler).

Flow control is deliberate: the server processes one frame per session
at a time and the client must await each batch acknowledgement before
sending the next batch.  With ``max_batch_refs`` capping the batch and
``max_sessions`` capping the sessions, the server's transient memory is
bounded by ``max_sessions × max_batch_refs`` addresses no matter how
aggressive the clients are — backpressure by protocol shape rather than
by buffer-watermark tuning.

Telemetry *is* the consistency story: every admitted session emits
``session_open`` and is retired by exactly one ``session_close`` whose
totals count the ``batch``/``answer`` events between them, so
``python -m repro.obs.validate --reconcile`` proves a service run
complete — and rejects the stream of a service that was killed
mid-session (the ``serve_accept``/``serve_batch`` fault sites exist to
exercise exactly that).

The event log append inside the handler is a synchronous write by
design: lines are tiny, the file is ``O_APPEND``, and funnelling them
through an executor would reorder a session's events against its
replies — the one thing the reconciler must be able to trust.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Set

from repro import faults
from repro.faults.plan import InjectedCrash
from repro.obs import events
from repro.serve.config import ServeConfig, max_blocks_for_budget
from repro.serve.pipeline import TenantPipeline
from repro.serve.protocol import FrameError, read_frame, write_frame

#: ``query`` operations the service answers.
QUERY_KINDS = ("conflict_share", "mrc", "verdict")


class _Session:
    """Registry entry for one live session."""

    __slots__ = (
        "sid",
        "tenant",
        "pipeline",
        "writer",
        "last_active",
        "batches",
        "answers",
        "reap_reason",
    )

    def __init__(
        self,
        sid: int,
        tenant: str,
        pipeline: TenantPipeline,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.sid = sid
        self.tenant = tenant
        self.pipeline = pipeline
        self.writer = writer
        self.last_active = time.monotonic()
        self.batches = 0
        self.answers = 0
        #: Set by the reaper / shutdown before closing the transport, so
        #: the handler records why the session died.
        self.reap_reason: Optional[str] = None


class ConflictServer:
    """The streaming multi-tenant conflict-classification service."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: Dict[int, _Session] = {}
        self._next_sid = 1
        self._reaper: Optional["asyncio.Task[None]"] = None
        self._stopping = asyncio.Event()
        self._handlers: Set["asyncio.Task[None]"] = set()
        #: Service-level counters (exposed by loadgen/bench reports).
        self.accepted = 0
        self.refused = 0
        self.sessions_closed = 0
        self.refs_total = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        # Admission-capped servers still need the *kernel* queue to
        # absorb a thundering herd of simultaneous connects (the bench
        # opens every session at once); the default backlog of 100
        # resets the overflow before the accept loop ever sees it.
        backlog = min(self.config.max_sessions + 64, 4096)
        if self.config.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connection,
                path=self.config.socket_path,
                backlog=backlog,
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection,
                host=self.config.host,
                port=self.config.port,
                backlog=backlog,
            )
        if self.config.idle_timeout_s > 0:
            self._reaper = asyncio.ensure_future(self._reap_idle())

    @property
    def port(self) -> int:
        """Bound TCP port (resolves ``port=0`` ephemeral binds)."""
        assert self._server is not None, "server not started"
        sockets = self._server.sockets or []
        if self.config.socket_path is not None or not sockets:
            return 0
        return int(sockets[0].getsockname()[1])

    async def serve_until_stopped(self) -> None:
        """Run until a ``shutdown`` frame arrives or :meth:`stop` is called."""
        await self._stopping.wait()
        await self.stop()

    async def stop(self) -> None:
        """Close the listener and retire every live session cleanly."""
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._reaper is not None:
            self._reaper.cancel()
            self._reaper = None
        for sess in list(self._sessions.values()):
            if sess.reap_reason is None:
                sess.reap_reason = "shutdown"
            sess.writer.close()
        # Handlers observe their closed transports and emit their own
        # session_close events; wait for them so the stream is complete
        # when stop() returns.
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)

    # ------------------------------------------------------------------
    # Telemetry (method is named ``emit`` so the RPR030/031 static
    # schema join sees these literal call sites)
    # ------------------------------------------------------------------
    def emit(self, etype: str, **fields: object) -> None:
        log = events.active_log()
        if log is not None:
            log.emit(etype, **fields)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle(reader, writer))
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            faults.fire("serve_accept")
        except (InjectedCrash, OSError):
            # Injected accept-path crash: the connection dies before the
            # handshake, so no session events exist to reconcile.
            writer.close()
            return
        sess: Optional[_Session] = None
        reason = "eof"
        try:
            first = await read_frame(reader)
            if first is None:
                return
            op = first.get("op")
            if op == "shutdown":
                await write_frame(writer, {"ok": True, "stopping": True})
                self._stopping.set()
                return
            if op != "open":
                await write_frame(
                    writer, {"ok": False, "error": f"first frame must be open, got {op!r}"}
                )
                return
            if len(self._sessions) >= self.config.max_sessions:
                self.refused += 1
                await write_frame(
                    writer,
                    {
                        "ok": False,
                        "error": f"server full ({self.config.max_sessions} sessions)",
                    },
                )
                return
            sess = self._open_session(first, writer)
            self.accepted += 1
            await write_frame(
                writer,
                {
                    "ok": True,
                    "session": sess.sid,
                    "max_blocks": sess.pipeline.max_blocks,
                },
            )
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    reason = "eof"
                    break
                sess.last_active = time.monotonic()
                op = frame.get("op")
                if op == "batch":
                    await self._serve_batch(sess, frame, writer)
                elif op == "query":
                    await self._serve_query(sess, frame, writer)
                elif op == "close":
                    reason = "client"
                    await write_frame(
                        writer,
                        {
                            "ok": True,
                            "closed": sess.sid,
                            **sess.pipeline.snapshot().as_dict(),
                        },
                    )
                    break
                else:
                    await write_frame(
                        writer, {"ok": False, "error": f"unknown op {op!r}"}
                    )
        except (ValueError, FrameError) as exc:
            reason = "error"
            await self._try_error_reply(writer, str(exc))
        except (InjectedCrash, OSError, ConnectionError):
            # Injected batch-path crash or a transport failure: the
            # session still closes *in the event stream* (reason
            # "error"), which is what keeps the run reconcilable.
            reason = "error"
        finally:
            if sess is not None:
                self._close_session(sess, sess.reap_reason or reason)
            writer.close()

    def _open_session(
        self, frame: Dict[str, object], writer: asyncio.StreamWriter
    ) -> _Session:
        tenant = str(frame.get("tenant", "anonymous"))
        cache_kb = _as_int(frame.get("cache_kb", 64), "cache_kb")
        line_size = _as_int(frame.get("line_size", 64), "line_size")
        budget = _as_int(
            frame.get("budget_bytes", self.config.default_budget_bytes),
            "budget_bytes",
        )
        seed = _as_int(frame.get("seed", 0), "seed")
        tag_bits_raw = frame.get("tag_bits")
        tag_bits = None if tag_bits_raw is None else _as_int(tag_bits_raw, "tag_bits")
        pipeline = TenantPipeline(
            cache_kb=cache_kb,
            line_size=line_size,
            max_blocks=max_blocks_for_budget(budget),
            seed=seed,
            tag_bits=tag_bits,
        )
        sid = self._next_sid
        self._next_sid += 1
        sess = _Session(sid, tenant, pipeline, writer)
        self._sessions[sid] = sess
        self.emit(
            "session_open",
            session=sid,
            tenant=tenant,
            cache_kb=cache_kb,
            line_size=line_size,
            max_blocks=pipeline.max_blocks,
            budget_bytes=budget,
        )
        return sess

    def _close_session(self, sess: _Session, reason: str) -> None:
        if self._sessions.pop(sess.sid, None) is None:
            return
        self.sessions_closed += 1
        self.emit(
            "session_close",
            session=sess.sid,
            refs=sess.pipeline.refs,
            batches=sess.batches,
            answers=sess.answers,
            reason=reason,
        )

    async def _serve_batch(
        self,
        sess: _Session,
        frame: Dict[str, object],
        writer: asyncio.StreamWriter,
    ) -> None:
        addrs = frame.get("addrs")
        if not isinstance(addrs, list):
            raise FrameError("batch frame needs addrs (a list of ints)")
        if len(addrs) > self.config.max_batch_refs:
            raise FrameError(
                f"batch of {len(addrs)} refs exceeds max_batch_refs "
                f"{self.config.max_batch_refs}"
            )
        # The injected-crash hook sits *before* processing: a fault here
        # means the batch event is never emitted, so the stream stays
        # consistent whether the kind is an exception (session closes
        # with reason "error") or a kill (validator rejects the
        # open-without-close it leaves behind).
        faults.fire("serve_batch")
        fed = sess.pipeline.feed(addrs)
        sess.batches += 1
        self.refs_total += fed
        self.emit("batch", session=sess.sid, refs=fed)
        await write_frame(
            writer, {"ok": True, "refs": fed, "total_refs": sess.pipeline.refs}
        )

    async def _serve_query(
        self,
        sess: _Session,
        frame: Dict[str, object],
        writer: asyncio.StreamWriter,
    ) -> None:
        what = frame.get("what")
        reply: Dict[str, object] = {"ok": True, "what": what}
        if what == "conflict_share":
            reply.update(sess.pipeline.snapshot().as_dict())
        elif what == "mrc":
            result = sess.pipeline.mrc()
            reply.update(
                curve=[
                    [size_bytes, misses, ratio]
                    for size_bytes, misses, ratio in result.curve.as_rows()
                ],
                sampled_refs=result.sampled_refs,
                sampled_blocks=result.sampled_blocks,
                final_rate=result.final_rate,
            )
        elif what == "verdict":
            reply.update(sess.pipeline.verdict())
        else:
            await write_frame(
                writer,
                {
                    "ok": False,
                    "error": f"unknown query {what!r} "
                    f"(one of {', '.join(QUERY_KINDS)})",
                },
            )
            return
        sess.answers += 1
        self.emit("answer", session=sess.sid, what=str(what))
        await write_frame(writer, reply)

    async def _try_error_reply(
        self, writer: asyncio.StreamWriter, message: str
    ) -> None:
        try:
            await write_frame(writer, {"ok": False, "error": message})
        except (OSError, ConnectionError):
            pass

    # ------------------------------------------------------------------
    # Idle reaping
    # ------------------------------------------------------------------
    async def _reap_idle(self) -> None:
        period = max(self.config.idle_timeout_s / 4.0, 0.05)
        while True:
            await asyncio.sleep(period)
            cutoff = time.monotonic() - self.config.idle_timeout_s
            for sess in list(self._sessions.values()):
                if sess.last_active < cutoff and sess.reap_reason is None:
                    sess.reap_reason = "idle"
                    # Closing the transport wakes the handler's blocked
                    # read; it emits the session_close itself.
                    sess.writer.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_sessions(self) -> int:
        return len(self._sessions)

    def state_entries(self) -> int:
        """Aggregate structural footprint across live pipelines."""
        return sum(s.pipeline.state_entries() for s in self._sessions.values())

    def session_tenants(self) -> List[str]:
        return sorted(s.tenant for s in self._sessions.values())


def _as_int(value: object, field: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise FrameError(f"{field} must be an integer, got {value!r}")
    return value
