"""``repro.serve`` — the streaming multi-tenant conflict-classification
service.

The paper's Miss Classification Table is an *online* hardware mechanism;
this package turns the repo's batch simulator stack into the online
system the MCT implies: a long-lived asyncio front end that accepts many
concurrent address streams (one session per tenant connection), feeds
each through a constant-memory incremental pipeline, and answers live
queries about the stream seen so far.

Per-tenant pipeline (:mod:`repro.serve.pipeline`):

* a **streaming MCT classifier** — direct-mapped L1 tag store plus the
  paper's per-set evicted-tag table, classifying every miss as conflict
  or capacity on the fly (state: two fixed arrays, one per set);
* a **fixed-size SHARDS MRC estimator**
  (:class:`repro.mrc.ShardsEstimator`) fed incrementally, so the
  fully-associative model behind Hill's conflict definition is priced
  continuously at constant memory;
* a **recommendation verdict** derived from the PR-5 decomposition
  logic: the hardware conflict share and the model-side share (actual
  miss rate vs the FA miss ratio at equal capacity) agree on whether a
  victim cache / remap would help, or whether the stream is
  capacity-bound (bypass candidate).

Layers reused rather than forked:

* **wire + telemetry** — :mod:`repro.obs` events (``session_open`` /
  ``batch`` / ``answer`` / ``session_close``) are both the service's
  telemetry and its consistency proof: ``python -m repro.obs.validate
  --reconcile`` rejects any stream with an unretired session or a
  close whose totals disagree with the events present;
* **chaos** — :mod:`repro.faults` sites ``serve_accept`` and
  ``serve_batch`` wrap the socket and session paths, so every fault
  kind of the crash matrix covers the service;
* **backpressure** — a max-session admission gate, a per-tenant byte
  budget (mapped onto the SHARDS fixed-size bound), per-batch
  acknowledgement frames (the client-side flow control), and an idle
  reaper, so memory stays bounded under thousands of tenants.

Entry points::

    python -m repro.serve --socket /tmp/repro.sock --metrics events.jsonl
    python -m repro.serve.loadgen --socket /tmp/repro.sock --sessions 1000
"""

from repro.serve.config import ServeConfig, max_blocks_for_budget
from repro.serve.pipeline import PipelineSnapshot, TenantPipeline
from repro.serve.protocol import (
    FrameError,
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    read_frame,
)
from repro.serve.server import ConflictServer

__all__ = [
    "ConflictServer",
    "FrameError",
    "MAX_FRAME_BYTES",
    "PipelineSnapshot",
    "ServeConfig",
    "TenantPipeline",
    "decode_frame",
    "encode_frame",
    "max_blocks_for_budget",
    "read_frame",
]
