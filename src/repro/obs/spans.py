"""Tracing spans: start/end/duration trees around harness work.

A :class:`Tracer` hands out :class:`Span` context managers; nesting
establishes parent ids, so a cell's attempts, retry backoffs and
checkpoint write hang off its root ``cell`` span.  Finished spans are
kept in completion order for ``report.json`` and optionally forwarded to
the event stream as ``span`` events.

One tracer serves one cell supervision (a single thread), so no locking
is needed; the harness creates a tracer per cell.  When tracing is off,
:data:`NULL_TRACER` keeps call sites branch-free at near-zero cost.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One timed operation; ``attrs`` carry span-specific details."""

    name: str
    span_id: str
    parent_id: Optional[str]
    start_ts: float
    end_ts: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def set(self, **attrs: object) -> None:
        """Attach or update attributes while the span is open."""
        self.attrs.update(attrs)

    @property
    def duration_s(self) -> float:
        return (self.end_ts - self.start_ts) if self.end_ts is not None else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ts": round(self.start_ts, 6),
            "end_ts": round(self.end_ts, 6) if self.end_ts is not None else None,
            "duration_s": round(self.duration_s, 6),
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Produces nested spans with ids ``<prefix>:<n>``.

    ``on_finish`` (when given) receives each span as it closes — the
    harness wires this to :meth:`~repro.obs.events.EventLog.emit_span`.
    """

    def __init__(
        self,
        prefix: str,
        *,
        on_finish: Optional[Callable[[Span], None]] = None,
    ) -> None:
        self.prefix = prefix
        self.finished: List[Span] = []
        self._on_finish = on_finish
        self._stack: List[Span] = []
        self._count = 0

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        self._count += 1
        current = Span(
            name=name,
            span_id=f"{self.prefix}:{self._count}",
            parent_id=self._stack[-1].span_id if self._stack else None,
            start_ts=time.time(),
            attrs=dict(attrs),
        )
        self._stack.append(current)
        try:
            yield current
        finally:
            current.end_ts = time.time()
            self._stack.pop()
            self.finished.append(current)
            if self._on_finish is not None:
                self._on_finish(current)

    def to_dicts(self) -> List[Dict[str, object]]:
        """Finished spans in completion order, JSON-ready."""
        return [span.to_dict() for span in self.finished]


class _NullSpan:
    """Absorbs :meth:`Span.set` calls when tracing is disabled."""

    def set(self, **attrs: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Drop-in :class:`Tracer` that records nothing."""

    finished: List[Span] = []

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[_NullSpan]:
        yield _NULL_SPAN

    def to_dicts(self) -> List[Dict[str, object]]:
        return []


#: Shared no-op tracer (stateless, safe to reuse everywhere).
NULL_TRACER = NullTracer()
