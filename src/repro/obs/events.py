"""Schema-versioned JSON-lines event emission (``events.jsonl``).

One harness run produces one ``events.jsonl`` in its run directory.
Every process involved — the supervising CLI and each isolated cell
worker — appends complete lines in ``O_APPEND`` mode, so the streams
interleave without tearing (each event is written as a single small
``write()``; lines identify their emitting process and cell, so readers
never rely on global ordering).

Event vocabulary (``schema`` 1):

==============  =====================================================
``run_start``   one per campaign: params, cell list, jobs
``run_end``     one per campaign: per-status summary, ok flag
``span``        a finished tracing span (see :mod:`repro.obs.spans`)
``sim_start``   one per simulation: sim id, bench, policy, refs
``engine_fallback``  auto engine resolved to scalar: bench, policy, why
``heartbeat``   periodic progress: refs done, refs/sec, running rates
``counters``    flattened counter *deltas* since the previous snapshot
``sim_end``     final flattened counters + wall time for the sim
``mrc_start``   one per MRC pass: pass id, bench, mode, refs, sizes
``mrc_point``   one probed size: line count, misses, miss ratio
``mrc_end``     closes an MRC pass: point count + wall time
``session_open``   service session admitted: tenant, geometry, budget
``batch``       one address batch fed through a session pipeline
``answer``      one query answered (conflict share / mrc / verdict)
``session_close``  session retired: totals + close reason
==============  =====================================================

The ``counters`` deltas of a simulation sum exactly to the ``final``
snapshot in its ``sim_end`` event, which in turn equals the flattened
:meth:`~repro.cache.stats.SystemStats.as_dict` of the run — the
reconciliation ``python -m repro.obs.validate --reconcile`` enforces.

The module also holds the *runtime activation* state consulted by the
hot paths (:func:`repro.system.simulator.simulate` and friends).  When
nothing is activated — the default — the only cost a simulation pays is
one ``None`` check per :func:`simulate` call, not per reference.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import IO, Dict, Optional, Tuple

from repro import faults
from repro.obs.config import ObsConfig

#: Version of the event-line layout; bump on any incompatible change.
EVENT_SCHEMA = 1

#: Every event type this schema version may emit.
EVENT_TYPES = frozenset(
    {
        "run_start",
        "run_end",
        "span",
        "sim_start",
        "engine_fallback",
        "heartbeat",
        "counters",
        "sim_end",
        "mrc_start",
        "mrc_point",
        "mrc_end",
        "session_open",
        "batch",
        "answer",
        "session_close",
    }
)


class EventLog:
    """Append-only JSON-lines sink for one run's events.

    Safe for concurrent use by threads (internal lock) and by multiple
    processes appending to the same path (``O_APPEND`` + one ``write``
    per line keeps lines intact for the small records emitted here).
    The file is opened lazily on the first emit, so constructing a log
    for a run that ends up emitting nothing leaves no file behind.
    """

    def __init__(self, path: "Path | str", *, cell: Optional[str] = None) -> None:
        self.path = Path(path)
        self.cell = cell
        self._lock = threading.Lock()
        self._fh: Optional[IO[str]] = None
        self._pid = os.getpid()

    def emit(self, etype: str, **fields: object) -> None:
        """Append one event line; ``fields`` must be JSON-serialisable."""
        if etype not in EVENT_TYPES:
            raise ValueError(f"unknown event type {etype!r}")
        record: Dict[str, object] = {
            "schema": EVENT_SCHEMA,
            "type": etype,
            "ts": round(time.time(), 6),
            "pid": self._pid,
        }
        if self.cell is not None:
            record["cell"] = self.cell
        record.update(fields)
        line = json.dumps(record, sort_keys=True) + "\n"
        if faults.active_plan() is not None:
            # An injected tear here leaves a partial line with no
            # newline at the end of events.jsonl — the torn tail the
            # validator tolerates and the doctor truncates.
            faults.fire("event_append", path=self.path, payload=line)
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a")
            self._fh.write(line)
            self._fh.flush()

    def emit_span(self, span: object) -> None:
        """Forward a finished :class:`~repro.obs.spans.Span`."""
        self.emit("span", **span.to_dict())  # type: ignore[attr-defined]

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Runtime activation (consulted by simulation hot paths)
# ----------------------------------------------------------------------
_active_log: Optional[EventLog] = None
_heartbeat_every: int = 0


def activate(config: Optional[ObsConfig], *, cell: Optional[str] = None) -> None:
    """Turn on event emission for this process.

    Called by harness workers at startup (with their cell id) and usable
    directly by library code.  ``config=None`` or a config without
    ``events_path`` deactivates metrics.
    """
    global _active_log, _heartbeat_every
    if config is None or config.events_path is None:
        _active_log = None
        _heartbeat_every = config.heartbeat_every if config is not None else 0
        return
    _active_log = EventLog(config.events_path, cell=cell)
    _heartbeat_every = config.heartbeat_every


def deactivate() -> None:
    """Stop emitting events from this process (the default state)."""
    global _active_log, _heartbeat_every
    if _active_log is not None:
        _active_log.close()
    _active_log = None
    _heartbeat_every = 0


def active_log() -> Optional[EventLog]:
    """The process-wide event log, or ``None`` when metrics are off."""
    return _active_log


def heartbeat_every() -> int:
    """Heartbeat cadence in measured references (0 = no heartbeats)."""
    return _heartbeat_every


def snapshot_state() -> Tuple[Optional[EventLog], int]:
    """Capture activation state so in-process cells can restore it."""
    return (_active_log, _heartbeat_every)


def restore_state(state: Tuple[Optional[EventLog], int]) -> None:
    """Inverse of :func:`snapshot_state` (does not close the old log)."""
    global _active_log, _heartbeat_every
    _active_log, _heartbeat_every = state
