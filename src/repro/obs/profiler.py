"""Opt-in cProfile hook for harness cells.

With ``--profile`` each cell *attempt* runs under :mod:`cProfile` and
dumps a binary profile artifact next to the run's other outputs::

    <run-dir>/profiles/<cell_id>.attempt<N>.prof

Inspect with the standard library::

    python -m pstats out/profiles/fig3sweep.gcc.attempt1.prof

Profiling is per-attempt (a retried cell leaves one artifact per try)
and happens inside the worker process, so the supervisor's bookkeeping
never pollutes a cell's profile.
"""

from __future__ import annotations

import cProfile
from contextlib import contextmanager, nullcontext
from pathlib import Path
from typing import ContextManager, Iterator, Optional

from repro.obs.config import ObsConfig


def _safe_name(cell_id: str) -> str:
    # Mirrors the checkpoint layer's artifact-name sanitisation.
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in cell_id)


def profile_path(profile_dir: "Path | str", cell_id: str, attempt: int) -> Path:
    return Path(profile_dir) / f"{_safe_name(cell_id)}.attempt{attempt}.prof"


@contextmanager
def profile_to(path: Path) -> Iterator[None]:
    """Run the body under cProfile and dump stats to ``path``."""
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield
    finally:
        profile.disable()
        path.parent.mkdir(parents=True, exist_ok=True)
        profile.dump_stats(str(path))


def maybe_profile(
    config: Optional[ObsConfig], cell_id: str, attempt: int
) -> ContextManager[None]:
    """Profiling context for one cell attempt; a no-op when disabled."""
    if config is None or config.profile_dir is None:
        return nullcontext()
    return profile_to(profile_path(config.profile_dir, cell_id, attempt))
