"""Validate (and reconcile) an ``events.jsonl`` stream.

Usage::

    python -m repro.obs.validate out/events.jsonl
    python -m repro.obs.validate out/events.jsonl --reconcile

Validation checks every line parses, carries the supported ``schema``
version, a known ``type`` and that type's required fields.
``--reconcile`` additionally replays each simulation's ``counters``
deltas and requires the sum to reproduce the ``sim_end`` final snapshot
*exactly* — the property the whole metrics layer is built around.  CI
runs both on every ``--metrics`` sweep; exit status is non-zero on any
violation, with one line per problem on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter, defaultdict
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, cast

from repro.obs.events import EVENT_SCHEMA, EVENT_TYPES
from repro.obs.metrics import Number, reconcile

#: Fields each event type must carry (beyond schema/type/ts/pid).
REQUIRED_FIELDS: Dict[str, Tuple[str, ...]] = {
    "run_start": ("params", "cells", "jobs"),
    "run_end": ("summary", "ok"),
    "span": ("name", "span_id", "parent_id", "start_ts", "end_ts", "duration_s"),
    "sim_start": ("sim", "bench", "policy", "refs", "warmup"),
    "engine_fallback": ("bench", "policy", "reason"),
    "heartbeat": ("sim", "refs_done", "refs_per_sec"),
    "counters": ("sim", "delta"),
    "sim_end": ("sim", "refs", "wall_s", "final"),
    "mrc_start": ("sim", "bench", "mode", "refs", "sizes"),
    "mrc_point": ("sim", "size_lines", "misses", "miss_ratio"),
    "mrc_end": ("sim", "points", "wall_s"),
    "session_open": ("session", "tenant", "cache_kb", "max_blocks"),
    "batch": ("session", "refs"),
    "answer": ("session", "what"),
    "session_close": ("session", "refs", "batches", "answers", "reason"),
}


def schema_drift() -> List[str]:
    """Disagreements between the emit side and the validate side.

    ``EVENT_TYPES`` (what :class:`~repro.obs.events.EventLog` will emit)
    and :data:`REQUIRED_FIELDS` (what this validator accepts) are the two
    halves of one contract; a name on one side only means either events
    that can never validate or dead schema entries.  The CLI refuses to
    run with a drifted schema, and the ``RPR032`` static check enforces
    the same rule at lint time — both sides fail, neither just warns.
    """
    problems: List[str] = []
    for name in sorted(EVENT_TYPES - set(REQUIRED_FIELDS)):
        problems.append(
            f"schema drift: {name!r} in EVENT_TYPES but REQUIRED_FIELDS "
            f"does not know its required fields"
        )
    for name in sorted(set(REQUIRED_FIELDS) - EVENT_TYPES):
        problems.append(
            f"schema drift: {name!r} in REQUIRED_FIELDS but the emitter "
            f"would reject it (not in EVENT_TYPES)"
        )
    return problems


def split_torn_tail(text: str) -> Tuple[List[str], Optional[str]]:
    """Split an events stream, dropping a torn final line if present.

    A crash (power cut, SIGKILL, injected fault) during an append leaves
    a partial line with no trailing newline at the end of the file; that
    tail tells you how the run *died*, not that the stream is bad, so it
    is dropped with a warning rather than failing validation.  Anything
    unparseable elsewhere — or even an unparseable final line that *is*
    newline-terminated — is real corruption and stays in the line list
    for :func:`validate_lines` to reject.
    """
    if not text or text.endswith("\n"):
        return text.splitlines(), None
    lines = text.splitlines()
    tail = lines[-1]
    try:
        json.loads(tail)
    except json.JSONDecodeError:
        return (
            lines[:-1],
            f"torn final line dropped ({len(tail)} byte(s), "
            "no trailing newline — the emitting process died mid-append)",
        )
    # Parseable but unterminated: the crash landed exactly between the
    # payload and the newline; the event itself is intact, keep it.
    return lines, None


def validate_lines(
    lines: Iterable[str],
) -> Tuple[List[Dict[str, object]], List[str]]:
    """Parse and schema-check event lines; returns (events, problems)."""
    events: List[Dict[str, object]] = []
    problems: List[str] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(event, dict):
            problems.append(f"line {lineno}: event is not an object")
            continue
        if event.get("schema") != EVENT_SCHEMA:
            problems.append(
                f"line {lineno}: schema {event.get('schema')!r} != {EVENT_SCHEMA}"
            )
            continue
        etype = event.get("type")
        if etype not in EVENT_TYPES or etype not in REQUIRED_FIELDS:
            # Absent from either side of the schema is a hard failure:
            # a type the emitter knows but the validator does not (or
            # vice versa) must fail the stream, not crash or pass.
            problems.append(
                f"line {lineno}: event type {etype!r} absent from schema"
            )
            continue
        missing = [f for f in REQUIRED_FIELDS[etype] if f not in event]
        if missing:
            problems.append(
                f"line {lineno}: {etype} event missing field(s) "
                f"{', '.join(missing)}"
            )
            continue
        events.append(event)
    return events, problems


def reconcile_events(events: Iterable[Dict[str, object]]) -> Tuple[int, List[str]]:
    """Replay every simulation's deltas against its final snapshot.

    Returns (streams checked, problems).  A ``counters`` or
    ``sim_end`` event for a sim with no ``sim_start``, or a sim that
    never ends, is reported too — a truncated stream should not validate
    silently.  Service sessions reconcile structurally the same way MRC
    passes do: every ``session_open`` must be retired by a
    ``session_close`` whose ``batches``/``answers`` totals equal the
    ``batch``/``answer`` events actually in the stream — a service run
    that died mid-session (or silently dropped an answer) is rejected,
    never passed.
    """
    started: Dict[str, Dict[str, object]] = {}
    deltas: Dict[str, List[Mapping[str, Number]]] = defaultdict(list)
    finals: Dict[str, Mapping[str, Number]] = {}
    mrc_started: Dict[str, Dict[str, object]] = {}
    mrc_points: Dict[str, int] = defaultdict(int)
    mrc_ends: Dict[str, Dict[str, object]] = {}
    sess_opened: Dict[str, Dict[str, object]] = {}
    sess_batches: Dict[str, int] = defaultdict(int)
    sess_answers: Dict[str, int] = defaultdict(int)
    sess_closed: Dict[str, Dict[str, object]] = {}
    problems: List[str] = []
    for event in events:
        etype = event.get("type")
        if etype == "sim_start":
            started[str(event["sim"])] = event
        elif etype == "counters":
            deltas[str(event["sim"])].append(
                cast("Mapping[str, Number]", event["delta"])
            )
        elif etype == "sim_end":
            finals[str(event["sim"])] = cast(
                "Mapping[str, Number]", event["final"]
            )
        elif etype == "mrc_start":
            mrc_started[str(event["sim"])] = event
        elif etype == "mrc_point":
            mrc_points[str(event["sim"])] += 1
        elif etype == "mrc_end":
            mrc_ends[str(event["sim"])] = event
        elif etype == "session_open":
            sess_opened[str(event["session"])] = event
        elif etype == "batch":
            sess_batches[str(event["session"])] += 1
        elif etype == "answer":
            sess_answers[str(event["session"])] += 1
        elif etype == "session_close":
            sess_closed[str(event["session"])] = event
    for sim in sorted(set(deltas) | set(finals)):
        if sim not in started:
            problems.append(f"sim {sim}: counters/sim_end without sim_start")
    for sim, final in sorted(finals.items()):
        for problem in reconcile(deltas.get(sim, []), final):
            problems.append(f"sim {sim}: {problem}")
    for sim in sorted(set(started) - set(finals)):
        problems.append(f"sim {sim}: sim_start without sim_end (truncated run?)")
    # MRC passes reconcile structurally: every pass closed, and the
    # closing point count equal to the points actually emitted.
    for sim in sorted(set(mrc_points) | set(mrc_ends)):
        if sim not in mrc_started:
            problems.append(f"mrc {sim}: mrc_point/mrc_end without mrc_start")
    for sim in sorted(set(mrc_started) - set(mrc_ends)):
        problems.append(f"mrc {sim}: mrc_start without mrc_end (truncated run?)")
    for sim, end in sorted(mrc_ends.items()):
        if end["points"] != mrc_points.get(sim, 0):
            problems.append(
                f"mrc {sim}: mrc_end claims {end['points']} point(s), "
                f"stream has {mrc_points.get(sim, 0)}"
            )
    # Service sessions: every open retired, every close accounted, and
    # the closing totals equal to the events actually present.
    for sess in sorted(
        (set(sess_batches) | set(sess_answers) | set(sess_closed))
        - set(sess_opened)
    ):
        problems.append(
            f"session {sess}: batch/answer/session_close without session_open"
        )
    for sess in sorted(set(sess_opened) - set(sess_closed)):
        problems.append(
            f"session {sess}: session_open without session_close "
            f"(service died mid-session?)"
        )
    for sess, close in sorted(sess_closed.items()):
        if sess not in sess_opened:
            continue  # already reported above
        if close["batches"] != sess_batches.get(sess, 0):
            problems.append(
                f"session {sess}: session_close claims "
                f"{close['batches']} batch(es), stream has "
                f"{sess_batches.get(sess, 0)}"
            )
        if close["answers"] != sess_answers.get(sess, 0):
            problems.append(
                f"session {sess}: session_close claims "
                f"{close['answers']} answer(s), stream has "
                f"{sess_answers.get(sess, 0)}"
            )
    return len(finals) + len(mrc_ends) + len(sess_closed), problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Schema-validate an events.jsonl stream; optionally "
        "replay counter deltas against each simulation's final snapshot.",
    )
    parser.add_argument("events", metavar="EVENTS_JSONL", help="path to events.jsonl")
    parser.add_argument(
        "--reconcile",
        action="store_true",
        help="also require per-sim counter deltas to sum to the final snapshot",
    )
    args = parser.parse_args(argv)

    path = Path(args.events)
    if not path.is_file():
        print(f"validate: no such file: {path}", file=sys.stderr)
        return 2

    drift = schema_drift()
    if drift:
        for problem in drift:
            print(f"validate: {problem}", file=sys.stderr)
        print(
            f"validate: FAIL ({len(drift)} schema drift problem(s) — fix "
            f"repro.obs before validating streams)",
            file=sys.stderr,
        )
        return 1

    lines, torn_warning = split_torn_tail(path.read_text())
    if torn_warning:
        print(f"validate: warning: {torn_warning}", file=sys.stderr)
    events, problems = validate_lines(lines)
    sims_checked = 0
    if args.reconcile and not problems:
        sims_checked, reconcile_problems = reconcile_events(events)
        problems.extend(reconcile_problems)

    for problem in problems:
        print(f"validate: {problem}", file=sys.stderr)
    if problems:
        print(f"validate: FAIL ({len(problems)} problem(s))", file=sys.stderr)
        return 1

    by_type = Counter(e["type"] for e in events)
    summary = ", ".join(f"{t}={n}" for t, n in sorted(by_type.items()))
    print(f"validate: OK — {len(events)} events ({summary or 'empty'})", end="")
    if args.reconcile:
        print(f"; {sims_checked} sim(s) reconciled exactly")
    else:
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
