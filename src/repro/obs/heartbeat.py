"""Per-simulation progress telemetry: the :class:`SimTicker`.

:func:`sim_ticker` is the single hook simulation drivers call.  When the
process has no active event log it returns ``None`` immediately — the
entire cost of disabled observability is that one check per simulation,
leaving the per-reference hot loop untouched.

With metrics active, the driver runs its measured loop in chunks of
``heartbeat_every`` references and calls :meth:`SimTicker.tick` at each
boundary, emitting:

* a ``heartbeat`` event — references done, refs/sec since measurement
  start, plus whatever running-rate fields the driver supplies (L1 hit
  rate, MCT conflict share, accuracy-so-far, …);
* a ``counters`` event — the flattened counter *delta* since the last
  snapshot (zero entries omitted).

:meth:`SimTicker.finish` emits the closing delta (which carries the
timing counters, published only at ``finish()``) and a ``sim_end`` event
with the complete final snapshot, so replaying a simulation's deltas
reproduces its final statistics exactly.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Dict, Mapping, Optional

from repro.obs import events
from repro.obs.events import EventLog
from repro.obs.metrics import Number, diff_counters, flatten_counters

#: Per-process simulation ordinal; combined with the pid for unique ids.
_sim_counter = itertools.count(1)


class SimTicker:
    """Emits the event stream of one simulation."""

    def __init__(
        self,
        log: EventLog,
        every: int,
        *,
        bench: str,
        policy: str,
        refs: Optional[int],
        warmup: int,
    ) -> None:
        self.log = log
        self.every = every
        self.sim_id = f"{os.getpid()}-{next(_sim_counter)}"
        self._bench = bench
        self._policy = policy
        self._refs = refs
        self._warmup = warmup
        self._t0 = 0.0
        self._prev: Dict[str, Number] = {}

    def begin(self) -> None:
        """Mark the start of the *measured* window."""
        self.log.emit(
            "sim_start",
            sim=self.sim_id,
            bench=self._bench,
            policy=self._policy,
            refs=self._refs,
            warmup=self._warmup,
        )
        self._t0 = time.perf_counter()

    def tick(
        self,
        refs_done: int,
        counters: Mapping[str, object],
        **heartbeat_fields: object,
    ) -> None:
        """One heartbeat boundary: progress plus the counter delta."""
        elapsed = time.perf_counter() - self._t0
        snapshot = flatten_counters(counters)
        delta = diff_counters(snapshot, self._prev)
        self._prev = snapshot
        self.log.emit(
            "heartbeat",
            sim=self.sim_id,
            refs_done=refs_done,
            refs_per_sec=round(refs_done / elapsed, 1) if elapsed > 0 else 0.0,
            **heartbeat_fields,
        )
        if delta:
            self.log.emit("counters", sim=self.sim_id, delta=delta)

    def finish(self, refs_measured: int, counters: Mapping[str, object]) -> None:
        """Close the stream: final delta + complete final snapshot."""
        wall_s = time.perf_counter() - self._t0
        snapshot = flatten_counters(counters)
        delta = diff_counters(snapshot, self._prev)
        self._prev = snapshot
        if delta:
            self.log.emit("counters", sim=self.sim_id, delta=delta)
        self.log.emit(
            "sim_end",
            sim=self.sim_id,
            refs=refs_measured,
            wall_s=round(wall_s, 4),
            final=snapshot,
        )


def sim_ticker(
    *,
    bench: str,
    policy: str,
    refs: Optional[int],
    warmup: int,
) -> Optional[SimTicker]:
    """A ticker for one simulation, or ``None`` when metrics are off.

    This is the no-op fast path: callers pay one global check when
    observability is disabled (the default).
    """
    log = events.active_log()
    if log is None:
        return None
    return SimTicker(
        log,
        events.heartbeat_every(),
        bench=bench,
        policy=policy,
        refs=refs,
        warmup=warmup,
    )
