"""Telemetry for miss-ratio-curve passes: the :class:`MrcTicker`.

Mirrors :mod:`repro.obs.heartbeat` for the MRC subsystem:
:func:`mrc_ticker` returns ``None`` when the process has no active
event log, so an uninstrumented MRC pass pays one check total.  With
metrics active, the driver brackets each pass with :meth:`begin` /
:meth:`finish` and reports every probed size through :meth:`point`:

* ``mrc_start`` — pass id, bench name, mode (``exact`` / ``sampled``),
  reference count, and the probed size ladder (in lines);
* ``mrc_point`` — one probed size: line count, miss count, miss ratio;
* ``mrc_end`` — point count plus wall time for the pass.

``python -m repro.obs.validate --reconcile`` checks the stream
structurally: every pass closed, and the closing point count equal to
the ``mrc_point`` events actually emitted.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Optional, Sequence

from repro.obs import events
from repro.obs.events import EventLog

#: Per-process MRC pass ordinal; combined with the pid for unique ids.
_mrc_counter = itertools.count(1)


class MrcTicker:
    """Emits the event stream of one miss-ratio-curve pass."""

    def __init__(
        self,
        log: EventLog,
        *,
        bench: str,
        mode: str,
        refs: int,
        sizes_lines: Sequence[int],
    ) -> None:
        self.log = log
        self.sim_id = f"mrc-{os.getpid()}-{next(_mrc_counter)}"
        self._bench = bench
        self._mode = mode
        self._refs = refs
        self._sizes = list(sizes_lines)
        self._points = 0
        self._t0 = 0.0

    def begin(self) -> None:
        """Mark the start of the pass (reference stream already built)."""
        self.log.emit(
            "mrc_start",
            sim=self.sim_id,
            bench=self._bench,
            mode=self._mode,
            refs=self._refs,
            sizes=self._sizes,
        )
        self._t0 = time.perf_counter()

    def point(self, size_lines: int, misses: int, miss_ratio: float) -> None:
        """Report one probed size of the finished curve."""
        self._points += 1
        self.log.emit(
            "mrc_point",
            sim=self.sim_id,
            size_lines=size_lines,
            misses=misses,
            miss_ratio=round(miss_ratio, 6),
        )

    def finish(self) -> None:
        """Close the pass stream."""
        wall_s = time.perf_counter() - self._t0
        self.log.emit(
            "mrc_end",
            sim=self.sim_id,
            points=self._points,
            wall_s=round(wall_s, 4),
        )


def mrc_ticker(
    *,
    bench: str,
    mode: str,
    refs: int,
    sizes_lines: Sequence[int],
) -> Optional[MrcTicker]:
    """A ticker for one MRC pass, or ``None`` when metrics are off."""
    log = events.active_log()
    if log is None:
        return None
    return MrcTicker(
        log, bench=bench, mode=mode, refs=refs, sizes_lines=sizes_lines
    )
