"""Observability configuration shared by the CLI, harness and workers.

One frozen :class:`ObsConfig` describes everything a run wants observed.
It crosses the process boundary into harness workers (plain picklable
dataclass), so a forked or spawned cell worker activates exactly the
telemetry the supervising CLI asked for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ObsConfig:
    """Which telemetry a run emits, and where it goes.

    ``events_path``
        Destination of the JSON-lines event stream (``events.jsonl`` in
        the run directory).  ``None`` disables metrics events entirely.
    ``trace``
        Collect tracing spans (cell attempts, retries, checkpoint
        writes) into ``report.json`` — and into the event stream when
        ``events_path`` is also set.
    ``profile_dir``
        Directory for per-cell-attempt cProfile dumps (``*.prof``);
        ``None`` disables profiling.
    ``heartbeat_every``
        With metrics enabled, emit a heartbeat + counter-delta event
        every N measured references inside each simulation.  ``0``
        disables heartbeats (a single counter delta is still emitted at
        simulation end, so event replay always reconciles).
    """

    events_path: Optional[str] = None
    trace: bool = False
    profile_dir: Optional[str] = None
    heartbeat_every: int = 0

    def __post_init__(self) -> None:
        if self.heartbeat_every < 0:
            raise ValueError("heartbeat_every must be >= 0")

    @property
    def metrics(self) -> bool:
        """Whether the event stream is enabled."""
        return self.events_path is not None

    @property
    def enabled(self) -> bool:
        """Whether any telemetry at all is requested."""
        return self.metrics or self.trace or self.profile_dir is not None
