"""Counter flattening, deltas and replay reconciliation.

The observability layer ships counters as *flattened* dicts — nested
statistics dataclasses (via ``as_dict()``) become dotted keys::

    {"l1": {"hits": 3}, "memory_accesses": 1}
        -> {"l1.hits": 3, "memory_accesses": 1}

``counters`` events carry *deltas* between successive snapshots (zero
entries dropped, so heartbeat-cadence events stay small), and the
``sim_end`` event carries the complete final snapshot.  Summing a
simulation's deltas must reproduce the final snapshot exactly; integer
counters sum exactly, and the float timing counters only ever change in
the final delta (the timing model publishes them at ``finish()``), so
the reconciliation is exact, not approximate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Union

Number = Union[int, float]


def flatten_counters(nested: Mapping[str, object], prefix: str = "") -> Dict[str, Number]:
    """Nested dict-of-numbers -> flat dotted-key dict (sorted keys)."""
    out: Dict[str, Number] = {}
    for key in sorted(nested):
        value = nested[key]
        dotted = f"{prefix}{key}"
        if isinstance(value, Mapping):
            out.update(flatten_counters(value, f"{dotted}."))
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(
                f"counter {dotted!r} is {type(value).__name__}, not a number"
            )
        else:
            out[dotted] = value
    return out


def unflatten_counters(flat: Mapping[str, Number]) -> Dict[str, object]:
    """Inverse of :func:`flatten_counters`."""
    out: Dict[str, object] = {}
    for dotted, value in flat.items():
        node = out
        parts = dotted.split(".")
        for part in parts[:-1]:
            node = node.setdefault(part, {})  # type: ignore[assignment]
            if not isinstance(node, dict):
                raise ValueError(f"key {dotted!r} conflicts with a scalar parent")
        node[parts[-1]] = value
    return out


def diff_counters(
    current: Mapping[str, Number], previous: Mapping[str, Number]
) -> Dict[str, Number]:
    """Per-key ``current - previous``; zero deltas are omitted.

    A key absent from ``previous`` counts as 0 there, so the first delta
    of a simulation is simply its first snapshot.
    """
    out: Dict[str, Number] = {}
    for key, value in current.items():
        delta = value - previous.get(key, 0)
        if delta != 0:
            out[key] = delta
    return out


def accumulate_deltas(deltas: Iterable[Mapping[str, Number]]) -> Dict[str, Number]:
    """Sum a sequence of delta dicts into one absolute snapshot."""
    out: Dict[str, Number] = {}
    for delta in deltas:
        for key, value in delta.items():
            out[key] = out.get(key, 0) + value
    return out


def reconcile(
    deltas: Iterable[Mapping[str, Number]], final: Mapping[str, Number]
) -> List[str]:
    """Mismatch descriptions between replayed deltas and a final snapshot.

    Empty list means the replay reproduces ``final`` exactly.  Keys whose
    final value is zero may be absent from every delta; that is still a
    match (deltas drop zero entries).
    """
    replayed = accumulate_deltas(deltas)
    problems: List[str] = []
    for key in sorted(final):
        expected = final[key]
        got = replayed.pop(key, 0)
        if got != expected:
            problems.append(f"{key}: replayed {got!r} != final {expected!r}")
    for key, got in sorted(replayed.items()):
        if got != 0:
            problems.append(f"{key}: replayed {got!r} but absent from final")
    return problems
