"""Zero-dependency observability: metrics events, spans, heartbeats,
profiles.

The subsystem turns a parallel harness campaign from a black box into an
inspectable artifact trail, all stdlib-only and off by default:

* :mod:`repro.obs.events` — schema-versioned JSON-lines event emission
  (``events.jsonl`` per run directory) plus the per-process activation
  switch the hot paths consult;
* :mod:`repro.obs.metrics` — counter flattening/deltas and the replay
  reconciliation that ties the event stream back to the final
  :class:`~repro.cache.stats.SystemStats` exactly;
* :mod:`repro.obs.spans` — tracing spans around cell attempts, retries,
  checkpoint writes and bench iterations, surfaced in ``report.json``;
* :mod:`repro.obs.heartbeat` — per-simulation progress events (refs/sec,
  running hit rate, classification mix) every N measured references;
* :mod:`repro.obs.profiler` — opt-in cProfile dumps per cell attempt;
* :mod:`repro.obs.validate` — the ``python -m repro.obs.validate`` CLI
  CI uses to schema-check and reconcile emitted streams.

Disabled (the default), the only cost on a simulation is one global
``None`` check per :func:`~repro.system.simulator.simulate` call — the
per-reference loop is untouched.
"""

from repro.obs.config import ObsConfig
from repro.obs.events import EVENT_SCHEMA, EVENT_TYPES, EventLog, activate, deactivate
from repro.obs.heartbeat import SimTicker, sim_ticker
from repro.obs.mrc_events import MrcTicker, mrc_ticker
from repro.obs.metrics import (
    accumulate_deltas,
    diff_counters,
    flatten_counters,
    reconcile,
    unflatten_counters,
)
from repro.obs.profiler import maybe_profile, profile_path
from repro.obs.spans import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "EventLog",
    "MrcTicker",
    "NULL_TRACER",
    "NullTracer",
    "ObsConfig",
    "SimTicker",
    "Span",
    "Tracer",
    "accumulate_deltas",
    "activate",
    "deactivate",
    "diff_counters",
    "flatten_counters",
    "maybe_profile",
    "mrc_ticker",
    "profile_path",
    "reconcile",
    "sim_ticker",
    "unflatten_counters",
]
