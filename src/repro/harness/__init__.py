"""Fault-tolerant experiment harness.

The CLI runner routes every experiment through this package, which turns
the monolithic ``repro-experiments all`` sweep into a sequence of
independently supervised *cells*:

* :mod:`repro.harness.cells` — the cell registry: one cell per
  (experiment, variant) pair, resolvable by name so only strings cross
  process boundaries.
* :mod:`repro.harness.executor` — per-cell ``multiprocessing`` isolation
  with a configurable timeout, retry with exponential backoff + jitter,
  and deterministic fault injection for testing.
* :mod:`repro.harness.checkpoint` — schema-versioned JSON artifacts under
  a run directory; ``--resume`` skips cells whose artifact is present.
* :mod:`repro.harness.invariants` — conservation-law checks for
  :class:`~repro.cache.stats.SystemStats` and classification results,
  also wired into :meth:`MemorySystem.finish` behind a debug flag.
* :mod:`repro.harness.report` — the per-cell OK / RETRIED / TIMEOUT /
  FAILED / SKIPPED run report, printed at the end and saved as
  ``report.json``.

Only the light, dependency-free modules are imported here so that core
simulation code (e.g. :mod:`repro.system.memory_system`) can import the
invariant checker without dragging in the experiment registry.
"""

from repro.harness.invariants import (
    InvariantViolation,
    check_enabled,
    check_system_stats,
    set_enabled,
)
from repro.harness.report import CellReport, CellStatus, RunReport

__all__ = [
    "CellReport",
    "CellStatus",
    "InvariantViolation",
    "RunReport",
    "check_enabled",
    "check_system_stats",
    "set_enabled",
]
