"""Checkpoint/resume persistence for harness runs.

A *run directory* holds everything one ``repro-experiments`` invocation
produced::

    <run-dir>/
      manifest.json           # schema + params + cell plan + checksums
      manifest.json.bak       # previous good manifest (crash recovery)
      cells/<cell_id>.json    # one checksummed artifact per completed cell
      report.json             # final per-cell status report
      quarantine/             # artifacts the doctor refused to trust

Artifacts are schema-versioned (:data:`SCHEMA_VERSION`) and written
through :func:`repro.harness.durable.atomic_write_text` — temp file,
data fsync, ``os.replace``, directory fsync — so neither an interrupted
run nor a post-rename power cut leaves a *silently* truncated artifact
behind.  Every cell payload embeds the SHA-256 of its canonical result
JSON, and the manifest keeps a registry of the same checksums; a torn or
tampered artifact therefore never loads (``--resume`` re-runs the cell),
and ``python -m repro.harness.doctor`` can classify every file in the
directory as CLEAN, REPAIRABLE or CORRUPT without re-running anything.

The manifest is rewritten on every checksum registration; immediately
before each rewrite the previous good copy is preserved as
``manifest.json.bak``, so even a write torn *at the manifest itself*
loses at most the newest registry entry — which the doctor rebuilds from
the artifact's own embedded checksum.

Artifact bytes are deterministic for a given (params, seed): keys are
sorted and no timestamps or durations are embedded.  Two runs with the
same seed therefore produce byte-identical ``cells/*.json`` files — and
a crashed run, once doctored and resumed, converges to the byte-identical
directory a fault-free run produces.  The crash-matrix tests assert both.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union, cast

from repro.experiments.base import ExperimentParams, ExperimentResult
from repro.harness.durable import atomic_write_text, content_checksum

#: Version of the artifact layout; bump on any incompatible change.
#: 2: checksummed cell payloads with origin stubs; manifest carries the
#: cell plan and checksum registry; durable (fsync'd) writes throughout.
SCHEMA_VERSION = 2

_MANIFEST = "manifest.json"
_MANIFEST_BAK = "manifest.json.bak"
_CELL_DIR = "cells"
_QUARANTINE_DIR = "quarantine"
_REPORT = "report.json"


class CheckpointError(RuntimeError):
    """A run directory is unusable for the requested operation."""


def _dump(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def canonical_result_json(result_dict: Dict[str, object]) -> str:
    """The canonical string the artifact checksum is computed over."""
    return json.dumps(result_dict, sort_keys=True)


def _safe_name(cell_id: str) -> str:
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in cell_id)


@dataclass(frozen=True)
class CheckpointedCell:
    """One verified cell artifact, as ``--resume`` reloads it.

    ``status``/``attempts`` are the *origin stub*: how the result was
    originally produced (OK on attempt 1, RETRIED on attempt 3, ...).
    ``report.json`` records resumed cells under their origin stub, which
    is what makes the final report deterministic across crash/resume.
    """

    result: ExperimentResult
    status: str
    attempts: int
    checksum: str


def verify_artifact_text(
    text: str, cell_id: Optional[str] = None
) -> Tuple[Optional[Dict[str, object]], Optional[str]]:
    """Validate one artifact document; returns ``(payload, problem)``.

    Exactly one of the pair is ``None``.  Checks: JSON well-formedness,
    schema version, cell id agreement (when ``cell_id`` is given), and
    that the embedded checksum matches the canonical result JSON.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        return None, f"not valid JSON (torn write?): {exc}"
    if not isinstance(payload, dict):
        return None, "artifact is not a JSON object"
    doc = cast(Dict[str, object], payload)
    if doc.get("schema") != SCHEMA_VERSION:
        return None, f"schema {doc.get('schema')!r} != {SCHEMA_VERSION}"
    if cell_id is not None and doc.get("cell") != cell_id:
        return None, f"cell id {doc.get('cell')!r} != {cell_id!r}"
    result = doc.get("result")
    if not isinstance(result, dict):
        return None, "artifact has no result object"
    expected = content_checksum(
        canonical_result_json(cast(Dict[str, object], result))
    )
    if doc.get("checksum") != expected:
        return None, (
            f"checksum mismatch: payload says {doc.get('checksum')!r}, "
            f"content hashes to {expected!r}"
        )
    return doc, None


class RunDirectory:
    """One harness run's on-disk state."""

    def __init__(self, path: Union[Path, str]) -> None:
        self.path = Path(path)
        # Checksum registrations under --jobs N arrive from several
        # supervisor threads; manifest read-modify-write is serialised.
        self._manifest_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.path / _MANIFEST

    @property
    def manifest_backup_path(self) -> Path:
        return self.path / _MANIFEST_BAK

    @property
    def report_path(self) -> Path:
        return self.path / _REPORT

    @property
    def quarantine_path(self) -> Path:
        return self.path / _QUARANTINE_DIR

    def cell_path(self, cell_id: str) -> Path:
        return self.path / _CELL_DIR / f"{_safe_name(cell_id)}.json"

    def cell_dir(self) -> Path:
        return self.path / _CELL_DIR

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def read_manifest(self) -> Optional[Dict[str, object]]:
        """The manifest document, or None when absent; torn raises."""
        if not self.manifest_path.exists():
            return None
        try:
            payload = json.loads(self.manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"{self.manifest_path} is not valid JSON (torn write?): "
                f"{exc} — run `python -m repro.harness.doctor "
                f"{self.path}` to repair"
            ) from exc
        if not isinstance(payload, dict):
            raise CheckpointError(f"{self.manifest_path} is not an object")
        return cast(Dict[str, object], payload)

    def _write_manifest(self, payload: Dict[str, object]) -> None:
        """Durably rewrite the manifest, preserving the previous copy.

        The backup write carries no injection site on purpose: faults
        target the *active* manifest, and recovery leans on the backup
        being a previously-fsynced good version.
        """
        if self.manifest_path.exists():
            atomic_write_text(
                self.manifest_backup_path, self.manifest_path.read_text()
            )
        atomic_write_text(
            self.manifest_path, _dump(payload), site="manifest_update"
        )

    def register_checksum(self, cell_id: str, checksum: str) -> None:
        """Record a completed cell's artifact checksum in the manifest."""
        with self._manifest_lock:
            manifest = self.read_manifest()
            if manifest is None:
                raise CheckpointError(
                    f"{self.path}: cannot register checksum — no manifest "
                    f"(prepare() was never called)"
                )
            registry = manifest.get("checksums")
            if not isinstance(registry, dict):
                registry = {}
            registry = dict(cast(Dict[str, object], registry))
            registry[cell_id] = checksum
            manifest["checksums"] = registry
            self._write_manifest(manifest)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def prepare(
        self,
        params: ExperimentParams,
        *,
        resume: bool,
        cells: Optional[List[str]] = None,
    ) -> None:
        """Create (or validate, when resuming) the run directory.

        ``cells`` is the planned cell-id list in spec order; the doctor
        uses it to rebuild ``report.json`` deterministically and to name
        what a crashed run lost.  A fresh run over a directory whose
        manifest disagrees with ``params`` is refused, as is resuming a
        directory that has no manifest at all.  Checksums already
        registered by a previous (matching) run are preserved.
        """
        checksums: Dict[str, object] = {}
        existing = self.read_manifest()
        if existing is not None:
            if existing.get("schema") != SCHEMA_VERSION:
                raise CheckpointError(
                    f"{self.path}: manifest schema "
                    f"{existing.get('schema')!r} != {SCHEMA_VERSION} — "
                    "this run directory was written by an incompatible version"
                )
            if existing.get("params") != params.to_dict():
                raise CheckpointError(
                    f"{self.path}: run directory was created with params "
                    f"{existing.get('params')} but this invocation uses "
                    f"{params.to_dict()}; results would not be comparable "
                    "(use a fresh --run-dir)"
                )
            prior = existing.get("checksums")
            if isinstance(prior, dict):
                checksums = dict(cast(Dict[str, object], prior))
            if cells is None:
                prior_cells = existing.get("cells")
                if isinstance(prior_cells, list):
                    cells = [str(c) for c in prior_cells]
        elif resume:
            raise CheckpointError(
                f"{self.path}: nothing to resume — no {_MANIFEST} found"
            )
        manifest: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "params": params.to_dict(),
            "cells": list(cells or []),
            "checksums": checksums,
        }
        self.cell_dir().mkdir(parents=True, exist_ok=True)
        with self._manifest_lock:
            self._write_manifest(manifest)

    # ------------------------------------------------------------------
    # Cell artifacts
    # ------------------------------------------------------------------
    def save_cell(
        self,
        cell_id: str,
        result: ExperimentResult,
        *,
        status: str = "OK",
        attempts: int = 1,
    ) -> Path:
        """Durably checkpoint one cell: artifact first, then registry.

        A crash between the two writes leaves a valid, checksummed
        artifact that the manifest does not yet know about — the doctor
        re-registers it; nothing is lost and nothing torn survives.
        """
        result_dict = result.to_dict()
        checksum = content_checksum(canonical_result_json(result_dict))
        payload: Dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "cell": cell_id,
            "checksum": checksum,
            "origin": {"status": status, "attempts": attempts},
            "result": result_dict,
        }
        path = self.cell_path(cell_id)
        atomic_write_text(path, _dump(payload), site="checkpoint_write")
        self.register_checksum(cell_id, checksum)
        return path

    def load_checkpoint(self, cell_id: str) -> Optional[CheckpointedCell]:
        """The verified checkpoint for ``cell_id``, or None.

        Unreadable, schema-mismatched or checksum-failing artifacts
        count as absent — the cell simply re-runs rather than poisoning
        the resumed run with corrupt (or torn) data.
        """
        path = self.cell_path(cell_id)
        if not path.exists():
            return None
        try:
            text = path.read_text()
        except OSError:
            return None
        payload, problem = verify_artifact_text(text, cell_id)
        if payload is None or problem is not None:
            return None
        try:
            result = ExperimentResult.from_dict(
                cast(Dict[str, object], payload["result"])
            )
        except (KeyError, TypeError, ValueError):
            return None
        origin = payload.get("origin")
        origin_map = (
            cast(Dict[str, object], origin) if isinstance(origin, dict) else {}
        )
        status = str(origin_map.get("status", "OK"))
        attempts_obj = origin_map.get("attempts", 1)
        attempts = attempts_obj if isinstance(attempts_obj, int) else 1
        return CheckpointedCell(
            result=result,
            status=status,
            attempts=attempts,
            checksum=str(payload.get("checksum", "")),
        )

    def load_cell(self, cell_id: str) -> Optional[ExperimentResult]:
        """The checkpointed result for ``cell_id``, or None."""
        entry = self.load_checkpoint(cell_id)
        return entry.result if entry is not None else None

    def completed_cells(self) -> List[str]:
        """Cell ids with a *verified* artifact (manifest-order not implied)."""
        cell_dir = self.cell_dir()
        if not cell_dir.is_dir():
            return []
        out: List[str] = []
        for path in sorted(cell_dir.glob("*.json")):
            try:
                text = path.read_text()
            except OSError:
                continue
            payload, problem = verify_artifact_text(text)
            if payload is not None and problem is None and "cell" in payload:
                out.append(str(payload["cell"]))
        return out

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    def save_report(self, report_dict: Dict[str, object]) -> Path:
        atomic_write_text(
            self.report_path, _dump(report_dict), site="report_finalize"
        )
        return self.report_path
