"""Checkpoint/resume persistence for harness runs.

A *run directory* holds everything one ``repro-experiments`` invocation
produced::

    <run-dir>/
      manifest.json           # schema + the ExperimentParams of the run
      cells/<cell_id>.json    # one artifact per completed cell
      report.json             # final per-cell status report

Artifacts are schema-versioned (:data:`SCHEMA_VERSION`) and written
atomically (temp file + ``os.replace``) so an interrupted run never
leaves a truncated artifact behind.  ``--resume`` loads every artifact
whose cell id matches, after verifying that the manifest's parameters are
identical to the current invocation — resuming with different
``n_refs``/``warmup``/``seed`` would silently mix incomparable numbers,
so it is refused instead.

Artifact bytes are deterministic for a given (params, seed): keys are
sorted and no timestamps or durations are embedded (those live in
``report.json`` only).  Two runs with the same seed therefore produce
byte-identical ``cells/*.json`` files, which the test suite asserts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.base import ExperimentParams, ExperimentResult

#: Version of the artifact layout; bump on any incompatible change.
SCHEMA_VERSION = 1

_MANIFEST = "manifest.json"
_CELL_DIR = "cells"
_REPORT = "report.json"


class CheckpointError(RuntimeError):
    """A run directory is unusable for the requested operation."""


def _dump(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _safe_name(cell_id: str) -> str:
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in cell_id)


class RunDirectory:
    """One harness run's on-disk state."""

    def __init__(self, path: "Path | str") -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.path / _MANIFEST

    @property
    def report_path(self) -> Path:
        return self.path / _REPORT

    def cell_path(self, cell_id: str) -> Path:
        return self.path / _CELL_DIR / f"{_safe_name(cell_id)}.json"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def prepare(self, params: ExperimentParams, *, resume: bool) -> None:
        """Create (or validate, when resuming) the run directory.

        A fresh run writes a new manifest; stale cell artifacts from a
        previous run with *matching* parameters are left in place (they
        are simply overwritten as cells complete).  A fresh run over a
        directory whose manifest disagrees with ``params`` is refused, as
        is resuming a directory that has no manifest at all.
        """
        expected = {"schema": SCHEMA_VERSION, "params": params.to_dict()}
        if self.manifest_path.exists():
            try:
                existing = json.loads(self.manifest_path.read_text())
            except json.JSONDecodeError as exc:
                raise CheckpointError(
                    f"{self.manifest_path} is not valid JSON: {exc}"
                ) from exc
            if existing.get("schema") != SCHEMA_VERSION:
                raise CheckpointError(
                    f"{self.path}: manifest schema "
                    f"{existing.get('schema')!r} != {SCHEMA_VERSION} — "
                    "this run directory was written by an incompatible version"
                )
            if existing.get("params") != expected["params"]:
                raise CheckpointError(
                    f"{self.path}: run directory was created with params "
                    f"{existing.get('params')} but this invocation uses "
                    f"{expected['params']}; results would not be comparable "
                    "(use a fresh --run-dir)"
                )
        elif resume:
            raise CheckpointError(
                f"{self.path}: nothing to resume — no {_MANIFEST} found"
            )
        (self.path / _CELL_DIR).mkdir(parents=True, exist_ok=True)
        _atomic_write(self.manifest_path, _dump(expected))

    # ------------------------------------------------------------------
    # Cell artifacts
    # ------------------------------------------------------------------
    def save_cell(self, cell_id: str, result: ExperimentResult) -> Path:
        payload = {
            "schema": SCHEMA_VERSION,
            "cell": cell_id,
            "result": result.to_dict(),
        }
        path = self.cell_path(cell_id)
        _atomic_write(path, _dump(payload))
        return path

    def load_cell(self, cell_id: str) -> Optional[ExperimentResult]:
        """The checkpointed result for ``cell_id``, or None.

        Unreadable or schema-mismatched artifacts count as absent — the
        cell simply re-runs rather than poisoning the resumed run.
        """
        path = self.cell_path(cell_id)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return None
        if payload.get("schema") != SCHEMA_VERSION or payload.get("cell") != cell_id:
            return None
        try:
            return ExperimentResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def completed_cells(self) -> List[str]:
        """Cell ids with a readable artifact (manifest-order not implied)."""
        cell_dir = self.path / _CELL_DIR
        if not cell_dir.is_dir():
            return []
        out = []
        for path in sorted(cell_dir.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                continue
            if payload.get("schema") == SCHEMA_VERSION and "cell" in payload:
                out.append(str(payload["cell"]))
        return out

    # ------------------------------------------------------------------
    # Report
    # ------------------------------------------------------------------
    def save_report(self, report_dict: Dict[str, object]) -> Path:
        _atomic_write(self.report_path, _dump(report_dict))
        return self.report_path
