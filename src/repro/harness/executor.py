"""Supervised cell execution: isolation, timeouts, retries, checkpoints.

Each cell runs in its own ``multiprocessing`` worker (fork where the
platform supports it, spawn otherwise).  The supervisor waits on a pipe
rather than the process so a worker can never deadlock against a full
pipe buffer; a cell that produces nothing within the timeout is killed
and recorded as TIMEOUT instead of stalling the whole campaign.

Failures and timeouts are retried up to ``retries`` times with
exponential backoff.  Backoff jitter is drawn from a generator seeded by
(run seed, cell id, attempt), so a re-run of the same campaign sleeps the
same amounts — the harness introduces no nondeterminism of its own.

Results cross the process boundary as the same schema-versioned dicts the
checkpoint layer persists, so what ``--resume`` reloads is byte-for-byte
what a live worker would have produced.

With ``jobs > 1`` the scheduler dispatches up to that many cells
concurrently: each supervisor thread drives one isolated worker process
through the exact same attempt/timeout/retry/checkpoint state machine as
a serial run.  Artifact bytes are per-cell deterministic and the final
report lists cells in spec order regardless of completion order, so the
only observable difference between ``jobs=1`` and ``jobs=N`` is
wall-clock time (and the interleaving of progress callbacks).

Failures are classified: a cell that *ran and failed* (its code raised,
or it timed out) is the cell's problem and is retried per config; a
failure of the machinery *around* the cell — worker spawn error, worker
death without a result, checkpoint write error — is infrastructure.  A
run of :attr:`HarnessConfig.breaker_threshold` consecutive
infrastructure failures trips a circuit breaker: in-flight cells finish,
every cell not yet started is reported SKIPPED with an explanatory
error, and the run ends cleanly (degraded, so ``--strict`` exits 1)
instead of grinding through a campaign on a broken machine.

When a :mod:`repro.faults` plan is armed in the supervisor it crosses
into every worker (like :class:`~repro.obs.config.ObsConfig` does), and
the supervisor itself fires the ``worker_spawn`` site before each
process start — the zero-cost hook pattern means none of this is
reachable when no plan is armed.
"""

from __future__ import annotations

import multiprocessing
import random
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro import faults
from repro.experiments.base import ExperimentParams, ExperimentResult
from repro.faults import FaultPlan, InjectedCrash
from repro.harness import invariants
from repro.harness.cells import CellSpec, FaultInjection, maybe_inject, run_cell
from repro.harness.checkpoint import CheckpointError, RunDirectory
from repro.harness.report import CellReport, CellStatus, RunReport
from repro.obs import events as obs_events
from repro.obs.config import ObsConfig
from repro.obs.events import EventLog
from repro.obs.profiler import maybe_profile
from repro.obs.spans import NULL_TRACER, NullTracer, Tracer

#: Called after every cell with its report and result (None when degraded).
CellCallback = Callable[[CellSpec, CellReport, Optional[ExperimentResult]], None]


@dataclass(frozen=True)
class HarnessConfig:
    """Supervision knobs for one harness run.

    ``timeout_s`` bounds each *attempt*, not the whole cell; ``retries``
    is the number of extra attempts after the first.  ``isolate=False``
    runs cells in-process (no timeout protection — crash isolation and
    hang killing need a worker process) and exists for debugging and for
    environments where fork/spawn is unavailable.

    ``jobs`` is the number of cells supervised concurrently.  Parallel
    dispatch needs worker-process isolation (an in-process cell would
    share and corrupt the global invariant flag, and cannot be killed),
    so ``jobs > 1`` with ``isolate=False`` is rejected.

    ``breaker_threshold`` is how many *consecutive* infrastructure
    failures (spawn errors, workers dying without a result, checkpoint
    write errors — not cell bugs or timeouts) open the circuit breaker;
    0 disables it.
    """

    timeout_s: Optional[float] = None
    retries: int = 1
    backoff_s: float = 0.5
    backoff_factor: float = 2.0
    jitter: float = 0.25
    isolate: bool = True
    check_invariants: bool = True
    strict: bool = False
    jobs: int = 1
    breaker_threshold: int = 5

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_factor < 1 or self.jitter < 0:
            raise ValueError("backoff must be >= 0, factor >= 1, jitter >= 0")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.jobs > 1 and not self.isolate:
            raise ValueError("jobs > 1 requires worker isolation (isolate=True)")
        if self.breaker_threshold < 0:
            raise ValueError("breaker_threshold must be >= 0 (0 disables)")


def backoff_delay(
    config: HarnessConfig, cell_id: str, attempt: int, seed: int
) -> float:
    """Deterministic exponential backoff with jitter, in seconds."""
    base = config.backoff_s * config.backoff_factor ** (attempt - 1)
    rng = random.Random(f"{seed}:{cell_id}:{attempt}")
    return base * (1.0 + config.jitter * rng.random())


def _start_method() -> str:
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


#: Serialises worker start and reap across scheduler threads.  CPython's
#: ``Process.start()`` reaps *every* finished child of the process
#: (``util._cleanup`` polls them all), so with ``jobs > 1`` another
#: thread's start() can win the ``os.waitpid`` race against this thread's
#: join()/close(); the loser's poll sees ECHILD, reports the child as
#: "still running", and close() raises.  Holding one lock around both
#: sections makes every waitpid on a given pid exclusive.
_proc_lifecycle_lock = threading.Lock()


# ----------------------------------------------------------------------
# One attempt
# ----------------------------------------------------------------------
#: Attempt outcome kinds.  ``_INFRA`` marks failures of the machinery
#: around the cell (spawn, worker death without a result, checkpoint
#: IO) as opposed to the cell's own code — only these feed the breaker.
_OK, _ERROR, _TIMEOUT, _INFRA = "ok", "error", "timeout", "infra"


class _CircuitBreaker:
    """Counts *consecutive* infrastructure failures; trips at threshold.

    Shared across every supervisor thread of a run.  Any non-infra
    attempt outcome resets the streak — a flaky cell retrying on its own
    bug must never open the breaker.
    """

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self._streak = 0
        self._tripped = False
        self._lock = threading.Lock()

    def record(self, infra_failure: bool) -> None:
        if self.threshold <= 0:
            return
        with self._lock:
            self._streak = self._streak + 1 if infra_failure else 0
            if self._streak >= self.threshold:
                self._tripped = True

    @property
    def tripped(self) -> bool:
        return self._tripped


def _worker(
    conn: Connection,
    spec: CellSpec,
    params: ExperimentParams,
    inject: Optional[FaultInjection],
    attempt: int,
    check_invariants: bool,
    obs_config: Optional[ObsConfig],
    fault_plan: Optional[FaultPlan] = None,
) -> None:
    """Run one cell and ship its result (or traceback) over the pipe."""
    try:
        if check_invariants:
            invariants.set_enabled(True)
        if fault_plan is not None:
            # Each worker counts its own site hits from zero, so the
            # same plan crashes the same cell at the same point on every
            # replay regardless of scheduling.
            faults.activate(fault_plan)
        if obs_config is not None:
            # Metrics events append to the shared events.jsonl; every
            # line carries this cell's id (and pid), so concurrent
            # workers interleave without ambiguity.
            obs_events.activate(obs_config, cell=spec.cell_id)
        maybe_inject(spec, inject, attempt)
        with maybe_profile(obs_config, spec.cell_id, attempt):
            result = run_cell(spec, params)
        conn.send({"ok": True, "result": result.to_dict()})
    except BaseException:
        try:
            conn.send({"ok": False, "error": traceback.format_exc()})
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass
    finally:
        conn.close()


def _attempt_isolated(
    spec: CellSpec,
    params: ExperimentParams,
    config: HarnessConfig,
    inject: Optional[FaultInjection],
    attempt: int,
    obs_config: Optional[ObsConfig] = None,
) -> Tuple[str, Optional[ExperimentResult], Optional[str]]:
    ctx = multiprocessing.get_context(_start_method())
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_worker,
        args=(
            child_conn,
            spec,
            params,
            inject,
            attempt,
            config.check_invariants,
            obs_config,
            faults.active_plan(),
        ),
        daemon=True,
        name=f"repro-cell-{spec.cell_id}",
    )
    try:
        faults.fire("worker_spawn")
        with _proc_lifecycle_lock:
            proc.start()
    except (OSError, InjectedCrash) as exc:
        parent_conn.close()
        child_conn.close()
        return (_INFRA, None, f"worker spawn failed: {exc}")
    child_conn.close()
    timed_out = False
    payload = None
    try:
        if not parent_conn.poll(config.timeout_s):
            timed_out = True
            proc.terminate()
        else:
            try:
                payload = parent_conn.recv()
            except EOFError:
                payload = None
    finally:
        # Reap and release the worker on *every* exit path — a killed or
        # crashed Process left unjoined is a zombie, and an unclosed one
        # leaks its sentinel fd, which adds up over a --jobs sweep.
        parent_conn.close()
        with _proc_lifecycle_lock:
            proc.join(5)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join()
            exitcode = proc.exitcode
            proc.close()
    if timed_out:
        return (_TIMEOUT, None,
                f"no result within {config.timeout_s}s; worker killed")
    if payload is None:
        # The cell's own exceptions ship a payload; dying without one
        # means the *process* was lost (OOM kill, segfault, injected
        # kill) — an infrastructure failure, not a cell bug.
        return (_INFRA, None,
                f"worker died with exit code {exitcode} before "
                "producing a result")
    if payload.get("ok"):
        return (_OK, ExperimentResult.from_dict(payload["result"]), None)
    return (_ERROR, None, payload.get("error", "unknown worker error"))


def _attempt_inline(
    spec: CellSpec,
    params: ExperimentParams,
    config: HarnessConfig,
    inject: Optional[FaultInjection],
    attempt: int,
    obs_config: Optional[ObsConfig] = None,
) -> Tuple[str, Optional[ExperimentResult], Optional[str]]:
    previous = invariants._enabled
    obs_state = obs_events.snapshot_state()
    try:
        if config.check_invariants:
            invariants.set_enabled(True)
        if obs_config is not None:
            obs_events.activate(obs_config, cell=spec.cell_id)
        maybe_inject(spec, inject, attempt)
        # Round-trip through the artifact schema even inline, so both
        # execution modes return exactly what a resume would reload.
        with maybe_profile(obs_config, spec.cell_id, attempt):
            result = run_cell(spec, params)
        return (_OK, ExperimentResult.from_dict(result.to_dict()), None)
    except Exception:
        return (_ERROR, None, traceback.format_exc())
    finally:
        invariants.set_enabled(previous)
        if obs_config is not None:
            obs_events.deactivate()
            obs_events.restore_state(obs_state)


# ----------------------------------------------------------------------
# The supervised run
# ----------------------------------------------------------------------
def _supervise_cell(
    spec: CellSpec,
    params: ExperimentParams,
    config: HarnessConfig,
    attempt_fn: Callable,
    run_dir: Optional[RunDirectory],
    resume: bool,
    inject: Optional[FaultInjection],
    obs_config: Optional[ObsConfig] = None,
    event_log: Optional[EventLog] = None,
    breaker: Optional[_CircuitBreaker] = None,
) -> Tuple[CellReport, Optional[ExperimentResult]]:
    """Drive one cell through resume-check, attempts, retries, checkpoint.

    This is the complete per-cell state machine; the serial and parallel
    schedulers differ only in how many of these run at once.  When
    tracing is on, the whole supervision is a root ``cell`` span with
    child spans per attempt, retry backoff and checkpoint write —
    attached to the :class:`CellReport` (for ``report.json``) and, when
    metrics are also on, forwarded as ``span`` events.
    """
    trace_on = obs_config is not None and obs_config.trace
    tracer = (
        Tracer(
            spec.cell_id,
            on_finish=event_log.emit_span if event_log is not None else None,
        )
        if trace_on
        else NULL_TRACER
    )
    with tracer.span("cell", cell=spec.cell_id) as cell_span:
        report, result = _drive_cell(
            spec, params, config, attempt_fn, run_dir, resume, inject,
            obs_config, tracer, breaker,
        )
        cell_span.set(status=report.status.value, attempts=report.attempts)
    if trace_on:
        report.spans = tracer.to_dicts()
    return report, result


def _drive_cell(
    spec: CellSpec,
    params: ExperimentParams,
    config: HarnessConfig,
    attempt_fn: Callable,
    run_dir: Optional[RunDirectory],
    resume: bool,
    inject: Optional[FaultInjection],
    obs_config: Optional[ObsConfig],
    tracer: Union[Tracer, NullTracer],
    breaker: Optional[_CircuitBreaker] = None,
) -> Tuple[CellReport, Optional[ExperimentResult]]:
    if breaker is not None and breaker.tripped:
        return (
            CellReport(
                spec.cell_id,
                CellStatus.SKIPPED,
                attempts=0,
                seed=params.seed,
                error=(
                    "infrastructure circuit breaker open "
                    f"({breaker.threshold} consecutive infrastructure "
                    "failures); cell not started — fix the environment "
                    "and re-run with --resume"
                ),
            ),
            None,
        )

    cached = run_dir.load_checkpoint(spec.cell_id) if (run_dir and resume) else None
    if cached is not None:
        return (
            CellReport(
                spec.cell_id,
                CellStatus.SKIPPED,
                attempts=0,
                seed=params.seed,
                origin_status=cached.status,
                origin_attempts=cached.attempts,
            ),
            cached.result,
        )

    started = time.perf_counter()
    result: Optional[ExperimentResult] = None
    last_kind, last_error = _ERROR, None
    attempts = 0
    error: Optional[str] = None
    for attempt in range(1, config.retries + 2):
        attempts = attempt
        with tracer.span("attempt", attempt=attempt) as attempt_span:
            kind, result, error = attempt_fn(
                spec, params, config, inject, attempt, obs_config
            )
            attempt_span.set(outcome=kind)
        if breaker is not None:
            breaker.record(kind == _INFRA)
        if kind == _OK:
            break
        last_kind, last_error = kind, error
        if breaker is not None and breaker.tripped:
            break  # retrying against broken infrastructure helps nobody
        if attempt <= config.retries:
            delay = backoff_delay(config, spec.cell_id, attempt, params.seed)
            with tracer.span("backoff", attempt=attempt, delay_s=round(delay, 3)):
                time.sleep(delay)
    duration = time.perf_counter() - started

    if result is not None:
        status = CellStatus.OK if attempts == 1 else CellStatus.RETRIED
        error = None
        if run_dir is not None:
            try:
                with tracer.span("checkpoint"):
                    run_dir.save_cell(
                        spec.cell_id,
                        result,
                        status=status.value,
                        attempts=attempts,
                    )
            except (OSError, CheckpointError, InjectedCrash) as exc:
                # The result exists in memory but could not be made
                # durable; under --resume this cell would silently
                # re-run, so surface the IO failure as the cell's.
                if breaker is not None:
                    breaker.record(True)
                status = CellStatus.FAILED
                result = None
                error = f"checkpoint write failed: {exc}"
    else:
        status = CellStatus.TIMEOUT if last_kind == _TIMEOUT else CellStatus.FAILED
        error = last_error
    return (
        CellReport(
            spec.cell_id,
            status,
            attempts=attempts,
            duration_s=duration,
            seed=params.seed,
            error=error,
        ),
        result,
    )


def run_cells(
    specs: List[CellSpec],
    params: ExperimentParams,
    config: HarnessConfig,
    *,
    run_dir: Optional[RunDirectory] = None,
    resume: bool = False,
    inject: Optional[FaultInjection] = None,
    on_cell: Optional[CellCallback] = None,
    obs_config: Optional[ObsConfig] = None,
) -> RunReport:
    """Run every cell under supervision; returns the structured report.

    Completed cells checkpoint immediately (when ``run_dir`` is given), so
    a crash of the *harness itself* loses at most the in-flight cells.  On
    ``resume=True`` cells whose artifact already exists are reloaded and
    reported SKIPPED without re-running.

    ``config.jobs > 1`` supervises that many cells concurrently, each in
    its own worker process, without changing any per-cell guarantee: the
    report always lists cells in ``specs`` order, and checkpoint artifact
    bytes are identical to a serial run.  ``on_cell`` then fires in
    completion order (serialised — never concurrently).

    ``obs_config`` switches on the observability layer: metrics events
    (``run_start``/``run_end`` from the supervisor here, simulation
    heartbeats and counter deltas from inside the workers), tracing
    spans, and/or per-attempt cProfile dumps.  ``None`` (the default)
    keeps every obs code path dormant.
    """
    report = RunReport(params=params.to_dict())
    attempt_fn = _attempt_isolated if config.isolate else _attempt_inline
    breaker = _CircuitBreaker(config.breaker_threshold)
    event_log: Optional[EventLog] = None
    if obs_config is not None and obs_config.metrics:
        event_log = EventLog(obs_config.events_path)
        event_log.emit(
            "run_start",
            params=params.to_dict(),
            cells=[s.cell_id for s in specs],
            jobs=config.jobs,
        )

    def supervise(spec: CellSpec) -> Tuple[CellReport, Optional[ExperimentResult]]:
        return _supervise_cell(
            spec, params, config, attempt_fn, run_dir, resume, inject,
            obs_config, event_log, breaker,
        )

    try:
        if config.jobs > 1 and len(specs) > 1:
            cell_reports: List[Optional[CellReport]] = [None] * len(specs)
            callback_lock = threading.Lock()

            def supervise_at(index: int) -> None:
                spec = specs[index]
                cell_report, result = supervise(spec)
                cell_reports[index] = cell_report
                if on_cell:
                    with callback_lock:
                        on_cell(spec, cell_report, result)

            max_workers = min(config.jobs, len(specs))
            with ThreadPoolExecutor(
                max_workers=max_workers, thread_name_prefix="repro-sched"
            ) as pool:
                futures = [pool.submit(supervise_at, i) for i in range(len(specs))]
                for future in as_completed(futures):
                    future.result()  # propagate scheduler bugs immediately
            for cell_report in cell_reports:
                assert cell_report is not None
                report.add(cell_report)
        else:
            for spec in specs:
                cell_report, result = supervise(spec)
                report.add(cell_report)
                if on_cell:
                    on_cell(spec, cell_report, result)

        if event_log is not None:
            event_log.emit(
                "run_end",
                summary=report.to_dict()["summary"],
                ok=report.ok,
            )
    finally:
        if event_log is not None:
            event_log.close()

    if run_dir is not None:
        run_dir.save_report(report.to_dict())
    return report


def results_by_cell(
    specs: List[CellSpec],
    report: RunReport,
    run_dir: RunDirectory,
) -> Dict[str, ExperimentResult]:
    """Reload every completed cell's artifact from disk (post-run helper)."""
    out: Dict[str, ExperimentResult] = {}
    completed = {c.cell_id for c in report.cells if c.status.completed}
    for spec in specs:
        if spec.cell_id in completed:
            loaded = run_dir.load_cell(spec.cell_id)
            if loaded is not None:
                out[spec.cell_id] = loaded
    return out
