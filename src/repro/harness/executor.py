"""Supervised cell execution: isolation, timeouts, retries, checkpoints.

Each cell runs in its own ``multiprocessing`` worker (fork where the
platform supports it, spawn otherwise).  The supervisor waits on a pipe
rather than the process so a worker can never deadlock against a full
pipe buffer; a cell that produces nothing within the timeout is killed
and recorded as TIMEOUT instead of stalling the whole campaign.

Failures and timeouts are retried up to ``retries`` times with
exponential backoff.  Backoff jitter is drawn from a generator seeded by
(run seed, cell id, attempt), so a re-run of the same campaign sleeps the
same amounts — the harness introduces no nondeterminism of its own.

Results cross the process boundary as the same schema-versioned dicts the
checkpoint layer persists, so what ``--resume`` reloads is byte-for-byte
what a live worker would have produced.
"""

from __future__ import annotations

import multiprocessing
import random
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments.base import ExperimentParams, ExperimentResult
from repro.harness import invariants
from repro.harness.cells import CellSpec, FaultInjection, maybe_inject, run_cell
from repro.harness.checkpoint import RunDirectory
from repro.harness.report import CellReport, CellStatus, RunReport

#: Called after every cell with its report and result (None when degraded).
CellCallback = Callable[[CellSpec, CellReport, Optional[ExperimentResult]], None]


@dataclass(frozen=True)
class HarnessConfig:
    """Supervision knobs for one harness run.

    ``timeout_s`` bounds each *attempt*, not the whole cell; ``retries``
    is the number of extra attempts after the first.  ``isolate=False``
    runs cells in-process (no timeout protection — crash isolation and
    hang killing need a worker process) and exists for debugging and for
    environments where fork/spawn is unavailable.
    """

    timeout_s: Optional[float] = None
    retries: int = 1
    backoff_s: float = 0.5
    backoff_factor: float = 2.0
    jitter: float = 0.25
    isolate: bool = True
    check_invariants: bool = True
    strict: bool = False

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_factor < 1 or self.jitter < 0:
            raise ValueError("backoff must be >= 0, factor >= 1, jitter >= 0")


def backoff_delay(
    config: HarnessConfig, cell_id: str, attempt: int, seed: int
) -> float:
    """Deterministic exponential backoff with jitter, in seconds."""
    base = config.backoff_s * config.backoff_factor ** (attempt - 1)
    rng = random.Random(f"{seed}:{cell_id}:{attempt}")
    return base * (1.0 + config.jitter * rng.random())


def _start_method() -> str:
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


# ----------------------------------------------------------------------
# One attempt
# ----------------------------------------------------------------------
_OK, _ERROR, _TIMEOUT = "ok", "error", "timeout"


def _worker(
    conn,
    spec: CellSpec,
    params: ExperimentParams,
    inject: Optional[FaultInjection],
    attempt: int,
    check_invariants: bool,
) -> None:
    """Run one cell and ship its result (or traceback) over the pipe."""
    try:
        if check_invariants:
            invariants.set_enabled(True)
        maybe_inject(spec, inject, attempt)
        result = run_cell(spec, params)
        conn.send({"ok": True, "result": result.to_dict()})
    except BaseException:
        try:
            conn.send({"ok": False, "error": traceback.format_exc()})
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass
    finally:
        conn.close()


def _attempt_isolated(
    spec: CellSpec,
    params: ExperimentParams,
    config: HarnessConfig,
    inject: Optional[FaultInjection],
    attempt: int,
) -> Tuple[str, Optional[ExperimentResult], Optional[str]]:
    ctx = multiprocessing.get_context(_start_method())
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_worker,
        args=(child_conn, spec, params, inject, attempt, config.check_invariants),
        daemon=True,
        name=f"repro-cell-{spec.cell_id}",
    )
    proc.start()
    child_conn.close()
    try:
        if not parent_conn.poll(config.timeout_s):
            proc.terminate()
            proc.join(5)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join()
            return (_TIMEOUT, None,
                    f"no result within {config.timeout_s}s; worker killed")
        try:
            payload = parent_conn.recv()
        except EOFError:
            payload = None
    finally:
        parent_conn.close()
    proc.join(5)
    if payload is None:
        return (_ERROR, None,
                f"worker died with exit code {proc.exitcode} before "
                "producing a result")
    if payload.get("ok"):
        return (_OK, ExperimentResult.from_dict(payload["result"]), None)
    return (_ERROR, None, payload.get("error", "unknown worker error"))


def _attempt_inline(
    spec: CellSpec,
    params: ExperimentParams,
    config: HarnessConfig,
    inject: Optional[FaultInjection],
    attempt: int,
) -> Tuple[str, Optional[ExperimentResult], Optional[str]]:
    previous = invariants._enabled
    try:
        if config.check_invariants:
            invariants.set_enabled(True)
        maybe_inject(spec, inject, attempt)
        # Round-trip through the artifact schema even inline, so both
        # execution modes return exactly what a resume would reload.
        return (_OK,
                ExperimentResult.from_dict(run_cell(spec, params).to_dict()),
                None)
    except Exception:
        return (_ERROR, None, traceback.format_exc())
    finally:
        invariants.set_enabled(previous)


# ----------------------------------------------------------------------
# The supervised run
# ----------------------------------------------------------------------
def run_cells(
    specs: List[CellSpec],
    params: ExperimentParams,
    config: HarnessConfig,
    *,
    run_dir: Optional[RunDirectory] = None,
    resume: bool = False,
    inject: Optional[FaultInjection] = None,
    on_cell: Optional[CellCallback] = None,
) -> RunReport:
    """Run every cell under supervision; returns the structured report.

    Completed cells checkpoint immediately (when ``run_dir`` is given), so
    a crash of the *harness itself* loses at most the in-flight cell.  On
    ``resume=True`` cells whose artifact already exists are reloaded and
    reported SKIPPED without re-running.
    """
    report = RunReport(params=params.to_dict())
    attempt_fn = _attempt_isolated if config.isolate else _attempt_inline
    for spec in specs:
        cached = run_dir.load_cell(spec.cell_id) if (run_dir and resume) else None
        if cached is not None:
            cell_report = CellReport(
                spec.cell_id, CellStatus.SKIPPED, attempts=0, seed=params.seed
            )
            report.add(cell_report)
            if on_cell:
                on_cell(spec, cell_report, cached)
            continue

        started = time.perf_counter()
        result: Optional[ExperimentResult] = None
        last_kind, last_error = _ERROR, None
        attempts = 0
        for attempt in range(1, config.retries + 2):
            attempts = attempt
            kind, result, error = attempt_fn(spec, params, config, inject, attempt)
            if kind == _OK:
                break
            last_kind, last_error = kind, error
            if attempt <= config.retries:
                time.sleep(backoff_delay(config, spec.cell_id, attempt, params.seed))
        duration = time.perf_counter() - started

        if result is not None:
            status = CellStatus.OK if attempts == 1 else CellStatus.RETRIED
            if run_dir is not None:
                run_dir.save_cell(spec.cell_id, result)
            error = None
        else:
            status = (CellStatus.TIMEOUT if last_kind == _TIMEOUT
                      else CellStatus.FAILED)
            error = last_error
        cell_report = CellReport(
            spec.cell_id,
            status,
            attempts=attempts,
            duration_s=duration,
            seed=params.seed,
            error=error,
        )
        report.add(cell_report)
        if on_cell:
            on_cell(spec, cell_report, result)

    if run_dir is not None:
        run_dir.save_report(report.to_dict())
    return report


def results_by_cell(
    specs: List[CellSpec],
    report: RunReport,
    run_dir: RunDirectory,
) -> Dict[str, ExperimentResult]:
    """Reload every completed cell's artifact from disk (post-run helper)."""
    out: Dict[str, ExperimentResult] = {}
    completed = {c.cell_id for c in report.cells if c.status.completed}
    for spec in specs:
        if spec.cell_id in completed:
            loaded = run_dir.load_cell(spec.cell_id)
            if loaded is not None:
                out[spec.cell_id] = loaded
    return out
