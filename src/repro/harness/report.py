"""Structured run reports for the experiment harness.

Every cell the harness supervises ends in exactly one status:

========  ============================================================
OK        completed on the first attempt
RETRIED   completed, but only after one or more failed attempts
TIMEOUT   the final attempt exceeded the cell timeout and was killed
FAILED    the final attempt raised or the worker died
SKIPPED   not executed this run: a checkpoint artifact satisfied the
          cell (``--resume``), or the infrastructure circuit breaker
          tripped before the cell could start (then ``error`` is set)
========  ============================================================

The report is printed as an ASCII table at the end of a run and, when a
run directory is in use, saved as ``report.json``.

``report.json`` is *deterministic*: durations never appear in it (they
live in the printed table and in tracing spans/events), and a cell
satisfied from a checkpoint serialises under its **origin** status — the
status recorded when the artifact was produced (OK on the first attempt,
RETRIED after a retry, ...) — not as SKIPPED.  A crashed run, once
doctored and resumed, therefore converges to a ``report.json`` that is
byte-identical to a fault-free run's; the crash-matrix tests assert it.
The in-memory report (and the table) keeps SKIPPED, because "what did
*this* invocation execute" is what a human watching a resume wants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

#: Version of the ``report.json`` document layout.
#: 2: deterministic serialisation — no ``duration_s``; checkpointed cells
#: appear under their origin status; summary counts serialised statuses.
REPORT_SCHEMA_VERSION = 2


class CellStatus(Enum):
    OK = "OK"
    RETRIED = "RETRIED"
    TIMEOUT = "TIMEOUT"
    FAILED = "FAILED"
    SKIPPED = "SKIPPED"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def completed(self) -> bool:
        """Whether the cell's results exist (fresh or from checkpoint)."""
        return self in (CellStatus.OK, CellStatus.RETRIED, CellStatus.SKIPPED)


@dataclass
class CellReport:
    """Outcome of one supervised cell.

    ``spans`` (present only when the run traced) holds the cell's
    finished tracing spans — the root ``cell`` span plus one per
    attempt, retry backoff and checkpoint write — as the JSON-ready
    dicts of :meth:`repro.obs.spans.Span.to_dict`.

    ``origin_status``/``origin_attempts`` are set when a ``--resume``
    satisfied the cell from its artifact: how the result was originally
    earned.  Serialisation substitutes them for SKIPPED (see module
    docstring); a breaker-skipped cell has no origin and serialises as
    the SKIPPED it is.
    """

    cell_id: str
    status: CellStatus
    attempts: int = 1
    duration_s: float = 0.0
    seed: int = 0
    error: Optional[str] = None
    spans: Optional[List[Dict[str, object]]] = None
    origin_status: Optional[str] = None
    origin_attempts: int = 0

    def serialized_status(self) -> str:
        """The status this cell reports in ``report.json``."""
        if self.status is CellStatus.SKIPPED and self.origin_status:
            return self.origin_status
        return self.status.value

    def to_dict(self) -> Dict[str, object]:
        from_checkpoint = (
            self.status is CellStatus.SKIPPED and bool(self.origin_status)
        )
        d: Dict[str, object] = {
            "cell": self.cell_id,
            "status": self.serialized_status(),
            "attempts": self.origin_attempts if from_checkpoint else self.attempts,
            "seed": self.seed,
        }
        if self.error:
            d["error"] = self.error
        if self.spans is not None:
            d["spans"] = self.spans
        return d


@dataclass
class RunReport:
    """Everything one harness run produced, cell by cell."""

    cells: List[CellReport] = field(default_factory=list)
    params: Dict[str, object] = field(default_factory=dict)

    def add(self, cell: CellReport) -> None:
        self.cells.append(cell)

    @property
    def degraded(self) -> List[CellReport]:
        """Cells whose results are missing from this run.

        A resume-SKIPPED cell has its artifact and is fine; a
        breaker-SKIPPED cell (error set, no origin) has nothing.
        """
        return [
            c
            for c in self.cells
            if not c.status.completed
            or (c.status is CellStatus.SKIPPED and c.error is not None)
        ]

    @property
    def ok(self) -> bool:
        return not self.degraded

    def count(self, status: CellStatus) -> int:
        return sum(1 for c in self.cells if c.status is status)

    def exit_code(self, strict: bool) -> int:
        """0 unless ``strict`` and at least one cell is degraded."""
        return 1 if strict and not self.ok else 0

    def to_dict(self) -> Dict[str, object]:
        serialized = [c.serialized_status() for c in self.cells]
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "params": self.params,
            "cells": [c.to_dict() for c in self.cells],
            "summary": {
                s.value.lower(): serialized.count(s.value) for s in CellStatus
            },
            "ok": self.ok,
        }

    def format_table(self) -> str:
        """Fixed-width summary table, one row per cell."""
        headers = ["cell", "status", "attempts", "time(s)", "seed"]
        rows = [
            [
                c.cell_id,
                c.status.value,
                str(c.attempts),
                f"{c.duration_s:.2f}",
                str(c.seed),
            ]
            for c in self.cells
        ]
        table = [headers] + rows
        widths = [max(len(r[i]) for r in table) for i in range(len(headers))]

        def line(cells: List[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

        out = ["== harness report =="]
        out.append(line(headers))
        out.append(line(["-" * w for w in widths]))
        out.extend(line(r) for r in rows)
        counts = ", ".join(
            f"{s.value.lower()}={self.count(s)}"
            for s in CellStatus
            if self.count(s)
        )
        out.append(f"cells: {len(self.cells)} ({counts or 'none'})")
        for cell in self.degraded:
            first_line = (cell.error or "").strip().splitlines()
            out.append(
                f"degraded: {cell.cell_id} [{cell.status.value}]"
                + (f" — {first_line[-1]}" if first_line else "")
            )
        return "\n".join(out)
