"""Crash recovery for run directories: ``python -m repro.harness.doctor``.

Usage::

    python -m repro.harness.doctor RUN_DIR            # diagnose + repair
    python -m repro.harness.doctor RUN_DIR --dry-run  # diagnose only
    python -m repro.harness.doctor RUN_DIR --json     # machine-readable

A run that died mid-flight — power cut, OOM kill, a fault injected by
:mod:`repro.faults` — leaves a run directory in one of a small number of
states, every one of which this tool can classify and (except the last)
repair without re-running anything:

* stray ``*.tmp`` files from interrupted atomic writes — deleted;
* a torn ``manifest.json`` — restored from ``manifest.json.bak`` (the
  dual-slot protocol in :mod:`repro.harness.checkpoint`);
* torn or checksum-failing cell artifacts — moved to ``quarantine/``
  (never deleted: they are evidence), their registry entries dropped;
* valid artifacts the manifest does not know about (crash between the
  artifact write and the checksum registration) — re-registered;
* a torn ``events.jsonl`` tail — truncated; unparseable lines and
  events from simulations that never closed (the killed attempt's
  remnants) — dropped, preserving every surviving line's exact bytes;
* a missing or torn ``report.json`` — rebuilt from the manifest's cell
  plan plus the surviving artifacts' origin stubs.

The verdict is ``CLEAN`` (nothing to do), ``REPAIRED`` (or
``REPAIRABLE`` under ``--dry-run``), or ``CORRUPT`` — the manifest is
unrecoverable, so the directory cannot be resumed and the campaign must
start over.  After a successful repair, ``--resume`` re-runs exactly the
lost cells and the recovered directory converges byte-for-byte with a
fault-free run (the crash-matrix tests assert this end to end).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, cast

from repro.harness.checkpoint import (
    SCHEMA_VERSION,
    RunDirectory,
    verify_artifact_text,
)
from repro.harness.durable import atomic_write_text
from repro.harness.report import REPORT_SCHEMA_VERSION, CellStatus
from repro.obs.validate import split_torn_tail

VERDICT_CLEAN = "CLEAN"
VERDICT_REPAIRED = "REPAIRED"
VERDICT_REPAIRABLE = "REPAIRABLE"
VERDICT_CORRUPT = "CORRUPT"


@dataclass
class Diagnosis:
    """Everything one doctor pass found and (unless dry) fixed."""

    run_dir: str
    verdict: str = VERDICT_CLEAN
    repairs: List[str] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)
    cells_intact: List[str] = field(default_factory=list)
    cells_lost: List[str] = field(default_factory=list)

    def repair(self, message: str) -> None:
        self.repairs.append(message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "run_dir": self.run_dir,
            "verdict": self.verdict,
            "repairs": self.repairs,
            "problems": self.problems,
            "cells_intact": self.cells_intact,
            "cells_lost": self.cells_lost,
        }

    @property
    def exit_code(self) -> int:
        if self.verdict == VERDICT_CORRUPT:
            return 2
        if self.verdict == VERDICT_REPAIRABLE:
            return 1
        return 0


def _load_json(path: Path) -> Optional[Dict[str, object]]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict):
        return None
    return cast(Dict[str, object], payload)


def _quarantine(run: RunDirectory, path: Path, apply: bool) -> Path:
    """Move ``path`` into ``quarantine/`` without clobbering anything."""
    target = run.quarantine_path / path.name
    suffix = 0
    while target.exists():
        suffix += 1
        target = run.quarantine_path / f"{path.name}.{suffix}"
    if apply:
        run.quarantine_path.mkdir(parents=True, exist_ok=True)
        path.rename(target)
    return target


def _remove_tmp_files(run: RunDirectory, diag: Diagnosis, apply: bool) -> None:
    for tmp in sorted(run.path.glob("*.tmp")) + sorted(
        run.cell_dir().glob("*.tmp") if run.cell_dir().is_dir() else []
    ):
        if apply:
            tmp.unlink()
        diag.repair(f"removed stray temp file {tmp.name}")


def _recover_manifest(
    run: RunDirectory, diag: Diagnosis, apply: bool
) -> Optional[Dict[str, object]]:
    """A usable manifest document, repairing from backup if needed."""

    def usable(doc: Optional[Dict[str, object]]) -> bool:
        return doc is not None and doc.get("schema") == SCHEMA_VERSION

    current = _load_json(run.manifest_path) if run.manifest_path.exists() else None
    if usable(current):
        return current
    backup = (
        _load_json(run.manifest_backup_path)
        if run.manifest_backup_path.exists()
        else None
    )
    if run.manifest_path.exists():
        diag.problems.append(
            "manifest.json is torn or has an unknown schema"
        )
        quarantined = _quarantine(run, run.manifest_path, apply)
        diag.repair(f"quarantined bad manifest as {quarantined.name}")
    else:
        diag.problems.append("manifest.json is missing")
    if usable(backup):
        if apply:
            atomic_write_text(
                run.manifest_path,
                json.dumps(backup, sort_keys=True, indent=2) + "\n",
            )
        diag.repair("restored manifest.json from manifest.json.bak")
        return backup
    diag.problems.append(
        "no usable manifest.json.bak either — the run directory cannot "
        "be resumed; start a fresh run"
    )
    return None


def _audit_cells(
    run: RunDirectory,
    manifest: Dict[str, object],
    diag: Diagnosis,
    apply: bool,
) -> bool:
    """Quarantine bad artifacts, sync the checksum registry.

    Returns True when the manifest document was modified.
    """
    registry_obj = manifest.get("checksums")
    registry: Dict[str, object] = (
        dict(cast(Dict[str, object], registry_obj))
        if isinstance(registry_obj, dict)
        else {}
    )
    changed = not isinstance(registry_obj, dict)
    surviving: Dict[str, str] = {}
    if run.cell_dir().is_dir():
        for path in sorted(run.cell_dir().glob("*.json")):
            try:
                text = path.read_text()
            except OSError as exc:  # pragma: no cover - unreadable file
                diag.problems.append(f"cells/{path.name}: unreadable ({exc})")
                continue
            payload, problem = verify_artifact_text(text)
            if payload is None or problem is None and "cell" not in payload:
                problem = problem or "artifact carries no cell id"
            if problem is not None:
                diag.problems.append(f"cells/{path.name}: {problem}")
                quarantined = _quarantine(run, path, apply)
                diag.repair(
                    f"quarantined cells/{path.name} as "
                    f"quarantine/{quarantined.name}"
                )
                continue
            assert payload is not None
            cell_id = str(payload["cell"])
            surviving[cell_id] = str(payload.get("checksum", ""))
    for cell_id, checksum in sorted(surviving.items()):
        if registry.get(cell_id) != checksum:
            if cell_id in registry:
                diag.problems.append(
                    f"manifest checksum for {cell_id} disagrees with the "
                    "(internally consistent) artifact"
                )
            registry[cell_id] = checksum
            changed = True
            diag.repair(f"registered checksum for {cell_id} in manifest")
    for cell_id in sorted(set(registry) - set(surviving)):
        del registry[cell_id]
        changed = True
        diag.repair(
            f"dropped manifest checksum for {cell_id} (no surviving artifact)"
        )
    manifest["checksums"] = registry

    plan_obj = manifest.get("cells")
    plan = (
        [str(c) for c in cast(List[object], plan_obj)]
        if isinstance(plan_obj, list)
        else []
    )
    if not plan:
        plan = sorted(surviving)
    diag.cells_intact = [c for c in plan if c in surviving]
    diag.cells_lost = [c for c in plan if c not in surviving]
    diag.cells_intact += sorted(set(surviving) - set(plan))
    return changed


def _recover_suffix(line: str) -> Optional[str]:
    """The longest parseable JSON-object suffix of a corrupt line, if any.

    Only the true fragment/event boundary parses: ``json.loads`` rejects
    trailing garbage, so scanning start candidates cannot mis-split.
    """
    for index in range(1, len(line)):
        if line[index] != "{":
            continue
        candidate = line[index:]
        try:
            if isinstance(json.loads(candidate), dict):
                return candidate
        except json.JSONDecodeError:
            continue
    return None


def _sim_scope(event: Dict[str, object]) -> Optional[str]:
    """The sim/pass id an event belongs to, or None for run-level events."""
    sim = event.get("sim")
    return str(sim) if isinstance(sim, str) else None


def _repair_events(run: RunDirectory, diag: Diagnosis, apply: bool) -> None:
    events_path = run.path / "events.jsonl"
    if not events_path.exists():
        return
    text = events_path.read_text()
    lines, torn_warning = split_torn_tail(text)
    if torn_warning:
        diag.problems.append(f"events.jsonl: {torn_warning.split(' (')[0]}")
        diag.repair("truncated torn final line of events.jsonl")
    kept: List[str] = []
    parsed: List[Optional[Dict[str, object]]] = []
    dropped_unparseable = 0
    recovered_suffixes = 0
    for line in lines:
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            # A process torn mid-append leaves a partial line with no
            # newline; the next O_APPEND writer's (complete, innocent)
            # event then glues onto it.  Recover that suffix — dropping
            # it would lose a healthy sim's counters delta and break
            # reconciliation for a simulation that finished cleanly.
            suffix = _recover_suffix(line)
            dropped_unparseable += 1
            if suffix is not None:
                recovered_suffixes += 1
                kept.append(suffix)
                parsed.append(
                    cast(Dict[str, object], json.loads(suffix))
                )
            continue
        if not isinstance(event, dict):
            dropped_unparseable += 1
            continue
        kept.append(line)
        parsed.append(cast(Dict[str, object], event))
    if dropped_unparseable:
        diag.problems.append(
            f"events.jsonl: {dropped_unparseable} torn/unparseable "
            "line(s) mid-stream"
        )
        diag.repair(
            f"dropped {dropped_unparseable} torn fragment(s)"
            + (
                f", recovering {recovered_suffixes} complete event(s) "
                "glued to them"
                if recovered_suffixes
                else ""
            )
        )

    # Simulations and MRC passes a dead worker never closed: every event
    # of those ids is a remnant of the killed attempt — the resumed run
    # re-emits the whole bracket under a fresh sim id.
    opened: Set[str] = set()
    closed: Set[str] = set()
    for event in parsed:
        assert event is not None
        etype = event.get("type")
        sim = _sim_scope(event)
        if sim is None:
            continue
        if etype in ("sim_start", "mrc_start"):
            opened.add(sim)
        elif etype in ("sim_end", "mrc_end"):
            closed.add(sim)
    unclosed = opened - closed
    if unclosed:
        filtered = [
            line
            for line, event in zip(kept, parsed)
            if event is not None and _sim_scope(event) not in unclosed
        ]
        dropped = len(kept) - len(filtered)
        diag.problems.append(
            f"events.jsonl: {len(unclosed)} unclosed sim/mrc bracket(s) "
            f"from killed attempt(s)"
        )
        diag.repair(
            f"dropped {dropped} event(s) of {len(unclosed)} unclosed "
            f"sim/mrc bracket(s): {', '.join(sorted(unclosed))}"
        )
        kept = filtered

    repaired = "".join(line + "\n" for line in kept)
    if repaired != text and apply:
        atomic_write_text(events_path, repaired)


def _rebuild_report(
    run: RunDirectory,
    manifest: Dict[str, object],
    diag: Diagnosis,
    apply: bool,
) -> None:
    existing = (
        _load_json(run.report_path) if run.report_path.exists() else None
    )
    have = set(diag.cells_intact)
    if (
        existing is not None
        and existing.get("schema") == REPORT_SCHEMA_VERSION
        and not diag.cells_lost
    ):
        return  # a valid report over a complete cell set: nothing to do
    if existing is None and run.report_path.exists():
        diag.problems.append("report.json is torn")
    elif not run.report_path.exists():
        diag.problems.append("report.json is missing (run died before finalize)")
    params_obj = manifest.get("params")
    params = (
        cast(Dict[str, object], params_obj)
        if isinstance(params_obj, dict)
        else {}
    )
    seed = params.get("seed", 0)
    cells: List[Dict[str, object]] = []
    for cell_id in diag.cells_intact + diag.cells_lost:
        if cell_id in have:
            entry = run.load_checkpoint(cell_id)
            status = entry.status if entry is not None else CellStatus.OK.value
            attempts = entry.attempts if entry is not None else 1
            cells.append(
                {
                    "cell": cell_id,
                    "status": status,
                    "attempts": attempts,
                    "seed": seed,
                }
            )
        else:
            cells.append(
                {
                    "cell": cell_id,
                    "status": CellStatus.SKIPPED.value,
                    "attempts": 0,
                    "seed": seed,
                    "error": "artifact lost in crash; re-run with --resume",
                }
            )
    statuses = [str(c["status"]) for c in cells]
    report: Dict[str, object] = {
        "schema": REPORT_SCHEMA_VERSION,
        "params": params,
        "cells": cells,
        "summary": {s.value.lower(): statuses.count(s.value) for s in CellStatus},
        "ok": not diag.cells_lost,
    }
    if apply:
        atomic_write_text(
            run.report_path, json.dumps(report, sort_keys=True, indent=2) + "\n"
        )
    diag.repair(
        f"rebuilt report.json from {len(have)} surviving checkpoint(s)"
    )


def diagnose(run_dir: Path, *, apply: bool = True) -> Diagnosis:
    """One full doctor pass over ``run_dir``; repairs unless ``apply=False``."""
    run = RunDirectory(run_dir)
    diag = Diagnosis(run_dir=str(run_dir))
    _remove_tmp_files(run, diag, apply)
    manifest = _recover_manifest(run, diag, apply)
    if manifest is None:
        diag.verdict = VERDICT_CORRUPT
        return diag
    manifest_changed = _audit_cells(run, manifest, diag, apply)
    if manifest_changed:
        if apply:
            atomic_write_text(
                run.manifest_path,
                json.dumps(manifest, sort_keys=True, indent=2) + "\n",
            )
        diag.repair("rewrote manifest.json with the synced checksum registry")
    _repair_events(run, diag, apply)
    _rebuild_report(run, manifest, diag, apply)
    if diag.repairs:
        diag.verdict = VERDICT_REPAIRED if apply else VERDICT_REPAIRABLE
    return diag


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.doctor",
        description="Diagnose and repair a crashed harness run directory "
        "so --resume can finish the campaign.",
    )
    parser.add_argument("run_dir", metavar="RUN_DIR", help="run directory to doctor")
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be repaired without touching anything",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the diagnosis as a JSON document on stdout",
    )
    args = parser.parse_args(argv)

    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"doctor: no such run directory: {run_dir}", file=sys.stderr)
        return 2
    diag = diagnose(run_dir, apply=not args.dry_run)

    if args.json:
        print(json.dumps(diag.to_dict(), sort_keys=True, indent=2))
        return diag.exit_code
    for problem in diag.problems:
        print(f"doctor: problem: {problem}")
    for repair in diag.repairs:
        verb = "would repair" if args.dry_run else "repaired"
        print(f"doctor: {verb}: {repair}")
    print(
        f"doctor: {diag.verdict} — {len(diag.cells_intact)} cell(s) intact, "
        f"{len(diag.cells_lost)} lost"
        + (f" ({', '.join(diag.cells_lost)})" if diag.cells_lost else "")
    )
    if diag.verdict == VERDICT_CORRUPT:
        print(
            "doctor: not resumable — manifest unrecoverable; start a fresh run",
            file=sys.stderr,
        )
    elif diag.cells_lost:
        print(
            "doctor: resume with the same command plus --resume to re-run "
            "the lost cell(s)"
        )
    return diag.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
