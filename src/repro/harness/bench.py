"""Performance benchmark harness: the ``BENCH_sweep.json`` artifact.

Measures the numbers every scaling PR must not regress:

* **single-cell throughput** — references simulated per second by one
  :func:`repro.system.simulator.simulate` call (the per-reference hot
  loop, free of harness overhead), measured twice: on the paper's
  direct-mapped L1 and on a 2-way L1 (the general set-associative
  vector pass), each alongside the pinned scalar reference so the
  artifact carries both ``engine_speedup`` figures;
* **MRC throughput** — the single-pass stack-distance engine against
  the brute-force per-size FA sweep it replaced: both must agree
  exactly, and the artifact records the speedup (the subsystem's
  contract is >= 3x at the default nine-point ladder);
* **sweep wall-clock** — a full ``fig3sweep`` campaign (one cell per
  Section-5 benchmark) executed at ``--jobs 1`` and ``--jobs N``, which
  measures the parallel scheduler's scaling and cross-checks that both
  modes produce byte-identical checkpoint artifacts and identical cell
  statuses;
* **service throughput/latency** (``single_node_service``) — a real
  :class:`repro.serve.ConflictServer` on a unix socket, driven by the
  package's own load generator at ``--serve-sessions`` concurrent
  sessions: aggregate refs/sec across all sessions plus p50/p99 answer
  latency measured *under* that load, the floor the committed baseline
  holds the service to.

The result is written as a small schema-versioned JSON artifact
(``BENCH_sweep.json`` by convention) that CI uploads per commit, forming
a throughput trajectory over the repo's history.  ``--check-against``
compares the measured single-cell throughput with a committed baseline
and exits non-zero on a regression beyond ``--max-regression`` — the
guard-rail for hot-path changes.

Usage::

    python -m repro.harness.bench --out BENCH_sweep.json
    python -m repro.harness.bench --refs 20000 --jobs 4 \
        --check-against benchmarks/BENCH_baseline.json --max-regression 0.3
    python -m repro.harness.bench --skip-sweep      # hot loop only
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.base import ExperimentParams
from repro.harness.cells import expand_cells
from repro.harness.checkpoint import RunDirectory
from repro.harness.durable import atomic_write_text
from repro.harness.executor import HarnessConfig, run_cells
from repro.mrc.curve import brute_force_fa_misses, compute_mrc, default_size_ladder
from repro.obs.spans import NULL_TRACER, Tracer
from repro.system.config import MachineConfig, PAPER_MACHINE
from repro.system.policies import BASELINE
from repro.system.simulator import simulate, validate_engine_env
from repro.workloads.spec_analogs import build

#: Version of the BENCH artifact layout; bump on incompatible change.
BENCH_SCHEMA = 1

#: Benchmark the single-cell probe simulates (an irregular C analog with
#: a realistic hit/miss mix, so the measurement exercises both paths).
SINGLE_CELL_BENCH = "gcc"


#: L1 associativity of the second single-cell probe: the smallest
#: set-associative point, i.e. the paper's pseudo-associative cell and
#: the first rung of every associativity ladder.
ASSOC_PROBE_WAYS = 2


def assoc_probe_machine() -> MachineConfig:
    """The paper machine with a :data:`ASSOC_PROBE_WAYS`-way L1."""
    return replace(
        PAPER_MACHINE, l1=replace(PAPER_MACHINE.l1, assoc=ASSOC_PROBE_WAYS)
    )


def measure_single_cell(
    refs: int,
    warmup: int,
    seed: int,
    repeats: int = 3,
    tracer: Tracer = NULL_TRACER,
    engine: str = "auto",
    machine: MachineConfig = PAPER_MACHINE,
) -> Dict[str, object]:
    """Time one trace through one policy; report the best of ``repeats``.

    The best (not mean) run is the right summary for a regression gate:
    scheduling noise only ever slows a run down, so the fastest repeat is
    the closest estimate of the code's true cost.  ``engine`` selects the
    simulation engine (the probe policy is bufferless, so ``"auto"``
    resolves to the vector engine on any ``machine``).
    """
    trace = build(SINGLE_CELL_BENCH, refs, seed)
    best = float("inf")
    for repeat in range(1, repeats + 1):
        with tracer.span("bench.iteration", repeat=repeat, engine=engine) as span:
            started = time.perf_counter()
            simulate(trace, BASELINE, machine, warmup=warmup, engine=engine)
            elapsed = time.perf_counter() - started
            span.set(seconds=round(elapsed, 4))
        best = min(best, elapsed)
    return {
        "bench": SINGLE_CELL_BENCH,
        "policy": BASELINE.name,
        "engine": engine,
        "l1_assoc": machine.l1.assoc,
        "refs": refs,
        "warmup": warmup,
        "repeats": repeats,
        "seconds": round(best, 4),
        "refs_per_sec": round(refs / best, 1),
    }


def engines_identical(
    refs: int, warmup: int, seed: int, machine: MachineConfig = PAPER_MACHINE
) -> bool:
    """One run per engine over the probe trace: must agree to the byte.

    The two engines' contract is byte-identical ``SystemStats`` — the
    bench enforces it on the exact workload it prices, so a published
    throughput number can never come from an engine that drifted.
    """
    trace = build(SINGLE_CELL_BENCH, refs, seed)
    scalar = simulate(trace, BASELINE, machine, warmup=warmup, engine="scalar")
    vector = simulate(trace, BASELINE, machine, warmup=warmup, engine="vector")
    return json.dumps(scalar.as_dict(), sort_keys=True) == json.dumps(
        vector.as_dict(), sort_keys=True
    )


def measure_mrc(
    refs: int, seed: int, repeats: int = 3, tracer: Tracer = NULL_TRACER
) -> Dict[str, object]:
    """Time one exact MRC pass against the per-size brute-force sweep.

    Both sides run over the same trace and size ladder and must produce
    identical miss counts (``identical`` in the payload; :func:`main`
    fails the run otherwise).  ``speedup`` is the subsystem's headline
    number: one stack pass pricing every size vs one FA simulation per
    size.  Best-of-``repeats`` on both sides, same rationale as
    :func:`measure_single_cell`.
    """
    trace = build(SINGLE_CELL_BENCH, refs, seed)
    addresses = trace.addresses
    address_list = [int(a) for a in addresses]
    sizes = default_size_ladder()

    best_pass = float("inf")
    curve = compute_mrc(addresses, 64, sizes)
    for repeat in range(1, repeats + 1):
        with tracer.span("bench.mrc_pass", repeat=repeat) as span:
            started = time.perf_counter()
            curve = compute_mrc(addresses, 64, sizes)
            elapsed = time.perf_counter() - started
            span.set(seconds=round(elapsed, 4))
        best_pass = min(best_pass, elapsed)

    best_brute = float("inf")
    brute = list(curve.misses)
    for repeat in range(1, repeats + 1):
        with tracer.span("bench.mrc_brute", repeat=repeat) as span:
            started = time.perf_counter()
            brute = [
                brute_force_fa_misses(address_list, 64, size) for size in sizes
            ]
            elapsed = time.perf_counter() - started
            span.set(seconds=round(elapsed, 4))
        best_brute = min(best_brute, elapsed)

    return {
        "bench": SINGLE_CELL_BENCH,
        "refs": refs,
        "sizes": len(sizes),
        "repeats": repeats,
        "single_pass_s": round(best_pass, 4),
        "brute_force_s": round(best_brute, 4),
        "speedup": round(best_brute / best_pass, 2) if best_pass else 0.0,
        "refs_per_sec": round(refs / best_pass, 1),
        "identical": list(curve.misses) == brute,
    }


def _timed_sweep(
    params: ExperimentParams, jobs: int, run_dir: RunDirectory
) -> Dict[str, object]:
    run_dir.prepare(params, resume=False)
    cells = expand_cells(["fig3sweep"])
    started = time.perf_counter()
    report = run_cells(cells, params, HarnessConfig(jobs=jobs), run_dir=run_dir)
    wall_clock = time.perf_counter() - started
    return {
        "jobs": jobs,
        "cells": len(cells),
        "wall_clock_s": round(wall_clock, 3),
        "statuses": {c.cell_id: c.status.value for c in report.cells},
        "ok": report.ok,
    }


def measure_sweep(
    refs: int,
    warmup: int,
    seed: int,
    jobs: int,
    scratch: Path,
    tracer: Tracer = NULL_TRACER,
) -> Dict[str, object]:
    """Run the fig3sweep campaign serially and at ``jobs``; compare them.

    Returns wall-clock for both modes plus the equivalence checks the
    scheduler guarantees: identical per-cell statuses and byte-identical
    checkpoint artifacts regardless of dispatch order.
    """
    params = ExperimentParams(n_refs=refs, warmup=warmup, seed=seed)
    serial_dir = RunDirectory(scratch / "jobs1")
    parallel_dir = RunDirectory(scratch / f"jobs{jobs}")
    with tracer.span("bench.sweep", jobs=1):
        serial = _timed_sweep(params, 1, serial_dir)
    with tracer.span("bench.sweep", jobs=jobs):
        parallel = _timed_sweep(params, jobs, parallel_dir)

    artifacts_identical = all(
        serial_dir.cell_path(spec.cell_id).read_bytes()
        == parallel_dir.cell_path(spec.cell_id).read_bytes()
        for spec in expand_cells(["fig3sweep"])
    )
    speedup = (
        serial["wall_clock_s"] / parallel["wall_clock_s"]
        if parallel["wall_clock_s"]
        else 0.0
    )
    return {
        "experiment": "fig3sweep",
        "serial": serial,
        "parallel": parallel,
        "speedup": round(speedup, 3),
        "statuses_identical": serial["statuses"] == parallel["statuses"],
        "artifacts_identical": artifacts_identical,
    }


def measure_service(
    sessions: int,
    refs_per_session: int,
    batch_size: int,
    scratch: Path,
    tracer: Tracer = NULL_TRACER,
) -> Dict[str, object]:
    """One in-process service run: server + loadgen on one event loop.

    Running both sides in one process over a unix socket keeps the cell
    hermetic (no ports, no subprocess lifetime management) and measures
    the configuration that matters for the floor: every session
    concurrent (loadgen concurrency == sessions), answers timed while
    other sessions' batches keep the loop busy.  A sampler task records
    the peak number of simultaneously live server sessions so the
    artifact proves the concurrency level actually happened.
    """
    import asyncio

    from repro.serve.config import ServeConfig, raise_fd_limit
    from repro.serve.loadgen import build_parser as loadgen_parser
    from repro.serve.loadgen import run_load
    from repro.serve.server import ConflictServer

    # Server and loadgen share the process: two descriptors per session.
    raise_fd_limit(2 * sessions + 64)
    socket_path = str(scratch / "bench-serve.sock")

    async def cell() -> Dict[str, object]:
        server = ConflictServer(
            ServeConfig(
                socket_path=socket_path,
                max_sessions=sessions + 8,
                idle_timeout_s=120.0,
            )
        )
        await server.start()
        peak = 0

        async def sample_peak() -> None:
            nonlocal peak
            while True:
                peak = max(peak, server.live_sessions())
                await asyncio.sleep(0.02)

        sampler = asyncio.ensure_future(sample_peak())
        args = loadgen_parser().parse_args(
            [
                "--socket",
                socket_path,
                "--sessions",
                str(sessions),
                "--concurrency",
                str(sessions),
                "--refs-per-session",
                str(refs_per_session),
                "--batch-size",
                str(batch_size),
            ]
        )
        with tracer.span("bench.service", sessions=sessions):
            report = await run_load(args)
        sampler.cancel()
        await server.stop()
        report["peak_sessions"] = peak
        report["state_entries_final"] = server.state_entries()
        return report

    return asyncio.run(cell())


def check_regression(
    payload: Dict[str, object], baseline_path: Path, max_regression: float
) -> Optional[str]:
    """Error text when throughput regressed beyond the allowance, else None."""
    baseline = json.loads(baseline_path.read_text())
    floor = float(baseline["single_cell"]["refs_per_sec"]) * (1.0 - max_regression)
    measured = float(payload["single_cell"]["refs_per_sec"])  # type: ignore[index]
    if measured < floor:
        return (
            f"single-cell throughput regressed: {measured:.0f} refs/sec < "
            f"{floor:.0f} (baseline {baseline['single_cell']['refs_per_sec']} "
            f"- {max_regression:.0%} allowance)"
        )
    if "single_cell_assoc" in baseline and "single_cell_assoc" in payload:
        assoc_floor = float(
            baseline["single_cell_assoc"]["refs_per_sec"]
        ) * (1.0 - max_regression)
        assoc_measured = float(
            payload["single_cell_assoc"]["refs_per_sec"]  # type: ignore[index]
        )
        if assoc_measured < assoc_floor:
            return (
                f"associative-L1 throughput regressed: {assoc_measured:.0f} "
                f"refs/sec < {assoc_floor:.0f} (baseline "
                f"{baseline['single_cell_assoc']['refs_per_sec']} "
                f"- {max_regression:.0%} allowance)"
            )
    if "mrc" in baseline and "mrc" in payload:
        mrc_floor = float(baseline["mrc"]["refs_per_sec"]) * (1.0 - max_regression)
        mrc_measured = float(payload["mrc"]["refs_per_sec"])  # type: ignore[index]
        if mrc_measured < mrc_floor:
            return (
                f"MRC throughput regressed: {mrc_measured:.0f} refs/sec < "
                f"{mrc_floor:.0f} (baseline {baseline['mrc']['refs_per_sec']} "
                f"- {max_regression:.0%} allowance)"
            )
    if "single_node_service" in baseline and "single_node_service" in payload:
        serve_base = baseline["single_node_service"]
        serve_cell = payload["single_node_service"]
        serve_floor = float(serve_base["refs_per_sec"]) * (1.0 - max_regression)
        serve_measured = float(serve_cell["refs_per_sec"])  # type: ignore[index]
        if serve_measured < serve_floor:
            return (
                f"service throughput regressed: {serve_measured:.0f} "
                f"refs/sec < {serve_floor:.0f} (baseline "
                f"{serve_base['refs_per_sec']} - {max_regression:.0%} "
                f"allowance)"
            )
        if int(serve_cell["peak_sessions"]) < int(  # type: ignore[index]
            serve_base["sessions"]
        ):
            return (
                f"service concurrency shortfall: peaked at "
                f"{serve_cell['peak_sessions']} live session(s) "  # type: ignore[index]
                f"< committed {serve_base['sessions']}"
            )
        # Latency regresses upward, so the allowance flips sign.
        p99_ceiling = float(serve_base["answer_p99_ms"]) * (1.0 + max_regression)
        p99_measured = float(serve_cell["answer_p99_ms"])  # type: ignore[index]
        if p99_measured > p99_ceiling:
            return (
                f"service answer latency regressed: p99 {p99_measured:.1f}ms "
                f"> {p99_ceiling:.1f}ms (baseline "
                f"{serve_base['answer_p99_ms']}ms + {max_regression:.0%} "
                f"allowance)"
            )
    return None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.bench",
        description="Measure hot-loop throughput and sweep scaling; "
        "emit the BENCH_sweep.json trajectory artifact.",
    )
    parser.add_argument("--refs", type=int, default=60_000, help="trace length")
    parser.add_argument("--warmup", type=int, default=20_000, help="warmup refs")
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parallel width for the sweep comparison (default: CPU count)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_sweep.json",
        metavar="FILE",
        help="where to write the artifact (default: %(default)s)",
    )
    parser.add_argument(
        "--skip-sweep",
        action="store_true",
        help="measure only the single-cell hot loop (fast smoke)",
    )
    parser.add_argument(
        "--serve-sessions",
        type=int,
        default=1000,
        metavar="N",
        help="concurrent sessions for the single_node_service cell "
        "(default: %(default)s — the committed concurrency floor)",
    )
    parser.add_argument(
        "--serve-refs",
        type=int,
        default=4000,
        metavar="N",
        help="addresses each service session streams (default: %(default)s)",
    )
    parser.add_argument(
        "--skip-serve",
        action="store_true",
        help="skip the single_node_service cell",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        metavar="BASELINE",
        help="compare single-cell refs/sec against this committed artifact",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        metavar="FRACTION",
        help="allowed single-cell slowdown vs baseline (default: 0.30)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record a tracing span per bench iteration/sweep into the artifact",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "scalar", "vector"),
        default="auto",
        help="simulation engine for the single-cell probe (default: auto; "
        "the scalar reference is always measured alongside for the "
        "engine-speedup figure)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.refs <= 0 or not 0 <= args.warmup < args.refs:
        print("bench: need refs > 0 and 0 <= warmup < refs", file=sys.stderr)
        return 2
    if not 0 <= args.max_regression < 1:
        print("bench: --max-regression must be in [0, 1)", file=sys.stderr)
        return 2
    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        print("bench: --jobs must be >= 1", file=sys.stderr)
        return 2
    try:
        # A typo'd REPRO_SIM_ENGINE must abort before anything is timed
        # (or inherited by sweep workers), not fall back per cell.
        validate_engine_env()
    except ValueError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2

    tracer = Tracer("bench") if args.trace else NULL_TRACER
    payload: Dict[str, object] = {
        "schema": BENCH_SCHEMA,
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "single_cell": measure_single_cell(
            args.refs, args.warmup, args.seed, tracer=tracer, engine=args.engine
        ),
        "single_cell_scalar": measure_single_cell(
            args.refs, args.warmup, args.seed, tracer=tracer, engine="scalar"
        ),
        "engines_identical": engines_identical(args.refs, args.warmup, args.seed),
        "single_cell_assoc": measure_single_cell(
            args.refs, args.warmup, args.seed, tracer=tracer,
            engine=args.engine, machine=assoc_probe_machine(),
        ),
        "single_cell_assoc_scalar": measure_single_cell(
            args.refs, args.warmup, args.seed, tracer=tracer,
            engine="scalar", machine=assoc_probe_machine(),
        ),
        "engines_identical_assoc": engines_identical(
            args.refs, args.warmup, args.seed, machine=assoc_probe_machine()
        ),
        "mrc": measure_mrc(args.refs, args.seed, tracer=tracer),
    }
    scalar_cell = payload["single_cell_scalar"]
    payload["engine_speedup"] = round(
        float(payload["single_cell"]["refs_per_sec"])  # type: ignore[index]
        / float(scalar_cell["refs_per_sec"]),  # type: ignore[index]
        2,
    )
    assoc_scalar_cell = payload["single_cell_assoc_scalar"]
    payload["engine_speedup_assoc"] = round(
        float(payload["single_cell_assoc"]["refs_per_sec"])  # type: ignore[index]
        / float(assoc_scalar_cell["refs_per_sec"]),  # type: ignore[index]
        2,
    )
    if not args.skip_serve:
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as scratch:
            payload["single_node_service"] = measure_service(
                args.serve_sessions,
                args.serve_refs,
                batch_size=max(1, args.serve_refs // 4),
                scratch=Path(scratch),
                tracer=tracer,
            )
    if not args.skip_sweep:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as scratch:
            payload["sweep"] = measure_sweep(
                args.refs, args.warmup, args.seed, jobs, Path(scratch), tracer=tracer
            )
    if args.trace:
        payload["spans"] = tracer.to_dicts()

    out = Path(args.out)
    atomic_write_text(out, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    single = payload["single_cell"]
    print(
        f"[bench] single-cell ({single['engine']}): "  # type: ignore[index]
        f"{single['refs_per_sec']} refs/sec "  # type: ignore[index]
        f"({single['refs']} refs, best of {single['repeats']})"  # type: ignore[index]
    )
    print(
        f"[bench] single-cell (scalar): {scalar_cell['refs_per_sec']} "  # type: ignore[index]
        f"refs/sec — engine speedup {payload['engine_speedup']}x, "
        f"identical stats: {payload['engines_identical']}"
    )
    if not payload["engines_identical"]:
        print(
            "[bench] ERROR: vector engine disagrees with the scalar reference",
            file=sys.stderr,
        )
        return 1
    assoc_cell = payload["single_cell_assoc"]
    print(
        f"[bench] single-cell ({ASSOC_PROBE_WAYS}-way L1, "
        f"{assoc_cell['engine']}): "  # type: ignore[index]
        f"{assoc_cell['refs_per_sec']} refs/sec vs "  # type: ignore[index]
        f"{assoc_scalar_cell['refs_per_sec']} scalar "  # type: ignore[index]
        f"— engine speedup {payload['engine_speedup_assoc']}x, "
        f"identical stats: {payload['engines_identical_assoc']}"
    )
    if not payload["engines_identical_assoc"]:
        print(
            "[bench] ERROR: vector engine disagrees with the scalar "
            f"reference on the {ASSOC_PROBE_WAYS}-way L1 probe",
            file=sys.stderr,
        )
        return 1
    mrc = payload["mrc"]
    print(
        f"[bench] mrc: {mrc['refs_per_sec']} refs/sec, "  # type: ignore[index]
        f"{mrc['speedup']}x vs brute force over {mrc['sizes']} sizes "  # type: ignore[index]
        f"(identical: {mrc['identical']})"  # type: ignore[index]
    )
    if not mrc["identical"]:  # type: ignore[index]
        print(
            "[bench] ERROR: single-pass MRC disagrees with brute force",
            file=sys.stderr,
        )
        return 1
    if "single_node_service" in payload:
        serve_cell = payload["single_node_service"]
        print(
            f"[bench] service: {serve_cell['sessions']} session(s) "  # type: ignore[index]
            f"(peak {serve_cell['peak_sessions']} live), "  # type: ignore[index]
            f"{serve_cell['refs_per_sec']} refs/sec aggregate, "  # type: ignore[index]
            f"answers p50={serve_cell['answer_p50_ms']}ms "  # type: ignore[index]
            f"p99={serve_cell['answer_p99_ms']}ms"  # type: ignore[index]
        )
        if serve_cell["errors"]:  # type: ignore[index]
            print(
                "[bench] ERROR: service sessions failed during the bench run",
                file=sys.stderr,
            )
            return 1
    if "sweep" in payload:
        sweep = payload["sweep"]
        print(
            f"[bench] fig3sweep: jobs=1 {sweep['serial']['wall_clock_s']}s, "  # type: ignore[index]
            f"jobs={sweep['parallel']['jobs']} "  # type: ignore[index]
            f"{sweep['parallel']['wall_clock_s']}s "  # type: ignore[index]
            f"(speedup {sweep['speedup']}x, "  # type: ignore[index]
            f"artifacts identical: {sweep['artifacts_identical']})"  # type: ignore[index]
        )
        if not (sweep["statuses_identical"] and sweep["artifacts_identical"]):  # type: ignore[index]
            print("[bench] ERROR: jobs=1 and jobs=N runs disagree", file=sys.stderr)
            return 1
    print(f"[bench] artifact written to {out}")

    if args.check_against:
        error = check_regression(payload, Path(args.check_against), args.max_regression)
        if error:
            print(f"[bench] FAIL: {error}", file=sys.stderr)
            return 1
        print(f"[bench] throughput within {args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
