"""Conservation-law checks for simulation statistics.

Every counter object in :mod:`repro.cache.stats` obeys a small algebra —
accesses split exactly into hits and misses, buffer hits split exactly by
role, the timing model's clock decomposes into issue time plus recorded
stalls.  A simulation that violates one of these laws has corrupted state
(or a bookkeeping bug), and its numbers must never reach EXPERIMENTS.md
silently.

The checks are cheap (a handful of integer comparisons per *run*, not per
reference) and are applied in two places:

* the experiment harness enables them in every worker, so each
  :meth:`MemorySystem.finish` validates its own :class:`SystemStats`;
* tests call the ``check_*`` functions directly on deliberately corrupted
  objects.

The hook in :meth:`MemorySystem.finish` is gated by a debug flag: call
:func:`set_enabled`, or set ``REPRO_CHECK_INVARIANTS=1`` in the
environment.  Outside the harness and tests the flag defaults to off so
library users pay nothing.
"""

from __future__ import annotations

import math
import os
from dataclasses import fields
from typing import Optional

from repro.cache.stats import (
    BufferStats,
    CacheStats,
    ClassificationStats,
    SystemStats,
    TimingStats,
)

#: Environment variable consulted when no explicit flag has been set.
ENV_FLAG = "REPRO_CHECK_INVARIANTS"

#: Tolerances for the floating-point cycle-accounting closure.  The clock
#: accumulates ``gap / issue_rate`` increments one reference at a time, so
#: it drifts from the single-division ``instructions / issue_rate`` by a
#: few ULPs per reference.
_REL_TOL = 1e-6
_ABS_TOL = 1e-3

_enabled: Optional[bool] = None


class InvariantViolation(RuntimeError):
    """A statistics object broke a conservation law."""


def set_enabled(flag: Optional[bool]) -> None:
    """Force invariant checking on/off; ``None`` defers to the environment."""
    global _enabled
    _enabled = flag


def check_enabled() -> bool:
    """Whether the :meth:`MemorySystem.finish` hook should validate stats."""
    if _enabled is not None:
        return _enabled
    return os.environ.get(ENV_FLAG, "").strip().lower() in {"1", "true", "yes", "on"}


def _fail(context: str, law: str, snapshot: object) -> None:
    raise InvariantViolation(f"{context}: {law} (counters: {snapshot})")


def _require_non_negative(obj: object, context: str) -> None:
    for f in fields(obj):  # type: ignore[arg-type]
        value = getattr(obj, f.name)
        if isinstance(value, (int, float)) and value < 0:
            _fail(context, f"counter {f.name} is negative ({value})", obj)


def check_cache_stats(stats: CacheStats, context: str = "cache") -> None:
    """accesses = hits + misses; evictions ⊆ fills; writebacks ⊆ evictions."""
    _require_non_negative(stats, context)
    if stats.hits + stats.misses != stats.accesses:
        _fail(context, f"hits + misses != accesses "
              f"({stats.hits} + {stats.misses} != {stats.accesses})", stats)
    if stats.evictions > stats.fills:
        _fail(context, f"evictions ({stats.evictions}) exceed fills "
              f"({stats.fills})", stats)
    if stats.writebacks > stats.evictions:
        _fail(context, f"writebacks ({stats.writebacks}) exceed evictions "
              f"({stats.evictions})", stats)


def check_buffer_stats(stats: BufferStats, context: str = "buffer") -> None:
    """Buffer hits never exceed probes and split exactly by role."""
    _require_non_negative(stats, context)
    if stats.hits > stats.probes:
        _fail(context, f"hits ({stats.hits}) exceed probes ({stats.probes})", stats)
    by_role = stats.victim_hits + stats.prefetch_hits + stats.exclusion_hits
    if by_role != stats.hits:
        _fail(context, f"victim + prefetch + exclusion hits ({by_role}) != "
              f"hits ({stats.hits})", stats)
    if stats.swaps > stats.victim_hits:
        _fail(context, f"swaps ({stats.swaps}) exceed victim hits "
              f"({stats.victim_hits})", stats)


def check_classification_stats(
    stats: ClassificationStats, context: str = "classification"
) -> None:
    """Confusion-matrix counters are non-negative and internally consistent."""
    _require_non_negative(stats, context)
    if stats.true_conflicts + stats.true_capacities != stats.total:
        _fail(context, "confusion-matrix partitions do not sum to total", stats)
    for name in ("conflict_accuracy", "capacity_accuracy", "overall_accuracy"):
        value = getattr(stats, name)
        if not 0.0 <= value <= 100.0:
            _fail(context, f"{name} outside [0, 100] ({value})", stats)


def check_timing_stats(
    stats: TimingStats,
    context: str = "timing",
    *,
    issue_rate: Optional[float] = None,
) -> None:
    """Cycle accounting closes: cycles = instructions/issue_rate + stalls."""
    _require_non_negative(stats, context)
    if stats.instructions < stats.memory_refs:
        _fail(context, f"instructions ({stats.instructions}) below memory refs "
              f"({stats.memory_refs}) — every reference issues at least itself",
              stats)
    if issue_rate:
        expected = stats.instructions / issue_rate + stats.stall_cycles
        if not math.isclose(
            stats.cycles, expected, rel_tol=_REL_TOL, abs_tol=_ABS_TOL
        ):
            _fail(context, f"cycle accounting does not close: cycles "
                  f"{stats.cycles} != instructions/issue_rate + stalls "
                  f"{expected}", stats)


def check_system_stats(
    stats: SystemStats,
    context: str = "system",
    *,
    issue_rate: Optional[float] = None,
    coupled: bool = True,
) -> None:
    """Validate one full-run :class:`SystemStats` object.

    ``coupled`` asserts the cross-object laws that hold for stats produced
    by one :class:`~repro.system.memory_system.MemorySystem` run (every L1
    access steps the clock; every L1 miss is classified exactly once).
    Pass ``coupled=False`` for merged or synthetic stats where only the
    per-object laws apply.
    """
    check_cache_stats(stats.l1, f"{context}.l1")
    check_cache_stats(stats.l2, f"{context}.l2")
    check_buffer_stats(stats.buffer, f"{context}.buffer")
    check_timing_stats(stats.timing, f"{context}.timing", issue_rate=issue_rate)
    if stats.memory_accesses < 0:
        _fail(context, "memory_accesses is negative", stats)
    if stats.memory_accesses > stats.l2.misses:
        _fail(context, f"memory accesses ({stats.memory_accesses}) exceed L2 "
              f"misses ({stats.l2.misses})", stats)
    if not coupled:
        return
    predicted = stats.conflict_misses_predicted + stats.capacity_misses_predicted
    if predicted != stats.l1.misses:
        _fail(context, f"predicted conflict + capacity ({predicted}) != L1 "
              f"misses ({stats.l1.misses}) — every miss is classified once",
              stats)
    if stats.timing.memory_refs != stats.l1.accesses:
        _fail(context, f"timing saw {stats.timing.memory_refs} references but "
              f"the L1 saw {stats.l1.accesses}", stats)


def check_accuracy_result(result: "object", context: str = "accuracy") -> None:
    """Ground-truth accuracy runs: misses partition into conflict +
    capacity (compulsory counted within capacity, as in the paper)."""
    classification: ClassificationStats = result.classification  # type: ignore[attr-defined]
    cache: CacheStats = result.cache  # type: ignore[attr-defined]
    compulsory: int = result.compulsory_misses  # type: ignore[attr-defined]
    check_classification_stats(classification, f"{context}.classification")
    check_cache_stats(cache, f"{context}.cache")
    if classification.total != cache.misses:
        _fail(context, f"classified misses ({classification.total}) != cache "
              f"misses ({cache.misses})", classification)
    if compulsory < 0 or compulsory > classification.true_capacities:
        _fail(context, f"compulsory misses ({compulsory}) outside the capacity "
              f"partition ({classification.true_capacities})", classification)


def maybe_check_system(
    stats: SystemStats, *, issue_rate: Optional[float] = None
) -> None:
    """Debug-flag-gated hook for :meth:`MemorySystem.finish`."""
    if check_enabled():
        check_system_stats(stats, issue_rate=issue_rate)


def maybe_check_accuracy(result: "object") -> None:
    """Debug-flag-gated hook for :func:`repro.core.accuracy.measure_accuracy`."""
    if check_enabled():
        check_accuracy_result(result)
