"""The harness cell registry.

A *cell* is the unit of isolation, checkpointing and retry: one
(experiment, variant) pair producing exactly one
:class:`~repro.experiments.base.ExperimentResult` table.  Experiments
that print several tables (fig4's accuracy and speedup, fig6's 8- and
16-entry buffers, …) split into one cell each, so a crash in one table
cannot take the others down and ``--resume`` re-runs only what is
missing.

Cells are addressed by string id (``"fig6.amb16"``) and resolved back to
a callable *inside* the worker process, so nothing unpicklable ever
crosses a process boundary.

This module also hosts the deterministic fault injector used by the test
suite (and CI) to prove the isolation properties: ``--inject-fault
fig1.main:fail`` makes exactly that cell raise, ``:hang`` makes it sleep
past any timeout, and ``:flaky:N`` makes it fail its first N attempts and
then succeed — exercising FAILED, TIMEOUT and RETRIED paths respectively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    assoc_sweep,
    fig1_accuracy,
    fig2_tag_bits,
    fig3_victim,
    fig4_prefetch,
    fig5_exclusion,
    fig6_amb,
    fig7_amb_hits,
    mrc_curves,
    sec54_pseudo,
    sec56_multithreaded,
    table1_victim,
)
from repro.experiments.base import ExperimentParams, ExperimentResult
from repro.workloads.spec_analogs import EVAL_SUITE

RunVariant = Callable[[ExperimentParams], ExperimentResult]


def _fig6_8(p: ExperimentParams) -> ExperimentResult:
    return fig6_amb.run(p, entries=8)


def _fig6_16(p: ExperimentParams) -> ExperimentResult:
    return fig6_amb.run(p, entries=16)


def _fig7_8(p: ExperimentParams) -> ExperimentResult:
    return fig7_amb_hits.run(p, 8)


def _fig7_16(p: ExperimentParams) -> ExperimentResult:
    return fig7_amb_hits.run(p, 16)


def _fig3_shard(bench: str) -> RunVariant:
    def run(p: ExperimentParams) -> ExperimentResult:
        return fig3_victim.run_shard(p, bench)

    return run


#: Experiment -> ordered {variant key -> runner}.  Variant order fixes
#: both table-printing order and cell execution order, matching the
#: pre-harness monolithic runner output exactly.
VARIANTS: Dict[str, Dict[str, RunVariant]] = {
    "fig1": {"main": fig1_accuracy.run},
    "fig2": {"main": fig2_tag_bits.run},
    "fig3": {"main": fig3_victim.run},
    "table1": {"main": table1_victim.run},
    "fig4": {
        "accuracy": fig4_prefetch.run_accuracy,
        "speedup": fig4_prefetch.run_speedup,
    },
    "fig5": {
        "speedup": fig5_exclusion.run,
        "hitrates": fig5_exclusion.run_hit_rates,
    },
    "sec54": {"main": sec54_pseudo.run},
    "fig6": {"amb8": _fig6_8, "amb16": _fig6_16},
    "fig7": {"amb8": _fig7_8, "amb16": _fig7_16},
    # Extensions beyond the paper's figures (§5.6, measured here):
    "sec56": {"main": sec56_multithreaded.run},
    "assoc": {"main": assoc_sweep.run},
    # Miss-ratio-curve subsystem: exact single-pass curves with the
    # conflict-share band, and the SHARDS sampling comparison.
    "mrc": {"main": mrc_curves.run_exact},
    "mrc_sampled": {"main": mrc_curves.run_sampled},
    # Sharded form of the Figure-3 sweep: one cell per benchmark, so the
    # --jobs scheduler can spread the (benchmark × policy) grid over
    # cores.  Not part of 'all' — it duplicates fig3.main's work.
    "fig3sweep": {bench: _fig3_shard(bench) for bench in EVAL_SUITE},
}

#: Sharded sweep families: per-benchmark re-cuts of an aggregated
#: experiment, addressable explicitly but excluded from 'all' expansion
#: (running both forms would compute the same grid twice).
SHARDED_EXPERIMENTS = frozenset({"fig3sweep"})


@dataclass(frozen=True)
class CellSpec:
    """One supervisable cell, addressable by string id."""

    experiment: str
    variant: str

    @property
    def cell_id(self) -> str:
        return f"{self.experiment}.{self.variant}"


def known_experiments() -> List[str]:
    return sorted(VARIANTS)


def expand_cells(names: List[str]) -> List[CellSpec]:
    """Experiment names -> ordered cell list; unknown names raise KeyError."""
    cells: List[CellSpec] = []
    for name in names:
        if name not in VARIANTS:
            raise KeyError(name)
        cells.extend(CellSpec(name, variant) for variant in VARIANTS[name])
    return cells


def resolve(spec: CellSpec) -> RunVariant:
    try:
        return VARIANTS[spec.experiment][spec.variant]
    except KeyError:
        raise KeyError(f"unknown cell {spec.cell_id!r}") from None


def run_cell(spec: CellSpec, params: ExperimentParams) -> ExperimentResult:
    """Execute one cell in the current process."""
    return resolve(spec)(params)


# ----------------------------------------------------------------------
# Deterministic fault injection (testing/CI only)
# ----------------------------------------------------------------------
class InjectedFault(RuntimeError):
    """Raised by the fault injector in place of running the cell."""


@dataclass(frozen=True)
class FaultInjection:
    """Make one cell misbehave on purpose.

    ``kind`` is ``"fail"`` (raise on every attempt), ``"hang"`` (sleep
    until killed) or ``"flaky"`` (raise on the first ``times`` attempts,
    then run normally).
    """

    cell_id: str
    kind: str
    times: int = 1

    @classmethod
    def parse(cls, spec: str) -> "FaultInjection":
        """Parse ``<cell_id>:<kind>[:<times>]`` (e.g. ``fig1.main:flaky:2``)."""
        parts = spec.split(":")
        if len(parts) < 2 or not parts[0]:
            raise ValueError(
                f"bad fault spec {spec!r}: expected <cell_id>:<kind>[:<times>]"
            )
        cell_id, kind = parts[0], parts[1]
        if kind not in ("fail", "hang", "flaky"):
            raise ValueError(
                f"bad fault kind {kind!r}: expected fail, hang or flaky"
            )
        times = 1
        if len(parts) > 2:
            times = int(parts[2])
            if times < 1:
                raise ValueError("fault repeat count must be >= 1")
        return cls(cell_id=cell_id, kind=kind, times=times)

    def trigger(self, spec: CellSpec, attempt: int) -> None:
        """Raise/hang when this injection applies to ``spec``/``attempt``."""
        if spec.cell_id != self.cell_id:
            return
        if self.kind == "hang":
            while True:  # parked until the supervisor kills the worker
                time.sleep(3600)
        if self.kind == "fail" or attempt <= self.times:
            raise InjectedFault(
                f"injected {self.kind} fault in {self.cell_id} "
                f"(attempt {attempt})"
            )


def maybe_inject(
    spec: CellSpec, inject: Optional[FaultInjection], attempt: int
) -> None:
    if inject is not None:
        inject.trigger(spec, attempt)
