"""Crash-consistent file primitives for run directories.

Everything the harness persists goes through :func:`atomic_write_text`:
write to a temp file, ``fsync`` the data, ``os.replace`` onto the
destination, then ``fsync`` the parent directory so the rename itself is
durable.  Without the two fsyncs a power cut (or SIGKILL plus an unlucky
page-cache flush) can leave the *rename* on disk but not the data — a
present-but-torn file, which is precisely the corruption class
``python -m repro.harness.doctor`` exists to detect.  The fault-injection
``partial`` kind (:mod:`repro.faults`) manufactures that state on demand
to prove the detection works.

The simlint rules RPR050/RPR051 (:mod:`repro.analysis`) flag harness/obs
code that writes run-directory files without coming through here.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional

from repro import faults


def fsync_dir(path: Path) -> None:
    """Flush a directory's entries (the rename half of an atomic write)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. platforms without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_text(path: Path, text: str, *, site: Optional[str] = None) -> None:
    """Durably replace ``path``'s content with ``text``.

    ``site`` names the fault-injection site this write represents; the
    hook fires before any byte is written, so an injected crash models a
    failure *during* the operation, never a half-completed helper.
    """
    if faults.active_plan() is not None and site is not None:
        faults.fire(site, path=path, payload=text)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fh:  # repro: noqa[RPR050] - the helper itself
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)


def content_checksum(text: str) -> str:
    """Hex SHA-256 of a canonical payload string."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
