"""Entry point for ``python -m repro.mrc``."""

from __future__ import annotations

import sys

from repro.mrc.cli import main

if __name__ == "__main__":
    sys.exit(main())
