"""Ground-truth replay oracle backed by a stack profile.

:class:`~repro.core.ground_truth.GroundTruthClassifier` answers Hill's
question — "would this real-cache miss have hit in a fully-associative
LRU cache of equal capacity?" — by *simulating* that FA cache alongside
the real one.  By the inclusion property, the same answer is a pure
function of the reference's stack distance: resident iff
``distance <= capacity_lines``.  A :class:`StackDistanceOracle` replays
a precomputed :class:`~repro.mrc.stack.StackProfile` instead of
simulating, which lets one stack pass serve *every* cache configuration
of equal capacity (the associativity sweep, the tag-bits sweep, the
conflict decomposition) — the FA model is the expensive half of every
ground-truth run, and it no longer repeats.

The oracle is call-compatible with ``GroundTruthClassifier``
(:meth:`classify_miss` before :meth:`observe`, per reference) and is
cross-validated against it, count-for-count, by the test suite.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.classification import MissClass
from repro.mrc.stack import COLD, StackProfile, compute_profile


class StackDistanceOracle:
    """Replay of Hill's classification from precomputed stack distances.

    The caller must feed *exactly* the reference stream the profile was
    computed from (same addresses, same order, same line size) —
    :meth:`observe` advances one position per reference.  A fresh oracle
    is required per replay; :meth:`SharedGroundTruth.oracle` hands them
    out cheaply.
    """

    def __init__(self, profile: StackProfile, capacity_lines: int) -> None:
        if capacity_lines <= 0:
            raise ValueError(
                f"capacity must be positive, got {capacity_lines}"
            )
        self.capacity_lines = capacity_lines
        self._distances = profile.distances
        self._total = profile.total_refs
        self._pos = 0
        self.compulsory = 0
        self.conflict = 0
        self.capacity = 0

    def classify_miss(self, addr: int) -> MissClass:
        """Classify a real-cache miss at the current replay position.

        Mirrors :meth:`GroundTruthClassifier.classify_miss`: must be
        called *before* :meth:`observe` for the same reference.
        """
        if self._pos >= self._total:
            raise IndexError(
                f"oracle replayed past its profile ({self._total} refs)"
            )
        distance = int(self._distances[self._pos])
        if distance == COLD:
            self.compulsory += 1
            return MissClass.COMPULSORY
        if distance <= self.capacity_lines:
            self.conflict += 1
            return MissClass.CONFLICT
        self.capacity += 1
        return MissClass.CAPACITY

    def observe(self, addr: int) -> None:
        """Advance past one reference (hit or miss), like the FA model."""
        self._pos += 1

    @property
    def total_classified(self) -> int:
        return self.compulsory + self.conflict + self.capacity

    def miss_breakdown(self) -> "dict[str, int]":
        """Counts per class, shape-compatible with the simulating oracle."""
        return {
            "compulsory": self.compulsory,
            "conflict": self.conflict,
            "capacity": self.capacity,
        }


class SharedGroundTruth:
    """One stack pass, many oracles.

    Build once per (trace, line size); :meth:`oracle` then yields a
    fresh replay oracle per real-cache configuration — the associativity
    sweep asks for four oracles over the same 16KB capacity and pays for
    the FA model exactly once.
    """

    def __init__(
        self, addresses: "np.ndarray | Iterable[int]", line_size: int = 64
    ) -> None:
        self.profile = compute_profile(addresses, line_size)

    @classmethod
    def from_profile(cls, profile: StackProfile) -> "SharedGroundTruth":
        shared = cls.__new__(cls)
        shared.profile = profile
        return shared

    def oracle(self, capacity_lines: int) -> StackDistanceOracle:
        return StackDistanceOracle(self.profile, capacity_lines)
