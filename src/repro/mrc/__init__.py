"""Miss-ratio-curve subsystem: one stack pass, every cache size.

Public surface:

* :func:`~repro.mrc.stack.compute_profile` /
  :class:`~repro.mrc.stack.StackProfile` — exact single-pass Mattson
  stack distances (vectorised inversion counting; the Bennett-Kruskal
  Fenwick form survives as
  :func:`~repro.mrc.stack.compute_profile_reference`).
* :func:`~repro.mrc.curve.compute_mrc` /
  :class:`~repro.mrc.curve.MissRatioCurve` — FA-LRU miss counts at
  every probed capacity, byte-identical to per-size simulation.
* :func:`~repro.mrc.sampling.sampled_curve` — SHARDS fixed-rate and
  fixed-size spatial sampling (seeded, deterministic).
* :func:`~repro.mrc.decompose.conflict_decomposition` /
  :class:`~repro.mrc.decompose.ConflictSplit` — Hill's per-size
  compulsory/capacity/conflict split, consistent with
  :mod:`repro.core.ground_truth`.
* :class:`~repro.mrc.oracle.SharedGroundTruth` /
  :class:`~repro.mrc.oracle.StackDistanceOracle` — replay oracle that
  lets many cache configurations share one ground-truth pass.
"""

from repro.mrc.curve import (
    MissRatioCurve,
    brute_force_fa_misses,
    compute_mrc,
    curve_from_profile,
    default_size_ladder,
)
from repro.mrc.decompose import (
    ConflictSplit,
    conflict_decomposition,
    decompose_size,
)
from repro.mrc.oracle import SharedGroundTruth, StackDistanceOracle
from repro.mrc.sampling import (
    SampleResult,
    ShardsEstimator,
    hash_block,
    sampled_curve,
)
from repro.mrc.stack import (
    COLD,
    StackProfile,
    compute_profile,
    compute_profile_reference,
)

__all__ = [
    "COLD",
    "ConflictSplit",
    "MissRatioCurve",
    "SampleResult",
    "ShardsEstimator",
    "SharedGroundTruth",
    "StackDistanceOracle",
    "StackProfile",
    "brute_force_fa_misses",
    "compute_mrc",
    "compute_profile",
    "compute_profile_reference",
    "conflict_decomposition",
    "curve_from_profile",
    "decompose_size",
    "default_size_ladder",
    "hash_block",
    "sampled_curve",
]
