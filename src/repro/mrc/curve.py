"""Miss-ratio curves: per-size FA-LRU miss counts from one stack pass.

A :class:`MissRatioCurve` is the aggregate view of a
:class:`~repro.mrc.stack.StackProfile`: the miss count (and ratio) of a
fully-associative LRU cache at every probed capacity.  Computing it
costs one O(N log N) pass regardless of how many sizes are probed —
this is the subsystem's headline replacement for the O(sizes × trace)
sweep that previously re-simulated a
:class:`~repro.cache.fully_assoc.FullyAssociativeLRU` per point.

:func:`brute_force_fa_misses` is the independent reference
implementation the acceptance tests (and ``python -m repro.mrc
--check``) compare against: the curve must be *byte-identical* to it at
every probed size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.cache.fully_assoc import FullyAssociativeLRU
from repro.mrc.stack import StackProfile, compute_profile


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def default_size_ladder(
    line_size: int = 64, min_bytes: int = 1 << 10, max_bytes: int = 256 << 10
) -> Tuple[int, ...]:
    """Power-of-two capacities in *lines*, ``min_bytes`` .. ``max_bytes``."""
    if min_bytes < line_size:
        raise ValueError("min_bytes must hold at least one line")
    if max_bytes < min_bytes:
        raise ValueError("max_bytes must be >= min_bytes")
    sizes: List[int] = []
    size = min_bytes
    while size <= max_bytes:
        sizes.append(size // line_size)
        size *= 2
    return tuple(sizes)


@dataclass(frozen=True)
class MissRatioCurve:
    """FA-LRU miss counts over a ladder of cache sizes (in lines)."""

    line_size: int
    total_refs: int
    cold_misses: int
    sizes_lines: Tuple[int, ...]
    misses: Tuple[int, ...]
    #: True for the exact single-pass curve; False for SHARDS estimates.
    exact: bool = True

    def __post_init__(self) -> None:
        if len(self.sizes_lines) != len(self.misses):
            raise ValueError("sizes_lines and misses must have equal lengths")
        if any(s <= 0 for s in self.sizes_lines):
            raise ValueError("cache sizes must be positive line counts")

    def miss_ratios(self) -> List[float]:
        """Miss ratio per size, in [0, 1] (0.0 for an empty trace)."""
        if self.total_refs == 0:
            return [0.0 for _ in self.misses]
        return [m / self.total_refs for m in self.misses]

    def size_bytes(self, index: int) -> int:
        return self.sizes_lines[index] * self.line_size

    def as_rows(self) -> List[Tuple[int, int, float]]:
        """(size_bytes, misses, miss_ratio) per probed size."""
        ratios = self.miss_ratios()
        return [
            (self.size_bytes(i), self.misses[i], ratios[i])
            for i in range(len(self.sizes_lines))
        ]


def curve_from_profile(
    profile: StackProfile, sizes_lines: Optional[Sequence[int]] = None
) -> MissRatioCurve:
    """Read the miss-ratio curve off an existing stack profile."""
    sizes = tuple(sizes_lines) if sizes_lines is not None else default_size_ladder(
        profile.line_size
    )
    return MissRatioCurve(
        line_size=profile.line_size,
        total_refs=profile.total_refs,
        cold_misses=profile.cold_misses,
        sizes_lines=sizes,
        misses=tuple(profile.miss_counts(sizes)),
    )


def compute_mrc(
    addresses: "Iterable[int]",
    line_size: int = 64,
    sizes_lines: Optional[Sequence[int]] = None,
) -> MissRatioCurve:
    """One-call convenience: stack pass + curve extraction."""
    return curve_from_profile(compute_profile(addresses, line_size), sizes_lines)


def brute_force_fa_misses(
    addresses: "Iterable[int]", line_size: int, capacity_lines: int
) -> int:
    """Reference implementation: simulate one FA-LRU cache of one size.

    This is exactly what the pre-MRC sweep paid *per probed size*; the
    tests pin ``MissRatioCurve.misses`` to it, byte-identical, at every
    size, and the benchmark harness measures the resulting speedup.
    """
    if not _is_pow2(line_size):
        raise ValueError(f"line size must be a power of two, got {line_size}")
    shift = line_size.bit_length() - 1
    cache = FullyAssociativeLRU(capacity=capacity_lines)
    access = cache.access
    misses = 0
    for addr in addresses:
        hit, _ = access(int(addr) >> shift)
        if not hit:
            misses += 1
    return misses
