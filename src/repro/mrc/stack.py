"""Exact single-pass Mattson stack-distance engine.

The classic observation behind every miss-ratio-curve tool (Mattson et
al. 1970): fully-associative LRU has the *inclusion property*, so one
pass that records each reference's **stack distance** — the number of
distinct blocks touched since the previous reference to the same block,
counting the block itself — determines the hit/miss outcome for *every*
cache capacity at once: a reference with stack distance ``d`` hits in an
FA-LRU cache of ``C`` lines iff ``d <= C``.

The naive stack implementation scans a recency list per reference
(O(N·M) over a trace of N references and M distinct blocks).  The
classic fix is the tree trick (Bennett & Kruskal 1975): a Fenwick tree
over trace positions holds a 1 at the *most recent* position of every
distinct block, so distinct-blocks-in-interval is a prefix-sum query —
O(N log N) total, independent of how many cache sizes are later probed.
That form survives here as :func:`compute_profile_reference` (and as
the streaming core of :mod:`repro.mrc.sampling`, which must adapt its
threshold mid-pass), but a per-reference Python loop around two tree
walks costs microseconds per reference.

:func:`compute_profile` instead computes the identical distances with
no per-reference Python at all.  Writing ``prev[t]`` for the (1-based)
previous-occurrence position of reference ``t``'s block (0 when cold),
the window ``(prev[t], t)`` contains ``t - prev[t] - 1`` references, of
which the duplicates — references ``j`` whose *own* previous occurrence
also lies inside the window, ``prev[j] > prev[t]`` — each collapse onto
an earlier reference to the same block.  Because every position is the
``prev`` of at most one later reference, positions outside the window
satisfy ``prev[j] <= prev[t]``, so::

    distance[t] = (t - prev[t]) - #{j < t : prev[j] > prev[t]}

The correction term is an element-wise inversion count of the ``prev``
array, which vectorises by bit decomposition: for each level ``w``
(1, 2, 4, …), split positions into aligned ``2w`` pairs; every ordered
pair ``(j, t)`` lands exactly once with ``j`` in a left half-run and
``t`` in the matching right half-run (at the level of their highest
differing index bit), so sorting the left half-runs and batching one
``np.searchsorted`` per level counts all inversions in
O(N log^2 N) C-speed work — measurably faster than simulating even a
single FA-LRU cache in Python, let alone one per probed size.

The per-reference distances are retained (not just a histogram) because
the conflict-decomposition layer (:mod:`repro.mrc.decompose`) and the
ground-truth replay oracle (:mod:`repro.mrc.oracle`) classify
*individual* real-cache misses against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

#: Sentinel stack distance for a first touch (cold / compulsory miss).
COLD = -1


def _log2(n: int) -> int:
    return n.bit_length() - 1


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class StackProfile:
    """The result of one stack-distance pass over a reference stream.

    ``distances`` holds one entry per reference: :data:`COLD` for a
    first touch, otherwise the 1-based Mattson stack depth.  The profile
    answers FA-LRU hit/miss questions for every capacity; consumers that
    only need aggregate curves use :meth:`miss_counts`.
    """

    line_size: int
    distances: "np.ndarray"  # int64, one entry per reference
    cold_misses: int

    @property
    def total_refs(self) -> int:
        return int(len(self.distances))

    @property
    def footprint_lines(self) -> int:
        """Distinct blocks touched (== cold misses, by definition)."""
        return self.cold_misses

    def finite_distances_sorted(self) -> "np.ndarray":
        """Warm-reference distances in ascending order (cached lazily)."""
        finite = self.distances[self.distances != COLD]
        # Value-only sort: equal distances are interchangeable in every
        # consumer (thresholded counts), so stability buys nothing.
        return np.sort(finite)  # repro: noqa[RPR060]

    def miss_counts(self, sizes_lines: Iterable[int]) -> List[int]:
        """FA-LRU miss count at each capacity, from the one shared pass.

        ``misses(C) = cold + #{d > C}`` — byte-identical to simulating a
        :class:`~repro.cache.fully_assoc.FullyAssociativeLRU` of ``C``
        lines over the same stream, at every ``C`` at once.
        """
        finite = self.finite_distances_sorted()
        n_warm = int(len(finite))
        out: List[int] = []
        for size in sizes_lines:
            if size <= 0:
                raise ValueError(f"cache size in lines must be positive, got {size}")
            hits = int(np.searchsorted(finite, size, side="right"))
            out.append(self.cold_misses + (n_warm - hits))
        return out

    def histogram(self) -> Dict[int, int]:
        """Distance -> reference count (cold references under ``COLD``)."""
        values, counts = np.unique(self.distances, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}


class _Fenwick:
    """Minimal Fenwick (binary indexed) tree over 1..n, int counters."""

    __slots__ = ("n", "tree")

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        tree = self.tree
        n = self.n
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        tree = self.tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total


def _validated_blocks(
    addresses: "np.ndarray | Iterable[int]", line_size: int
) -> "np.ndarray":
    if not _is_pow2(line_size):
        raise ValueError(f"line size must be a power of two, got {line_size}")
    addr_array = np.asarray(addresses, dtype=np.int64)
    if addr_array.ndim != 1:
        raise ValueError("addresses must be a one-dimensional sequence")
    return addr_array >> _log2(line_size)


def _prev_positions(blocks: "np.ndarray") -> "np.ndarray":
    """1-based previous-occurrence position per reference (0 = cold)."""
    n = int(len(blocks))
    _, inverse = np.unique(blocks, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    sorted_ids = inverse[order]
    prev = np.zeros(n, dtype=np.int64)
    # Within each equal-id run of the stable sort, positions ascend, so
    # each element's predecessor in the run is its previous occurrence.
    same = sorted_ids[1:] == sorted_ids[:-1]
    prev[order[1:]] = np.where(same, order[:-1] + 1, 0)
    return prev


def _inversions_above(values: "np.ndarray") -> "np.ndarray":
    """``out[t] = #{j < t : values[j] > values[t]}``, vectorised.

    Bit-decomposition pair counting: each ordered pair ``(j, t)`` is
    counted at exactly one level ``w`` — the one where ``j`` falls in
    the left half and ``t`` in the right half of the same aligned
    ``2w`` block (the level of their highest differing index bit).  Row
    offsets larger than any value let one flat ``searchsorted`` answer
    every row's query at once.
    """
    n = int(len(values))
    out = np.zeros(n, dtype=np.int64)
    if n < 2:
        return out
    span = int(values.max()) + 2  # row stride; pad value -1 stays inside
    width = 1
    while width < n:
        pair = 2 * width
        rows = (n + pair - 1) // pair
        padded = np.full(rows * pair, -1, dtype=np.int64)
        padded[:n] = values
        table = padded.reshape(rows, pair)
        # Value-only sort feeding searchsorted ranks; ties carry equal
        # values, so the unstable kind cannot change any rank.
        left = np.sort(table[:, :width], axis=1)  # repro: noqa[RPR060]
        right = table[:, width:]
        offsets = np.arange(rows, dtype=np.int64)[:, None] * span
        ranks = np.searchsorted(
            (left + offsets).ravel(), (right + offsets).ravel(), side="right"
        )
        counts = width - (ranks - np.repeat(np.arange(rows) * width, width))
        targets = (
            np.arange(rows * pair).reshape(rows, pair)[:, width:].ravel()
        )
        keep = targets < n
        # Targets are unique within a level, so a fancy-indexed add is
        # safe (and much cheaper than np.add.at's unbuffered path).
        out[targets[keep]] += counts[keep]
        width = pair
    return out


def stack_distances(blocks: "np.ndarray") -> "np.ndarray":
    """Exact per-reference FA-LRU stack distances over block numbers.

    ``blocks`` is a one-dimensional integer array of already line-granular
    block identifiers; the result holds :data:`COLD` for first touches and
    the 1-based Mattson stack depth otherwise.  This is the vectorised
    engine described in the module docstring, factored out of
    :func:`compute_profile` so the set-partitioned simulation engine
    (:mod:`repro.system.vector`) can share it.  That engine applies it to
    a stream stably sorted by cache-set index: each set's references are
    then contiguous and in order, every reference's reuse window lies
    inside its own set's segment, and references in *earlier* segments
    have ``prev[j] <= j < prev[t]`` so they never contribute to the
    inversion correction — the distances within each segment are exactly
    that set's private stack distances.
    """
    n = int(len(blocks))
    if n == 0:
        return np.empty(0, dtype=np.int64)
    prev = _prev_positions(blocks)
    duplicates = _inversions_above(prev)
    positions = np.arange(1, n + 1, dtype=np.int64)
    distances = positions - prev - duplicates
    distances[prev == 0] = COLD
    return distances


def set_lru_flags(
    blocks: "np.ndarray", sets: "np.ndarray", assoc: int
) -> Tuple["np.ndarray", "np.ndarray"]:
    """Per-reference (hit, evict) flags of a set-LRU cache, vectorised.

    ``blocks`` must be a block-number stream **stably sorted by** ``sets``
    (its per-position set indices), so each set's references form one
    contiguous, in-order segment.  Set-LRU with ``assoc`` ways is FA-LRU
    of capacity ``assoc`` within each set, so:

    * a reference **hits** iff its stack distance is finite and
      ``<= assoc`` (the distances of the sorted stream are each set's
      private distances — see :func:`stack_distances`);
    * a miss **evicts** iff the set has already filled all ``assoc``
      ways, i.e. the count of distinct blocks seen earlier in the
      segment (cold misses before it) is ``>= assoc`` — matching an LRU
      victim picker that prefers invalid ways.

    Shared by the simulation engine's L1 and L2 passes
    (:mod:`repro.system.vector`); the caller scatters the flags back to
    trace order with the inverse of its sorting permutation.
    """
    k = int(len(blocks))
    if k == 0:
        empty = np.zeros(0, dtype=bool)
        return empty, empty.copy()
    distances = stack_distances(blocks)
    hit = (distances != COLD) & (distances <= assoc)

    cold = (distances == COLD).astype(np.int64)
    cold_before = np.cumsum(cold) - cold
    seg_start = np.empty(k, dtype=bool)
    seg_start[0] = True
    np.not_equal(sets[1:], sets[:-1], out=seg_start[1:])
    positions = np.arange(k, dtype=np.int64)
    seg_first = np.maximum.accumulate(np.where(seg_start, positions, 0))
    distinct_before = cold_before - cold_before[seg_first]
    evict = ~hit & (distinct_before >= assoc)
    return hit, evict


def compute_profile(
    addresses: "np.ndarray | Iterable[int]", line_size: int = 64
) -> StackProfile:
    """One exact stack-distance pass over byte ``addresses``.

    Addresses are reduced to line-granular block numbers with
    ``line_size`` (a power of two), exactly like
    :meth:`repro.cache.geometry.CacheGeometry.block_number`, so the
    resulting profile is interchangeable with the ground-truth oracle's
    view of the same stream.  Distances are bit-identical to
    :func:`compute_profile_reference` (the property tests enforce it);
    this path is the vectorised engine described in the module
    docstring.
    """
    blocks = _validated_blocks(addresses, line_size)
    distances = stack_distances(blocks)
    return StackProfile(
        line_size=line_size,
        distances=distances,
        cold_misses=int(np.count_nonzero(distances == COLD)),
    )


def compute_profile_reference(
    addresses: "np.ndarray | Iterable[int]", line_size: int = 64
) -> StackProfile:
    """Bennett-Kruskal Fenwick form of :func:`compute_profile`.

    Kept as the independently-derived implementation the property tests
    pin the vectorised engine against (and as documentation of the
    streaming algorithm :mod:`repro.mrc.sampling` adapts).
    """
    blocks: List[int] = _validated_blocks(addresses, line_size).tolist()
    n = len(blocks)
    distances = np.empty(n, dtype=np.int64)
    tree = _Fenwick(n)
    tree_add = tree.add
    tree_prefix = tree.prefix
    last_pos: Dict[int, int] = {}
    cold = 0
    for t, block in enumerate(blocks, start=1):
        prev = last_pos.get(block)
        if prev is None:
            distances[t - 1] = COLD
            cold += 1
        else:
            # Distinct blocks touched strictly after prev, plus the
            # block itself: its 1-based depth in the LRU stack.
            distances[t - 1] = tree_prefix(t - 1) - tree_prefix(prev) + 1
            tree_add(prev, -1)
        tree_add(t, 1)
        last_pos[block] = t
    return StackProfile(line_size=line_size, distances=distances, cold_misses=cold)
