"""``python -m repro.mrc`` — miss-ratio curves from the command line.

Builds the named synthetic workloads (same generators as the paper
experiments), runs the exact single-pass engine — or SHARDS sampling
when ``--rate``/``--max-blocks`` is given — and prints one curve per
workload.  ``--assoc`` additionally prints the per-size
compulsory/capacity/conflict split at that associativity, and
``--check`` cross-validates every exact point against the brute-force
per-size FA-LRU simulation (the CI smoke job runs this; any mismatch
exits non-zero).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.mrc.curve import (
    MissRatioCurve,
    brute_force_fa_misses,
    curve_from_profile,
    default_size_ladder,
)
from repro.mrc.decompose import ConflictSplit, conflict_decomposition
from repro.mrc.sampling import SampleResult, sampled_curve
from repro.mrc.stack import StackProfile, compute_profile
from repro.workloads.spec_analogs import EVAL_SUITE, build


def _parse_sizes(spec: str, line_size: int) -> Tuple[int, ...]:
    """Comma-separated capacities in KB -> line counts."""
    sizes: List[int] = []
    for part in spec.split(","):
        kb = int(part.strip())
        if kb <= 0:
            raise ValueError(f"cache size must be positive, got {kb}KB")
        size_bytes = kb * 1024
        if size_bytes % line_size != 0:
            raise ValueError(
                f"{kb}KB is not a whole number of {line_size}B lines"
            )
        sizes.append(size_bytes // line_size)
    return tuple(sizes)


def _check_exact(
    addresses: "Sequence[int]", curve: MissRatioCurve
) -> List[str]:
    """Brute-force cross-validation; returns one message per mismatch."""
    problems: List[str] = []
    for i, size in enumerate(curve.sizes_lines):
        expected = brute_force_fa_misses(addresses, curve.line_size, size)
        if curve.misses[i] != expected:
            problems.append(
                f"size {curve.size_bytes(i) // 1024}KB: single-pass "
                f"{curve.misses[i]} != brute-force {expected}"
            )
    return problems


def _curve_payload(name: str, curve: MissRatioCurve) -> Dict[str, object]:
    return {
        "workload": name,
        "exact": curve.exact,
        "line_size": curve.line_size,
        "total_refs": curve.total_refs,
        "cold_misses": curve.cold_misses,
        "points": [
            {"size_bytes": b, "misses": m, "miss_ratio": r}
            for b, m, r in curve.as_rows()
        ],
    }


def _split_payload(split: ConflictSplit) -> Dict[str, object]:
    return {
        "size_bytes": split.size_bytes,
        "assoc": split.assoc,
        "misses": split.misses,
        "compulsory": split.compulsory,
        "capacity": split.capacity,
        "conflict": split.conflict,
        "miss_rate": split.miss_rate,
        "conflict_share": split.conflict_share,
    }


def _print_curve(name: str, curve: MissRatioCurve) -> None:
    kind = "exact" if curve.exact else "sampled"
    print(
        f"{name}: {curve.total_refs} refs, {curve.cold_misses} distinct "
        f"lines ({kind})"
    )
    print("  size KB   misses   miss ratio")
    for size_bytes, misses, ratio in curve.as_rows():
        print(f"  {size_bytes // 1024:>7} {misses:>8}   {ratio:.4f}")


def _print_splits(splits: Sequence[ConflictSplit]) -> None:
    print(f"  decomposition at assoc {splits[0].assoc}:")
    print("  size KB   misses     comp      cap     conf   conf share %")
    for s in splits:
        print(
            f"  {s.size_bytes // 1024:>7} {s.misses:>8} {s.compulsory:>8} "
            f"{s.capacity:>8} {s.conflict:>8}   {s.conflict_share:>10.1f}"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mrc",
        description="Miss-ratio curves via a single stack-distance pass "
        "(exact) or SHARDS sampling (approximate).",
    )
    parser.add_argument(
        "workloads",
        nargs="*",
        default=list(EVAL_SUITE),
        help=f"workload names (default: {' '.join(EVAL_SUITE)})",
    )
    parser.add_argument("--n-refs", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--line-size", type=int, default=64)
    parser.add_argument(
        "--sizes",
        default=None,
        help="comma-separated cache sizes in KB (default: 1..256, powers "
        "of two)",
    )
    parser.add_argument(
        "--assoc",
        type=int,
        default=None,
        help="also print the compulsory/capacity/conflict split at this "
        "associativity",
    )
    sampling = parser.add_argument_group("SHARDS sampling")
    sampling.add_argument(
        "--rate",
        type=float,
        default=None,
        help="fixed-rate spatial sampling rate in (0, 1]",
    )
    sampling.add_argument(
        "--max-blocks",
        type=int,
        default=None,
        help="fixed-size sampling: bound on distinct sampled blocks",
    )
    sampling.add_argument(
        "--sample-seed",
        type=int,
        default=0,
        help="seed for the deterministic sampling hash",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="cross-validate every exact point against a brute-force "
        "per-size FA-LRU simulation (exit 1 on any mismatch)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of tables"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    sampled = args.rate is not None or args.max_blocks is not None
    if args.check and sampled:
        print(
            "--check validates the exact engine; drop --rate/--max-blocks",
            file=sys.stderr,
        )
        return 2
    sizes = (
        _parse_sizes(args.sizes, args.line_size)
        if args.sizes is not None
        else default_size_ladder(args.line_size)
    )

    payloads: List[Dict[str, object]] = []
    failures = 0
    for name in args.workloads:
        trace = build(name, args.n_refs, args.seed)
        profile: Optional[StackProfile] = None
        if sampled:
            result: SampleResult = sampled_curve(
                trace.addresses,
                args.line_size,
                sizes,
                rate=args.rate,
                max_blocks=args.max_blocks,
                seed=args.sample_seed,
            )
            curve = result.curve
        else:
            profile = compute_profile(trace.addresses, args.line_size)
            curve = curve_from_profile(profile, sizes)
        payload = _curve_payload(name, curve)
        if sampled:
            payload["final_rate"] = result.final_rate
            payload["sampled_refs"] = result.sampled_refs

        if args.check:
            problems = _check_exact(trace.addresses.tolist(), curve)
            payload["check"] = "ok" if not problems else problems
            if problems:
                failures += 1
                for message in problems:
                    print(f"CHECK FAILED {name}: {message}", file=sys.stderr)

        if args.assoc is not None:
            splits = conflict_decomposition(
                trace.addresses,
                assoc=args.assoc,
                line_size=args.line_size,
                sizes_lines=sizes,
                profile=profile,
            )
            payload["decomposition"] = [_split_payload(s) for s in splits]
        payloads.append(payload)

        if not args.json:
            _print_curve(name, curve)
            if sampled:
                print(
                    f"  sampled {result.sampled_refs} refs, final rate "
                    f"{result.final_rate:.4f}, seed {result.seed}"
                )
            if args.check:
                print(f"  check vs brute force: {'FAIL' if problems else 'ok'}")
            if args.assoc is not None:
                _print_splits(splits)

    if args.json:
        print(json.dumps(payloads, indent=2))
    if failures:
        return 1
    if args.check and not args.json:
        print(f"all {len(payloads)} workloads byte-identical to brute force")
    return 0
