"""SHARDS spatial sampling for near-constant-cost approximate MRCs.

SHARDS (Waldspurger et al., FAST 2015) filters the reference stream by a
hash of the *block number*: a block is sampled iff
``hash(block) < T``, giving an effective sampling rate ``R = T / 2^64``
over the block population.  Because the filter is spatial (per block,
not per reference), every reference to a sampled block is seen, so
reuse behaviour inside the sample is intact; measured sample-domain
stack distances are rescaled by ``1/R`` to estimate true distances, and
each sampled reference stands for ``1/R`` references.

Two modes:

* **fixed-rate** — a constant ``R`` chosen up front; cost scales with
  ``R × N``.
* **fixed-size** (``SHARDS_max``) — a bound on *distinct sampled
  blocks*; when the sample set overflows, the block with the largest
  hash is evicted and the threshold lowered to that hash, so the rate
  adapts downward to the footprint and memory stays constant.

Miss ratios are estimated *within* the weighted sample —
``miss ratio(C) = weighted sampled misses(C) / weighted sampled refs``
— rather than dividing rescaled miss counts by the full trace length.
The two denominators agree only in expectation; using the sample-domain
one cancels the correlated error the paper corrects as ``SHARDS_adj``
(a sample whose blocks happen to be hotter or colder than average
shifts every point of the naive estimate coherently).

**Error model** (documented, not enforced): spatial sampling keeps or
drops *blocks*, and all references to a block stand or fall together —
so the effective sample size is the number of distinct sampled blocks
(and the error is heavy-tailed when reference weight concentrates in
few hot blocks), not the number of sampled references.  The SHARDS
paper reports mean absolute miss-ratio error under 0.02 down to
``R = 0.001`` on multi-million-block traces, with error growing sharply
below ~1K sampled blocks; this repo's synthetic traces have footprints
of only 1-5K blocks, so useful rates are far higher.  Measured on the
evaluation suite (50K refs, three seeds): fixed-size at 1024 blocks
gives mean absolute error ~0.005 (max ~0.04); fixed-rate ``R = 0.1``
(~100-500 blocks) gives mean ~0.03 with worst cases above 0.2 on the
smallest-footprint workloads.  The test suite pins fixed seeds at
fixed-size 1024 within a 0.05 absolute tolerance.  Fixed-size mode
additionally carries the usual SHARDS caveat that references sampled
*before* a threshold drop are not rescaled retroactively.

Determinism: sampling uses only :func:`hash_block` — a seeded
splitmix64 finalizer — never an RNG, the OS entropy pool, or the wall
clock, so a (trace, seed) pair always yields the same curve.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.mrc.curve import MissRatioCurve, default_size_ladder
from repro.mrc.stack import _Fenwick, _is_pow2, _log2

_MASK64 = (1 << 64) - 1
_FULL = 1 << 64


def hash_block(block: int, seed: int = 0) -> int:
    """Seeded splitmix64 finalizer: uniform 64-bit hash of a block number."""
    x = (block + 0x9E3779B97F4A7C15 + (seed * 0xBF58476D1CE4E5B9)) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


@dataclass(frozen=True)
class SampleResult:
    """A sampled curve plus the sampling diagnostics that qualify it."""

    curve: MissRatioCurve
    sampled_refs: int
    sampled_blocks: int
    #: Effective sampling rate when the pass finished (fixed-size mode
    #: lowers it as the sample set overflows).
    final_rate: float
    seed: int


def sampled_curve(
    addresses: "np.ndarray | Iterable[int]",
    line_size: int = 64,
    sizes_lines: Optional[Sequence[int]] = None,
    *,
    rate: Optional[float] = None,
    max_blocks: Optional[int] = None,
    seed: int = 0,
) -> SampleResult:
    """Approximate MRC via SHARDS; exactly one of ``rate``/``max_blocks``.

    ``rate`` selects fixed-rate mode (0 < rate <= 1); ``max_blocks``
    selects fixed-size mode with that bound on distinct sampled blocks.
    """
    if (rate is None) == (max_blocks is None):
        raise ValueError("pass exactly one of rate= or max_blocks=")
    if rate is not None and not 0.0 < rate <= 1.0:
        raise ValueError(f"rate must be in (0, 1], got {rate}")
    if max_blocks is not None and max_blocks < 1:
        raise ValueError(f"max_blocks must be >= 1, got {max_blocks}")
    if not _is_pow2(line_size):
        raise ValueError(f"line size must be a power of two, got {line_size}")

    addr_array = np.asarray(addresses, dtype=np.int64)
    n = int(len(addr_array))
    blocks: List[int] = (addr_array >> _log2(line_size)).tolist()
    sizes = (
        tuple(sizes_lines)
        if sizes_lines is not None
        else default_size_ladder(line_size)
    )

    threshold = int(rate * _FULL) if rate is not None else _FULL
    if threshold < 1:
        raise ValueError(f"rate {rate} is below the hash resolution")

    tree = _Fenwick(n)
    tree_add = tree.add
    tree_prefix = tree.prefix
    last_pos: Dict[int, int] = {}
    block_hash: Dict[int, int] = {}
    # Max-heap (negated) of (hash, block) for fixed-size evictions.
    heap: List[Tuple[int, int]] = []
    hash_cache: Dict[int, int] = {}

    # Weighted per-size miss estimates, accumulated in the sample domain.
    sorted_sizes = sorted(sizes)
    miss_weight = [0.0] * len(sorted_sizes)
    cold_weight = 0.0
    ref_weight = 0.0
    sampled_refs = 0
    pos = 0  # position in the *sampled* substream (1-based for Fenwick)

    for block in blocks:
        h = hash_cache.get(block)
        if h is None:
            h = hash_block(block, seed)
            hash_cache[block] = h
        if h >= threshold:
            continue
        scale = _FULL / threshold
        sampled_refs += 1
        ref_weight += scale
        pos += 1
        prev = last_pos.get(block)
        if prev is None:
            cold_weight += scale
            block_hash[block] = h
            heapq.heappush(heap, (-h, block))
        else:
            # The referenced block itself is in the interval with
            # probability 1, not R, so only the other (d_s - 1) distinct
            # sampled blocks are rescaled: E[(d_s-1)/R + 1] = D exactly.
            # The naive d_s/R overestimates every distance by ~(1/R - 1)
            # lines, which is material at this repo's line-scale sizes.
            sample_distance = tree_prefix(pos - 1) - tree_prefix(prev) + 1
            estimated = (sample_distance - 1) * scale + 1.0
            for i, size in enumerate(sorted_sizes):
                if estimated <= size:
                    break  # sizes ascend: every later size hits too
                miss_weight[i] += scale
            tree_add(prev, -1)
        tree_add(pos, 1)
        last_pos[block] = pos
        if max_blocks is not None and len(last_pos) > max_blocks:
            # Evict the largest-hash block and lower the threshold to its
            # hash: the adaptive half of SHARDS (fixed sample size).
            while True:
                neg_h, victim = heapq.heappop(heap)
                if block_hash.get(victim) == -neg_h:
                    break
            threshold = -neg_h
            tree_add(last_pos.pop(victim), -1)
            del block_hash[victim]

    by_size = dict(zip(sorted_sizes, miss_weight))
    # Sample-domain ratios rescaled to full-trace counts (SHARDS_adj).
    adj = n / ref_weight if ref_weight else 0.0
    misses = tuple(
        min(n, int(round((cold_weight + by_size[size]) * adj)))
        for size in sizes
    )
    curve = MissRatioCurve(
        line_size=line_size,
        total_refs=n,
        cold_misses=int(round(cold_weight * adj)),
        sizes_lines=sizes,
        misses=misses,
        exact=False,
    )
    return SampleResult(
        curve=curve,
        sampled_refs=sampled_refs,
        sampled_blocks=len(last_pos),
        final_rate=threshold / _FULL,
        seed=seed,
    )
