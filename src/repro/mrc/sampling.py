"""SHARDS spatial sampling for near-constant-cost approximate MRCs.

SHARDS (Waldspurger et al., FAST 2015) filters the reference stream by a
hash of the *block number*: a block is sampled iff
``hash(block) < T``, giving an effective sampling rate ``R = T / 2^64``
over the block population.  Because the filter is spatial (per block,
not per reference), every reference to a sampled block is seen, so
reuse behaviour inside the sample is intact; measured sample-domain
stack distances are rescaled by ``1/R`` to estimate true distances, and
each sampled reference stands for ``1/R`` references.

Two modes:

* **fixed-rate** — a constant ``R`` chosen up front; cost scales with
  ``R × N``.
* **fixed-size** (``SHARDS_max``) — a bound on *distinct sampled
  blocks*; when the sample set overflows, the block with the largest
  hash is evicted and the threshold lowered to that hash, so the rate
  adapts downward to the footprint and memory stays constant.

Miss ratios are estimated *within* the weighted sample —
``miss ratio(C) = weighted sampled misses(C) / weighted sampled refs``
— rather than dividing rescaled miss counts by the full trace length.
The two denominators agree only in expectation; using the sample-domain
one cancels the correlated error the paper corrects as ``SHARDS_adj``
(a sample whose blocks happen to be hotter or colder than average
shifts every point of the naive estimate coherently).

**Error model** (documented, not enforced): spatial sampling keeps or
drops *blocks*, and all references to a block stand or fall together —
so the effective sample size is the number of distinct sampled blocks
(and the error is heavy-tailed when reference weight concentrates in
few hot blocks), not the number of sampled references.  The SHARDS
paper reports mean absolute miss-ratio error under 0.02 down to
``R = 0.001`` on multi-million-block traces, with error growing sharply
below ~1K sampled blocks; this repo's synthetic traces have footprints
of only 1-5K blocks, so useful rates are far higher.  Measured on the
evaluation suite (50K refs, three seeds): fixed-size at 1024 blocks
gives mean absolute error ~0.005 (max ~0.04); fixed-rate ``R = 0.1``
(~100-500 blocks) gives mean ~0.03 with worst cases above 0.2 on the
smallest-footprint workloads.  The test suite pins fixed seeds at
fixed-size 1024 within a 0.05 absolute tolerance.  Fixed-size mode
additionally carries the usual SHARDS caveat that references sampled
*before* a threshold drop are not rescaled retroactively.

**Incremental feeding** (the online-service form): the whole pass lives
in a :class:`ShardsEstimator`, which accepts the stream in arbitrary
chunks through :meth:`~ShardsEstimator.feed` and snapshots the current
curve through :meth:`~ShardsEstimator.result` at any point.  Feeding a
trace in chunks is *exactly* equivalent to one batch call — not merely
statistically: the estimator's Fenwick tree indexes sampled positions
and is periodically *compacted* (live positions renumbered in order,
dead ones dropped), which preserves every interval count the distance
estimate reads, so the chunking can never change a single weight.
Compaction is also what bounds memory: in fixed-size mode the live
position set never exceeds ``max_blocks``, so the tree, the eviction
heap and the hash memo all stay within a constant footprint no matter
how long the stream runs — the property the multi-tenant service
(:mod:`repro.serve`) leans on for its per-tenant byte budget.
:func:`sampled_curve` remains the one-shot convenience wrapper.

Determinism: sampling uses only :func:`hash_block` — a seeded
splitmix64 finalizer — never an RNG, the OS entropy pool, or the wall
clock, so a (trace, seed) pair always yields the same curve.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.mrc.curve import MissRatioCurve, default_size_ladder
from repro.mrc.stack import _Fenwick, _is_pow2, _log2

_MASK64 = (1 << 64) - 1
_FULL = 1 << 64

#: Smallest Fenwick capacity the estimator allocates; compaction doubles
#: from here as the live sample grows.
_MIN_TREE = 1024


def hash_block(block: int, seed: int = 0) -> int:
    """Seeded splitmix64 finalizer: uniform 64-bit hash of a block number."""
    x = (block + 0x9E3779B97F4A7C15 + (seed * 0xBF58476D1CE4E5B9)) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


@dataclass(frozen=True)
class SampleResult:
    """A sampled curve plus the sampling diagnostics that qualify it."""

    curve: MissRatioCurve
    sampled_refs: int
    sampled_blocks: int
    #: Effective sampling rate when the pass finished (fixed-size mode
    #: lowers it as the sample set overflows).
    final_rate: float
    seed: int


class ShardsEstimator:
    """Incremental SHARDS pass: feed address chunks, snapshot curves.

    Exactly one of ``rate`` (fixed-rate mode, ``0 < rate <= 1``) or
    ``max_blocks`` (fixed-size mode, bound on distinct sampled blocks)
    must be given.  The estimator is single-writer: one stream, fed in
    order; :meth:`result` may be called between any two chunks and does
    not disturb the pass.

    Memory stays bounded in fixed-size mode: live Fenwick positions are
    compacted whenever the tree fills, the eviction heap can never hold
    more entries than live blocks plus already-superseded ones awaiting
    lazy deletion (at most one per eviction, each removed on its next
    surfacing), and the block-hash memo is cleared when it outgrows a
    small multiple of the sample bound.
    """

    def __init__(
        self,
        line_size: int = 64,
        sizes_lines: Optional[Sequence[int]] = None,
        *,
        rate: Optional[float] = None,
        max_blocks: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if (rate is None) == (max_blocks is None):
            raise ValueError("pass exactly one of rate= or max_blocks=")
        if rate is not None and not 0.0 < rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {rate}")
        if max_blocks is not None and max_blocks < 1:
            raise ValueError(f"max_blocks must be >= 1, got {max_blocks}")
        if not _is_pow2(line_size):
            raise ValueError(f"line size must be a power of two, got {line_size}")
        self.line_size = line_size
        self.seed = seed
        self.max_blocks = max_blocks
        self.sizes: Tuple[int, ...] = (
            tuple(sizes_lines)
            if sizes_lines is not None
            else default_size_ladder(line_size)
        )
        self._shift = _log2(line_size)
        self._threshold = int(rate * _FULL) if rate is not None else _FULL
        if self._threshold < 1:
            raise ValueError(f"rate {rate} is below the hash resolution")

        self._tree = _Fenwick(_MIN_TREE)
        self._last_pos: Dict[int, int] = {}
        self._block_hash: Dict[int, int] = {}
        # Max-heap (negated) of (hash, block) for fixed-size evictions.
        self._heap: List[Tuple[int, int]] = []
        self._hash_cache: Dict[int, int] = {}
        self._hash_cache_max = (
            max(8 * max_blocks, _MIN_TREE) if max_blocks is not None else 1 << 16
        )

        # Weighted per-size miss estimates, accumulated in the sample
        # domain.  ``sorted_sizes`` ascends so the inner loop can break.
        self._sorted_sizes = sorted(self.sizes)
        self._miss_weight = [0.0] * len(self._sorted_sizes)
        self._cold_weight = 0.0
        self._ref_weight = 0.0
        self._sampled_refs = 0
        self._total_refs = 0
        self._pos = 0  # position in the *sampled* substream (1-based)

    # ------------------------------------------------------------------
    # Introspection (the service's budget accounting reads these)
    # ------------------------------------------------------------------
    @property
    def total_refs(self) -> int:
        """References fed so far (sampled or not)."""
        return self._total_refs

    @property
    def sampled_refs(self) -> int:
        return self._sampled_refs

    @property
    def sampled_blocks(self) -> int:
        """Distinct blocks currently in the sample."""
        return len(self._last_pos)

    @property
    def final_rate(self) -> float:
        return self._threshold / _FULL

    def state_entries(self) -> int:
        """Upper-bound proxy for resident state, in dict/heap entries.

        Deliberately structural (entry counts, not bytes): the quantity
        the bounded-memory tests pin and the service budget divides by.
        """
        return (
            len(self._last_pos)
            + len(self._block_hash)
            + len(self._heap)
            + len(self._hash_cache)
            + self._tree.n
        )

    # ------------------------------------------------------------------
    # The pass
    # ------------------------------------------------------------------
    def feed(self, addresses: "np.ndarray | Iterable[int]") -> None:
        """Consume one chunk of byte addresses, in stream order."""
        addr_array = np.asarray(addresses, dtype=np.int64)
        blocks: List[int] = (addr_array >> self._shift).tolist()
        self._total_refs += len(blocks)

        tree_add = self._tree.add
        tree_prefix = self._tree.prefix
        capacity = self._tree.n
        last_pos = self._last_pos
        block_hash = self._block_hash
        heap = self._heap
        hash_cache = self._hash_cache
        sorted_sizes = self._sorted_sizes
        miss_weight = self._miss_weight
        max_blocks = self.max_blocks
        seed = self.seed
        pos = self._pos

        for block in blocks:
            h = hash_cache.get(block)
            if h is None:
                if len(hash_cache) >= self._hash_cache_max:
                    hash_cache.clear()  # pure function: safe to forget
                h = hash_block(block, seed)
                hash_cache[block] = h
            if h >= self._threshold:
                continue
            scale = _FULL / self._threshold
            self._sampled_refs += 1
            self._ref_weight += scale
            if pos >= capacity:
                self._pos = pos
                self._compact()
                tree_add = self._tree.add
                tree_prefix = self._tree.prefix
                capacity = self._tree.n
                pos = self._pos
            pos += 1
            prev = last_pos.get(block)
            if prev is None:
                self._cold_weight += scale
                block_hash[block] = h
                heapq.heappush(heap, (-h, block))
            else:
                # The referenced block itself is in the interval with
                # probability 1, not R, so only the other (d_s - 1)
                # distinct sampled blocks are rescaled:
                # E[(d_s-1)/R + 1] = D exactly.  The naive d_s/R
                # overestimates every distance by ~(1/R - 1) lines,
                # which is material at this repo's line-scale sizes.
                sample_distance = tree_prefix(pos - 1) - tree_prefix(prev) + 1
                estimated = (sample_distance - 1) * scale + 1.0
                for i, size in enumerate(sorted_sizes):
                    if estimated <= size:
                        break  # sizes ascend: every later size hits too
                    miss_weight[i] += scale
                tree_add(prev, -1)
            tree_add(pos, 1)
            last_pos[block] = pos
            if max_blocks is not None and len(last_pos) > max_blocks:
                # Evict the largest-hash block and lower the threshold
                # to its hash: the adaptive half of SHARDS (fixed sample
                # size).
                while True:
                    neg_h, victim = heapq.heappop(heap)
                    if block_hash.get(victim) == -neg_h:
                        break
                self._threshold = -neg_h
                tree_add(last_pos.pop(victim), -1)
                del block_hash[victim]
        self._pos = pos

    def _compact(self) -> None:
        """Renumber live positions 1..k in order; rebuild the tree.

        Relative order of live positions is preserved, so every interval
        count — the only thing the distance estimate ever reads — is
        unchanged; chunked and batch feeding stay exactly identical.
        """
        live = sorted(self._last_pos.items(), key=lambda item: item[1])
        k = len(live)
        self._tree = _Fenwick(max(2 * (k + 1), _MIN_TREE))
        add = self._tree.add
        for new_pos, (block, _) in enumerate(live, start=1):
            self._last_pos[block] = new_pos
            add(new_pos, 1)
        self._pos = k

    def result(self) -> SampleResult:
        """Snapshot the estimated curve over everything fed so far."""
        n = self._total_refs
        by_size = dict(zip(self._sorted_sizes, self._miss_weight))
        # Sample-domain ratios rescaled to full-trace counts (SHARDS_adj).
        adj = n / self._ref_weight if self._ref_weight else 0.0
        misses = tuple(
            min(n, int(round((self._cold_weight + by_size[size]) * adj)))
            for size in self.sizes
        )
        curve = MissRatioCurve(
            line_size=self.line_size,
            total_refs=n,
            cold_misses=int(round(self._cold_weight * adj)),
            sizes_lines=self.sizes,
            misses=misses,
            exact=False,
        )
        return SampleResult(
            curve=curve,
            sampled_refs=self._sampled_refs,
            sampled_blocks=len(self._last_pos),
            final_rate=self._threshold / _FULL,
            seed=self.seed,
        )


def sampled_curve(
    addresses: "np.ndarray | Iterable[int]",
    line_size: int = 64,
    sizes_lines: Optional[Sequence[int]] = None,
    *,
    rate: Optional[float] = None,
    max_blocks: Optional[int] = None,
    seed: int = 0,
) -> SampleResult:
    """Approximate MRC via SHARDS; exactly one of ``rate``/``max_blocks``.

    One-shot wrapper over :class:`ShardsEstimator`: constructs the
    estimator, feeds the whole stream, returns the result.
    """
    estimator = ShardsEstimator(
        line_size, sizes_lines, rate=rate, max_blocks=max_blocks, seed=seed
    )
    estimator.feed(addresses)
    return estimator.result()
