"""Per-size compulsory/capacity/conflict decomposition of real misses.

Hill's taxonomy (the one :mod:`repro.core.ground_truth` implements)
classifies each *real-cache* miss against a fully-associative LRU cache
of equal capacity.  This layer replays a reference stream through the
set-indexed geometry at each probed size and classifies every miss from
the shared single-pass :class:`~repro.mrc.stack.StackProfile`:

* first touch — **compulsory**;
* stack distance ``<= capacity_lines`` (the FA cache would have hit) —
  **conflict**;
* otherwise — **capacity**.

The per-size replay itself is the cheap half (a per-set LRU update per
reference); the expensive FA model is read off the one stack pass for
every size, which is what turns the O(sizes × trace) ground-truth sweep
into O(trace).  The real-cache side is a plain LRU set-associative
model, hit/miss-equivalent to
:class:`~repro.cache.set_assoc.SetAssociativeCache` with its default
LRU policy — the test suite pins the decomposition, count for count, to
:class:`~repro.core.ground_truth.GroundTruthClassifier` running against
that cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.mrc.stack import COLD, StackProfile, _is_pow2, _log2, compute_profile


@dataclass(frozen=True)
class ConflictSplit:
    """Hill's three-way miss split for one cache size (at fixed assoc)."""

    size_lines: int
    assoc: int
    line_size: int
    total_refs: int
    misses: int
    compulsory: int
    capacity: int
    conflict: int

    @property
    def size_bytes(self) -> int:
        return self.size_lines * self.line_size

    @property
    def hits(self) -> int:
        return self.total_refs - self.misses

    @property
    def miss_rate(self) -> float:
        """Real-cache miss rate in percent."""
        return 100.0 * self.misses / self.total_refs if self.total_refs else 0.0

    @property
    def conflict_share(self) -> float:
        """Conflict misses as a share of all misses, in percent."""
        return 100.0 * self.conflict / self.misses if self.misses else 0.0

    @property
    def capacity_share(self) -> float:
        return 100.0 * self.capacity / self.misses if self.misses else 0.0

    @property
    def compulsory_share(self) -> float:
        return 100.0 * self.compulsory / self.misses if self.misses else 0.0

    def breakdown(self) -> Dict[str, int]:
        """Same shape as ``GroundTruthClassifier.miss_breakdown()``."""
        return {
            "compulsory": self.compulsory,
            "conflict": self.conflict,
            "capacity": self.capacity,
        }


def decompose_size(
    blocks: Sequence[int],
    profile: StackProfile,
    size_lines: int,
    assoc: int,
) -> ConflictSplit:
    """Replay one set-indexed geometry and split its misses.

    ``blocks`` must be the line-granular block numbers of exactly the
    stream ``profile`` was computed from.
    """
    if assoc < 1:
        raise ValueError(f"associativity must be >= 1, got {assoc}")
    if size_lines % assoc != 0:
        raise ValueError(
            f"size of {size_lines} lines not divisible by assoc {assoc}"
        )
    num_sets = size_lines // assoc
    if not _is_pow2(num_sets):
        raise ValueError(
            f"set count {num_sets} must be a power of two (bit-selection "
            f"indexing)"
        )
    mask = num_sets - 1
    distances = profile.distances.tolist()
    sets: Dict[int, "OrderedDict[int, None]"] = {}
    misses = compulsory = conflict = capacity = 0
    for pos, block in enumerate(blocks):
        lru = sets.get(block & mask)
        if lru is None:
            lru = OrderedDict()
            sets[block & mask] = lru
        if block in lru:
            lru.move_to_end(block)
            continue
        misses += 1
        distance = distances[pos]
        if distance == COLD:
            compulsory += 1
        elif distance <= size_lines:
            conflict += 1
        else:
            capacity += 1
        if len(lru) >= assoc:
            lru.popitem(last=False)
        lru[block] = None
    return ConflictSplit(
        size_lines=size_lines,
        assoc=assoc,
        line_size=profile.line_size,
        total_refs=len(blocks),
        misses=misses,
        compulsory=compulsory,
        capacity=capacity,
        conflict=conflict,
    )


def conflict_decomposition(
    addresses: "np.ndarray | Iterable[int]",
    *,
    assoc: int = 1,
    line_size: int = 64,
    sizes_lines: Sequence[int],
    profile: Optional[StackProfile] = None,
) -> List[ConflictSplit]:
    """Three-way miss split at every probed size, from one stack pass.

    ``profile`` may be supplied when the caller already paid for the
    pass (the MRC experiments compute curve and decomposition from the
    same profile); it must come from the same stream and ``line_size``.
    """
    addr_array = np.asarray(addresses, dtype=np.int64)
    if profile is None:
        profile = compute_profile(addr_array, line_size)
    elif profile.line_size != line_size:
        raise ValueError(
            f"profile line size {profile.line_size} != requested {line_size}"
        )
    if profile.total_refs != int(len(addr_array)):
        raise ValueError(
            f"profile covers {profile.total_refs} refs, stream has "
            f"{len(addr_array)}"
        )
    blocks: List[int] = (addr_array >> _log2(line_size)).tolist()
    return [
        decompose_size(blocks, profile, size, assoc) for size in sizes_lines
    ]
