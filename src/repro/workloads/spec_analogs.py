"""Synthetic SPEC95-analog workloads.

The paper drives SMTSIM with Alpha binaries of the SPEC95 reference inputs
(1B instructions skipped, 300M measured).  Neither the binaries nor an
Alpha emulator are available here, so each benchmark is replaced by a
deterministic synthetic analog: a weighted mix of primitive address
streams (:mod:`repro.workloads.streams`) parameterised to reproduce the
behaviour the paper attributes to it — the conflict/capacity balance of
its misses against a 16KB direct-mapped L1, its prefetch regularity, and
its overall memory intensity.  Absolute miss rates will not match the real
programs; the *mix* of miss types (which is all the MCT and its
applications key on) is controlled directly.

Notable calibration targets from the paper:

* **tomcatv** — 38% L1 miss rate with no assist buffer; heavy strided
  conflict+capacity mix; the biggest AMB winner.
* **swim** — strided and prefetch-friendly; filtered prefetching *raises*
  coverage by protecting the buffer.
* **turb3d, wave5, tomcatv** — conflict-rich enough that the MCT-biased
  pseudo-associative cache beats a true 2-way cache.
* the **irregular C codes** (go, li, gcc, compress, vortex…) — "messier",
  lower memory impact, still classified accurately.

Stream-intrinsic miss rates against a 16KB DM L1 (useful when reading the
mixes below): stride-8 sweeps miss 12.5% (capacity), stride-16 25%,
burst-2 conflict ping-pong 50% (conflict near-misses), burst-3 pointer
chase 33% (capacity when the heap exceeds the cache), hot sets ~0%.

All builders share one signature: ``build(n_refs, seed) -> Trace``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.workloads.mixes import Component, interleave, region_base
from repro.workloads.streams import (
    ConflictStream,
    HotSetStream,
    PointerChaseStream,
    SequentialBurstStream,
    StridedStream,
)
from repro.workloads.trace import Trace

#: The L1 configuration the analogs are tuned against (16KB DM, 64B lines).
L1_SIZE = 16 * 1024
LINE = 64

BuilderFn = Callable[[int, int], Trace]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Registry entry: builder plus descriptive metadata."""

    name: str
    category: str  # "fp" or "int"
    description: str
    build: BuilderFn


def _mk(name: str, components: List[Component], n_refs: int, seed: int) -> Trace:
    return interleave(components, n_refs, seed=seed, name=name)


def _conflict(
    slot: int, lines: int, burst: int = 2, gap: int = 3, set_offset: int = 192
) -> ConflictStream:
    """A 2-array ping-pong group aligned to the L1 size (near-misses).

    Placed high in the index space (``set_offset`` defaults to set 192) so
    it does not overlap the analogs' hot working sets, which sit low: a
    near-miss is a *two-way* ping-pong, and a third resident structure in
    the same sets would turn it into the deep conflict the MCT (by design)
    does not track.
    """
    return ConflictStream(
        region_base(slot, set_offset=set_offset),
        n_arrays=2,
        alignment=L1_SIZE,
        lines=lines,
        burst=burst,
        gap=gap,
    )


def _hot(slot: int, size: int, gap: int = 2, set_offset: int = 0) -> HotSetStream:
    """A resident working set, placed low in the index space."""
    return HotSetStream(region_base(slot, set_offset=set_offset), size=size, gap=gap)


def _conflict3(
    slot: int, lines: int = 4, burst: int = 2, gap: int = 3, set_offset: int = 236
) -> ConflictStream:
    """A 3-array contention group: conflict near-misses for a 2-WAY cache.

    Two-array ping-pongs are invisible to a 2-way cache (both lines fit),
    so without deeper groups the 2-way configurations of Figure 1 would
    see almost no MCT-catchable conflicts.  Three arrays rotating through
    a 2-way set produce exactly the 2-way near-miss (a 3-way cache would
    hold all three); in the direct-mapped cache the same group is a
    3-deep conflict the single-entry MCT deliberately does not track, so
    these components stay small.
    """
    return ConflictStream(
        region_base(slot, set_offset=set_offset),
        n_arrays=3,
        alignment=L1_SIZE,
        lines=lines,
        burst=burst,
        gap=gap,
    )


# ----------------------------------------------------------------------
# Floating-point analogs
# ----------------------------------------------------------------------
def tomcatv(n_refs: int, seed: int = 0) -> Trace:
    """Mesh-generation analog: same-aligned arrays plus huge sweeps.

    Two ping-pong conflict groups (near-misses a 2-way cache would catch)
    and two long strided sweeps (capacity) reach the paper's signature
    ~38% no-buffer miss rate with misses split roughly evenly between the
    two classes.
    """
    return _mk(
        "tomcatv",
        [
            Component(_conflict(0, lines=5, burst=2, gap=2), weight=4.0),
            Component(_conflict(1, lines=4, burst=2, gap=2, set_offset=224), weight=2.0),
            Component(StridedStream(region_base(2), stride=16, span=1 << 17, gap=2, jump_prob=0.6), weight=3.5),
            Component(StridedStream(region_base(3), stride=16, span=3 << 16, gap=2, jump_prob=0.6), weight=2.5),
            Component(_conflict3(4, lines=2, burst=4, gap=2), weight=0.5),
        ],
        n_refs,
        seed,
    )


def swim(n_refs: int, seed: int = 0) -> Trace:
    """Shallow-water analog: three big strided arrays, prefetch-friendly.

    Mostly capacity misses with strong next-line regularity; a small
    conflict component keeps the classifier exercised.
    """
    return _mk(
        "swim",
        [
            Component(StridedStream(region_base(0), stride=8, span=1 << 16, gap=2, jump_prob=0.6), weight=3.0),
            Component(StridedStream(region_base(1), stride=8, span=1 << 16, gap=2, jump_prob=0.6), weight=3.0),
            Component(StridedStream(region_base(2), stride=8, span=3 << 15, gap=2, jump_prob=0.6), weight=2.0),
            Component(_conflict(3, lines=5, burst=3), weight=1.2),
        ],
        n_refs,
        seed,
    )


def su2cor(n_refs: int, seed: int = 0) -> Trace:
    """Quantum-physics analog: strided sweeps with a moderate conflict group."""
    return _mk(
        "su2cor",
        [
            Component(StridedStream(region_base(0), stride=8, span=3 << 16, gap=3, jump_prob=0.6), weight=3.0),
            Component(_conflict(1, lines=6, burst=3), weight=1.6),
            Component(_hot(2, 6 * 1024, gap=2), weight=2.4),
            Component(_conflict3(3, lines=2, burst=4), weight=0.4),
        ],
        n_refs,
        seed,
    )


def hydro2d(n_refs: int, seed: int = 0) -> Trace:
    """Hydrodynamics analog: stencil sweeps plus a resident working set."""
    return _mk(
        "hydro2d",
        [
            Component(StridedStream(region_base(0), stride=8, span=1 << 16, gap=2, jump_prob=0.6), weight=3.0),
            Component(StridedStream(region_base(1), stride=8 * 130, span=1 << 17, gap=3, jump_prob=0.6), weight=0.7),
            Component(_conflict(2, lines=5, burst=3), weight=1.0),
            Component(_hot(3, 8 * 1024, gap=2), weight=2.5),
        ],
        n_refs,
        seed,
    )


def mgrid(n_refs: int, seed: int = 0) -> Trace:
    """Multigrid analog: three stride levels over one large grid (capacity)."""
    return _mk(
        "mgrid",
        [
            Component(StridedStream(region_base(0), stride=8, span=1 << 16, gap=2, jump_prob=0.6), weight=3.5),
            Component(StridedStream(region_base(0), stride=512, span=1 << 17, gap=3, jump_prob=0.6), weight=0.6),
            Component(_hot(1, 4 * 1024, gap=2), weight=2.0),
        ],
        n_refs,
        seed,
    )


def applu(n_refs: int, seed: int = 0) -> Trace:
    """LU-solver analog: blocked sweeps, a small chase, light conflict."""
    return _mk(
        "applu",
        [
            Component(StridedStream(region_base(0), stride=8, span=3 << 16, gap=3, jump_prob=0.6), weight=3.0),
            Component(PointerChaseStream(region_base(1), n_nodes=2048, burst=4, seed=11, gap=4), weight=1.0),
            Component(_conflict(2, lines=4, burst=3), weight=1.0),
            Component(_hot(3, 6 * 1024, gap=2), weight=2.2),
        ],
        n_refs,
        seed,
    )


def turb3d(n_refs: int, seed: int = 0) -> Trace:
    """Turbulence/FFT analog: power-of-two strides that pile onto few sets.

    The 4KB-stride sweep touches only a handful of sets, 8 lines deep, so
    it produces conflict misses the MCT deliberately does *not* track
    (deeper than near-misses — Section 3 notes a victim buffer would not
    help them either); this is the
    classic FFT pathology on a direct-mapped cache.
    """
    return _mk(
        "turb3d",
        [
            Component(StridedStream(region_base(0), stride=4096, span=1 << 17, gap=2, jump_prob=0.6), weight=0.5),
            Component(_conflict(1, lines=6, burst=2, gap=2), weight=3.0),
            Component(StridedStream(region_base(2), stride=8, span=1 << 16, gap=3, jump_prob=0.6), weight=2.0),
            Component(_hot(3, 4 * 1024, gap=2), weight=2.0),
            Component(_conflict3(4, lines=2, burst=4, gap=2), weight=0.45),
        ],
        n_refs,
        seed,
    )


def apsi(n_refs: int, seed: int = 0) -> Trace:
    """Weather-model analog: balanced strided/hot mix, mild conflicts."""
    return _mk(
        "apsi",
        [
            Component(StridedStream(region_base(0), stride=8, span=3 << 16, gap=3, jump_prob=0.6), weight=2.4),
            Component(_conflict(1, lines=4, burst=4), weight=0.9),
            Component(_hot(2, 10 * 1024, gap=2), weight=2.7),
        ],
        n_refs,
        seed,
    )


def wave5(n_refs: int, seed: int = 0) -> Trace:
    """Particle-in-cell analog: particle chase plus field-array sweeps."""
    return _mk(
        "wave5",
        [
            Component(PointerChaseStream(region_base(0), n_nodes=2048, burst=4, seed=7, gap=3), weight=1.8),
            Component(StridedStream(region_base(1), stride=8, span=1 << 16, gap=2, jump_prob=0.6), weight=2.2),
            Component(_conflict(2, lines=5, burst=2), weight=1.8),
            Component(_hot(3, 6 * 1024, gap=2), weight=2.2),
            Component(_conflict3(4, lines=2, burst=4), weight=0.45),
        ],
        n_refs,
        seed,
    )


# ----------------------------------------------------------------------
# Integer analogs (the "messier" C codes)
# ----------------------------------------------------------------------
def go(n_refs: int, seed: int = 0) -> Trace:
    """Game-tree analog: mostly a resident board/heap, a small chase."""
    return _mk(
        "go",
        [
            Component(_hot(0, 10 * 1024, gap=4), weight=5.0),
            Component(PointerChaseStream(region_base(1), n_nodes=1024, burst=4, seed=3, gap=5), weight=0.8),
            Component(_conflict(2, lines=4, burst=4, gap=5), weight=0.5),
        ],
        n_refs,
        seed,
    )


def m88ksim(n_refs: int, seed: int = 0) -> Trace:
    """CPU-simulator analog: small hot state, very low miss rate."""
    return _mk(
        "m88ksim",
        [
            Component(_hot(0, 8 * 1024, gap=5), weight=5.0),
            Component(StridedStream(region_base(1), stride=8, span=1 << 15, gap=5, jump_prob=0.6), weight=0.6),
        ],
        n_refs,
        seed,
    )


def gcc(n_refs: int, seed: int = 0) -> Trace:
    """Compiler analog: pointer-heavy IR walk over a medium heap."""
    return _mk(
        "gcc",
        [
            Component(PointerChaseStream(region_base(0), n_nodes=2048, burst=4, seed=5, gap=4), weight=1.6),
            Component(_hot(1, 8 * 1024, gap=4), weight=3.4),
            Component(_conflict(2, lines=4, burst=4, gap=4), weight=0.7),
            Component(SequentialBurstStream(region_base(3), span=1 << 17, burst=6, gap=4), weight=0.9),
            Component(_conflict3(4, lines=2, burst=4, gap=4), weight=0.4),
        ],
        n_refs,
        seed,
    )


def compress(n_refs: int, seed: int = 0) -> Trace:
    """Compression analog: streaming input plus a random hash table.

    The 128KB hash table misses on most touches (capacity, no spatial
    pattern); the input scan has short spatial bursts — both are exclusion
    candidates, neither rewards a victim cache.
    """
    return _mk(
        "compress",
        [
            Component(SequentialBurstStream(region_base(0), span=4 << 20, burst=6, gap=3), weight=2.2),
            Component(_hot(1, 128 * 1024, gap=3), weight=1.4),
            Component(_hot(2, 6 * 1024, gap=3), weight=2.4),
        ],
        n_refs,
        seed,
    )


def li(n_refs: int, seed: int = 0) -> Trace:
    """Lisp-interpreter analog: cons-cell chase across a small heap."""
    return _mk(
        "li",
        [
            Component(PointerChaseStream(region_base(0), n_nodes=3072, node_size=32, burst=3, seed=9, gap=4), weight=1.8),
            Component(_hot(1, 6 * 1024, gap=4), weight=3.6),
            Component(_conflict(2, lines=4, burst=4, gap=5), weight=0.6),
        ],
        n_refs,
        seed,
    )


def ijpeg(n_refs: int, seed: int = 0) -> Trace:
    """Image-compression analog: row sweeps with a hot coefficient table."""
    return _mk(
        "ijpeg",
        [
            Component(StridedStream(region_base(0), stride=8, span=1 << 16, gap=3, jump_prob=0.6), weight=2.2),
            Component(StridedStream(region_base(1), stride=1024, span=1 << 17, gap=4, jump_prob=0.6), weight=0.5),
            Component(_hot(2, 8 * 1024, gap=3), weight=3.0),
        ],
        n_refs,
        seed,
    )


def perl(n_refs: int, seed: int = 0) -> Trace:
    """Interpreter analog: hot dispatch state plus a modest heap chase."""
    return _mk(
        "perl",
        [
            Component(_hot(0, 12 * 1024, gap=4), weight=4.5),
            Component(PointerChaseStream(region_base(1), n_nodes=2048, burst=4, seed=13, gap=4), weight=1.0),
        ],
        n_refs,
        seed,
    )


def vortex(n_refs: int, seed: int = 0) -> Trace:
    """Object-database analog: large-heap chase with streaming logs."""
    return _mk(
        "vortex",
        [
            Component(PointerChaseStream(region_base(0), n_nodes=2048, burst=4, seed=17, gap=4), weight=1.6),
            Component(SequentialBurstStream(region_base(1), span=1 << 17, burst=5, gap=4), weight=0.9),
            Component(_hot(2, 8 * 1024, gap=4), weight=2.8),
            Component(_conflict(3, lines=4, burst=3, gap=4), weight=0.8),
        ],
        n_refs,
        seed,
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
SUITE: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec("tomcatv", "fp", "mesh generation; heavy conflict+capacity, ~38% base miss rate", tomcatv),
        BenchmarkSpec("swim", "fp", "shallow water; strided, prefetch-friendly capacity misses", swim),
        BenchmarkSpec("su2cor", "fp", "quantum physics; strided with moderate conflicts", su2cor),
        BenchmarkSpec("hydro2d", "fp", "hydrodynamics; stencil sweeps plus hot set", hydro2d),
        BenchmarkSpec("mgrid", "fp", "multigrid; multi-stride capacity-dominated", mgrid),
        BenchmarkSpec("applu", "fp", "LU solver; blocked sweeps, light conflict", applu),
        BenchmarkSpec("turb3d", "fp", "turbulence FFT; power-of-two-stride conflicts", turb3d),
        BenchmarkSpec("apsi", "fp", "weather; balanced mix, mild conflicts", apsi),
        BenchmarkSpec("wave5", "fp", "particle-in-cell; chase plus field sweeps", wave5),
        BenchmarkSpec("go", "int", "game tree; resident working set, low memory impact", go),
        BenchmarkSpec("m88ksim", "int", "CPU simulator; tiny hot state", m88ksim),
        BenchmarkSpec("gcc", "int", "compiler; irregular pointer-heavy heap", gcc),
        BenchmarkSpec("compress", "int", "compression; streaming plus hash table", compress),
        BenchmarkSpec("li", "int", "lisp interpreter; cons-cell chase", li),
        BenchmarkSpec("ijpeg", "int", "image compression; row sweeps, hot tables", ijpeg),
        BenchmarkSpec("perl", "int", "interpreter; hot dispatch state", perl),
        BenchmarkSpec("vortex", "int", "object database; large-heap chase", vortex),
    ]
}

#: Full suite — used for the classification-accuracy study (Figs 1-2),
#: which the paper runs even on "uninteresting" benchmarks.
ACCURACY_SUITE: List[str] = list(SUITE)

#: The Section-5 subset: benchmarks with "at least a somewhat interesting
#: mix of conflict and capacity behavior", still including irregular C
#: codes with modest memory impact (per the paper's methodology).
EVAL_SUITE: List[str] = [
    "tomcatv",
    "swim",
    "su2cor",
    "hydro2d",
    "turb3d",
    "applu",
    "wave5",
    "gcc",
    "compress",
    "li",
    "go",
    "vortex",
]


def build(name: str, n_refs: int, seed: int = 0) -> Trace:
    """Build one analog by name."""
    try:
        spec = SUITE[name]
    except KeyError:
        raise ValueError(
            f"unknown benchmark {name!r}; known: {sorted(SUITE)}"
        ) from None
    return spec.build(n_refs, seed)


def build_suite(
    names: List[str] | None = None, n_refs: int = 100_000, seed: int = 0
) -> Dict[str, Trace]:
    """Build several analogs (default: the Section-5 evaluation subset)."""
    return {name: build(name, n_refs, seed) for name in (names or EVAL_SUITE)}
