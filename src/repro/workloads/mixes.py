"""Weighted interleaving of primitive streams into a Trace.

Real programs interleave behaviours at the granularity of inner loops, not
single references, so the mixer draws *chunks* (default 16 references) from
its component streams.  Chunk order is a seeded weighted random sequence:
heavier streams appear proportionally more often, and the same seed always
yields the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.workloads.streams import AddressStream
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class Component:
    """One stream plus its mixing weight and store ratio."""

    stream: AddressStream
    weight: float = 1.0
    store_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if not 0.0 <= self.store_fraction <= 1.0:
            raise ValueError("store_fraction must be in [0, 1]")


def interleave(
    components: Sequence[Component],
    n_refs: int,
    *,
    seed: int = 0,
    chunk: int = 16,
    name: str = "mix",
) -> Trace:
    """Build a trace of ``n_refs`` references from weighted components.

    Parameters
    ----------
    components:
        The streams to mix; weights are normalised internally.
    n_refs:
        Total number of references in the resulting trace.
    seed:
        Seeds both the chunk-order draw and any randomness inside the
        component streams (hot sets).  Component streams are reset first,
        so the same call always produces the same trace.
    chunk:
        References taken from a stream per turn (inner-loop granularity).
    """
    if not components:
        raise ValueError("need at least one component")
    if n_refs < 0:
        raise ValueError("n_refs must be non-negative")
    if chunk < 1:
        raise ValueError("chunk must be >= 1")

    rng = np.random.Generator(np.random.PCG64(seed))
    for comp in components:
        comp.stream.reset()

    weights = np.array([c.weight for c in components], dtype=float)
    weights /= weights.sum()

    addresses = np.empty(n_refs, dtype=np.int64)
    gaps = np.empty(n_refs, dtype=np.int16)
    is_load = np.ones(n_refs, dtype=bool)
    pcs = np.empty(n_refs, dtype=np.int64)

    pos = 0
    while pos < n_refs:
        which = int(rng.choice(len(components), p=weights))
        comp = components[which]
        take = min(chunk, n_refs - pos)
        block = comp.stream.emit(take, rng)
        addresses[pos : pos + take] = block
        gaps[pos : pos + take] = comp.stream.gap
        # One synthetic load PC per stream: the references of a stream come
        # from one load instruction in a loop body, which is what PC-indexed
        # structures (the RPT stride predictor, Tyson-style exclusion) key on.
        pcs[pos : pos + take] = 0x40_0000 + which * 4
        if comp.store_fraction > 0.0:
            stores = rng.random(take) < comp.store_fraction
            is_load[pos : pos + take] = ~stores
        pos += take

    return Trace(addresses, is_load, gaps, name=name, pcs=pcs)


def region_base(
    slot: int, region_size: int = 1 << 22, set_offset: int | None = None
) -> int:
    """A canonical non-overlapping base address for stream ``slot``.

    Streams within one analog get distinct 4MB regions so their footprints
    never alias by accident; index-bit collisions are then introduced
    *deliberately* via :class:`~repro.workloads.streams.ConflictStream`.

    Each slot is additionally skewed by a distinct set offset (61 lines per
    slot by default, modulo a 16KB direct-mapped index space).  Without the
    skew every stream's footprint would start at set 0, manufacturing deep
    multi-way set conflicts between *unrelated* streams — behaviour real
    programs' independently-placed data structures do not exhibit, and
    which would unfairly swamp the single-entry-per-set MCT.

    ``set_offset`` pins the footprint's first cache set explicitly (in
    lines, against a 256-set / 16KB-DM index space); analogs use it to
    keep hot working sets and conflict ping-pong groups disjoint in the
    index bits, as independently-allocated structures usually are.
    """
    if slot < 0:
        raise ValueError("slot must be non-negative")
    if set_offset is None:
        set_offset = (slot * 61) % 256
    # Stagger regions by 128KB on top of the nominal size so that tags of
    # corresponding lines in different regions differ in their LOW bits
    # too: with exact 4MB spacing against a 16KB-DM cache, tag deltas are
    # multiples of 256 and an 8-bit partial-tag MCT could not tell the
    # analogs' streams apart (pure aliasing artefact, not workload
    # behaviour).
    spacing = region_size + (1 << 17)
    return (slot + 1) * spacing + (set_offset % 256) * 64
