"""Synthetic workloads: primitive streams, mixes, SPEC95 analogs."""

from repro.workloads.icache import (
    Function,
    conflicting_call_workload,
    program,
)
from repro.workloads.mixes import Component, interleave, region_base
from repro.workloads.spec_analogs import (
    ACCURACY_SUITE,
    EVAL_SUITE,
    SUITE,
    BenchmarkSpec,
    build,
    build_suite,
)
from repro.workloads.streams import (
    AddressStream,
    ConflictStream,
    HotSetStream,
    PointerChaseStream,
    SequentialBurstStream,
    StridedStream,
)
from repro.workloads.trace import MemoryRef, Trace, merge_round_robin

__all__ = [
    "ACCURACY_SUITE",
    "AddressStream",
    "BenchmarkSpec",
    "Component",
    "ConflictStream",
    "EVAL_SUITE",
    "Function",
    "HotSetStream",
    "MemoryRef",
    "PointerChaseStream",
    "SUITE",
    "SequentialBurstStream",
    "StridedStream",
    "Trace",
    "build",
    "build_suite",
    "conflicting_call_workload",
    "interleave",
    "program",
    "merge_round_robin",
    "region_base",
]
