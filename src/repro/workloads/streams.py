"""Primitive address streams.

Each stream is a small stateful generator with a vectorized
``emit(n, rng) -> np.ndarray`` producing its next ``n`` byte addresses.
SPEC95-analog workloads (:mod:`repro.workloads.spec_analogs`) are weighted
interleavings of these primitives; each primitive exists because it
produces one of the behaviours the paper's mechanisms key on:

* :class:`StridedStream` — array sweeps; large spans give pure capacity
  misses with strong next-line regularity (prefetch-friendly).  The
  optional ``jump_prob`` teleports the sweep position between bursts,
  modelling row boundaries and indirection that break next-line chains.
* :class:`ConflictStream` — several arrays whose bases collide in the
  cache's index bits; round-robin touches produce the conflict
  *near-misses* (DM misses a 2-way cache would catch) that victim caches
  and the MCT target.
* :class:`PointerChaseStream` — a fixed random cycle through a region;
  irregular, prefetch-hostile, capacity-ish when the region exceeds the
  cache ("messy" integer-code behaviour).
* :class:`HotSetStream` — a small, cache-resident working set; supplies
  the hits that keep analog miss rates realistic.
* :class:`SequentialBurstStream` — a streaming scan with a few accesses
  per line and no reuse; the canonical cache-exclusion candidate
  (short-term spatial locality only).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np


class AddressStream(ABC):
    """A stateful source of byte addresses.

    ``gap`` is the mean number of non-memory instructions between this
    stream's references; the mixer copies it into the trace so that
    memory-intense streams (small gaps) stress the timing model harder.
    """

    gap: int = 3

    @abstractmethod
    def emit(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return the next ``n`` addresses (dtype int64)."""

    @abstractmethod
    def reset(self) -> None:
        """Rewind to the initial position (streams are deterministic)."""


@dataclass
class StridedStream(AddressStream):
    """Repeated sweep over ``span`` bytes with a fixed stride.

    Wraps to ``base`` when a sweep completes, modelling the outer loop of a
    numeric kernel re-walking the same array.
    """

    base: int
    stride: int = 8
    span: int = 1 << 20
    gap: int = 3
    jump_prob: float = 0.0
    _pos: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.stride <= 0:
            raise ValueError("stride must be positive")
        if self.span < self.stride:
            raise ValueError("span must cover at least one stride")
        if not 0.0 <= self.jump_prob <= 1.0:
            raise ValueError("jump_prob must be in [0, 1]")

    def emit(self, n: int, rng: np.random.Generator) -> np.ndarray:
        steps = self.span // self.stride
        if self.jump_prob and rng.random() < self.jump_prob:
            # Row boundary / loop restart: teleport to a random position.
            # Real 2-D sweeps are only piecewise line-sequential, which is
            # what makes a next-line prefetcher waste so many prefetches
            # (paper §5.2); a perfectly linear stream would overstate it.
            self._pos = int(rng.integers(0, steps))
        idx = (self._pos + np.arange(n, dtype=np.int64)) % steps
        self._pos = (self._pos + n) % steps
        return self.base + idx * self.stride

    def reset(self) -> None:
        self._pos = 0


@dataclass
class ConflictStream(AddressStream):
    """Round-robin over arrays that collide in the index bits.

    ``n_arrays`` bases are spaced exactly ``alignment`` bytes apart (set
    ``alignment`` to the cache size to force every array onto the same
    sets).  The stream makes *line visits* of ``burst`` word accesses each,
    interleaving arrays at line-visit granularity over a window of
    ``lines`` cache lines — so in a direct-mapped cache each visit evicts
    the other array's line from the same set, and the next visit to that
    line is a textbook conflict near-miss (a 2-way cache would have hit).

    Keep ``lines * n_arrays`` well under the cache's line count so the
    reuse distance stays short enough for Hill's classic definition to
    also call these misses conflicts.

    The group's lines are spaced ``line_stride`` cache lines apart and
    visited in a shuffled order: a heavily-contended set is *not* part of
    any line-sequential stream, so a next-line prefetch issued on one of
    these conflict misses fetches a line the program never touches —
    Figure 4's premise that conflict misses make poor prefetch triggers.
    """

    base: int
    n_arrays: int = 2
    alignment: int = 16 * 1024
    lines: int = 16
    burst: int = 2
    line_size: int = 64
    shuffle_lines: bool = True
    line_stride: int = 3
    gap: int = 4
    _pos: int = field(default=0, repr=False)
    _order: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_arrays < 2:
            raise ValueError("a conflict stream needs at least two arrays")
        if self.lines < 1:
            raise ValueError("lines must be >= 1")
        if not 1 <= self.burst <= self.line_size // 8:
            raise ValueError("burst must be in [1, words per line]")
        if self.line_stride < 1:
            raise ValueError("line_stride must be >= 1")
        if self.shuffle_lines:
            # Visit lines in a fixed pseudo-random order.  Two structures
            # fighting over cache sets are not line-sequential in practice,
            # and a sequential order would make a next-line prefetcher
            # *good* at conflict misses — the opposite of §5.2's premise.
            own = np.random.Generator(np.random.PCG64(self.base & 0xFFFF_FFFF))
            order = own.permutation(self.lines).astype(np.int64)
        else:
            order = np.arange(self.lines, dtype=np.int64)
        object.__setattr__(self, "_order", order)

    def emit(self, n: int, rng: np.random.Generator) -> np.ndarray:
        i = self._pos + np.arange(n, dtype=np.int64)
        self._pos += n
        visit = i // self.burst
        word = i % self.burst
        array_id = visit % self.n_arrays
        line_id = self._order[(visit // self.n_arrays) % self.lines]
        return (
            self.base
            + array_id * self.alignment
            + line_id * self.line_stride * self.line_size
            + word * 8
        )

    def reset(self) -> None:
        self._pos = 0


@dataclass
class PointerChaseStream(AddressStream):
    """A fixed pseudo-random Hamiltonian cycle through ``n_nodes`` nodes.

    The node order is drawn once from ``seed`` so the stream is
    reproducible and genuinely loops (revisits create capacity misses when
    ``n_nodes * node_size`` exceeds the cache).
    """

    base: int
    n_nodes: int = 4096
    node_size: int = 64
    burst: int = 3
    seed: int = 1
    gap: int = 6
    _order: np.ndarray = field(init=False, repr=False)
    _pos: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if not 1 <= self.burst <= max(self.node_size // 8, 1):
            raise ValueError("burst must be in [1, words per node]")
        own_rng = np.random.Generator(np.random.PCG64(self.seed))
        self._order = own_rng.permutation(self.n_nodes).astype(np.int64)

    def emit(self, n: int, rng: np.random.Generator) -> np.ndarray:
        i = self._pos + np.arange(n, dtype=np.int64)
        self._pos += n
        visit = (i // self.burst) % self.n_nodes
        word = i % self.burst
        return self.base + self._order[visit] * self.node_size + word * 8

    def reset(self) -> None:
        self._pos = 0


@dataclass
class HotSetStream(AddressStream):
    """Uniform random touches within a small resident working set."""

    base: int
    size: int = 4 * 1024
    word: int = 8
    gap: int = 2

    def __post_init__(self) -> None:
        if self.size < self.word:
            raise ValueError("size must cover at least one word")

    def emit(self, n: int, rng: np.random.Generator) -> np.ndarray:
        words = self.size // self.word
        return self.base + rng.integers(0, words, size=n, dtype=np.int64) * self.word

    def reset(self) -> None:
        pass  # stateless apart from the shared rng


@dataclass
class SequentialBurstStream(AddressStream):
    """Streaming scan: ``burst`` word accesses per line, then move on.

    Never revisits a line within a sweep of ``span`` bytes, so every line
    costs one (capacity/compulsory) miss followed by ``burst - 1`` hits —
    exactly the short-term-spatial-locality-only pattern Johnson & Hwu's
    MAT and the paper's capacity-exclusion policy are designed to catch.
    """

    base: int
    span: int = 8 << 20
    burst: int = 4
    line_size: int = 64
    gap: int = 3
    _pos: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 1 <= self.burst <= self.line_size // 8:
            raise ValueError("burst must be in [1, words per line]")

    def emit(self, n: int, rng: np.random.Generator) -> np.ndarray:
        lines = self.span // self.line_size
        i = self._pos + np.arange(n, dtype=np.int64)
        self._pos += n
        line_id = (i // self.burst) % lines
        word_id = i % self.burst
        return self.base + line_id * self.line_size + word_id * 8

    def reset(self) -> None:
        self._pos = 0
