"""Memory-reference traces.

A :class:`Trace` is the unit of work every simulator in this library
consumes: a sequence of data references, each carrying a byte address, a
load/store flag and a *gap* — the number of non-memory instructions the
program executed since the previous reference.  Gaps drive the timing
model's instruction-issue clock; addresses drive the caches.

Traces are stored as parallel numpy arrays so that multi-million-reference
workloads stay compact and cheap to slice, while :meth:`Trace.__iter__`
still yields light-weight :class:`MemoryRef` views for code that prefers
objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np


@dataclass(frozen=True)
class MemoryRef:
    """One data reference."""

    address: int
    is_load: bool = True
    gap: int = 3
    pc: int = 0


class Trace:
    """An immutable sequence of memory references.

    Parameters
    ----------
    addresses:
        Byte addresses, any integer array-like.
    is_load:
        Per-reference load flag; scalar True when omitted.
    gaps:
        Per-reference instruction gaps; scalar default 3 when omitted
        (roughly one reference per 4 instructions, typical of SPEC95).
    name:
        Label for reports.
    """

    def __init__(
        self,
        addresses: Iterable[int],
        is_load: Iterable[bool] | None = None,
        gaps: Iterable[int] | None = None,
        name: str = "trace",
        pcs: Iterable[int] | None = None,
    ) -> None:
        self.addresses = np.asarray(addresses, dtype=np.int64)
        n = len(self.addresses)
        if is_load is None:
            self.is_load = np.ones(n, dtype=bool)
        else:
            self.is_load = np.asarray(is_load, dtype=bool)
        if gaps is None:
            self.gaps = np.full(n, 3, dtype=np.int16)
        else:
            self.gaps = np.asarray(gaps, dtype=np.int16)
        if pcs is None:
            self.pcs = np.zeros(n, dtype=np.int64)
        else:
            self.pcs = np.asarray(pcs, dtype=np.int64)
        if len(self.is_load) != n or len(self.gaps) != n or len(self.pcs) != n:
            raise ValueError(
                "addresses, is_load, gaps and pcs must have equal lengths "
                f"(got {n}, {len(self.is_load)}, {len(self.gaps)}, "
                f"{len(self.pcs)})"
            )
        if n and self.addresses.min() < 0:
            raise ValueError("addresses must be non-negative")
        if n and self.gaps.min() < 0:
            raise ValueError("gaps must be non-negative")
        self.name = name

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.addresses)

    def __iter__(self) -> Iterator[MemoryRef]:
        for addr, load, gap, pc in zip(
            self.addresses, self.is_load, self.gaps, self.pcs
        ):
            yield MemoryRef(
                address=int(addr), is_load=bool(load), gap=int(gap), pc=int(pc)
            )

    def __getitem__(self, item: slice) -> "Trace":
        if not isinstance(item, slice):
            raise TypeError("Trace supports slicing only; iterate for single refs")
        return Trace(
            self.addresses[item],
            self.is_load[item],
            self.gaps[item],
            name=self.name,
            pcs=self.pcs[item],
        )

    @property
    def total_instructions(self) -> int:
        """Memory references plus all gap instructions."""
        # gaps is deliberately int16 (3 bytes/ref saved on long traces);
        # the accumulator must not inherit that width — or the platform
        # default (int32 on 64-bit Windows), which wraps past ~2**31
        # total instructions.
        return int(self.gaps.sum(dtype=np.int64)) + len(self)

    def address_list(self) -> list[int]:
        """Addresses as plain Python ints (for address-only consumers)."""
        return [int(a) for a in self.addresses]

    def concat(self, other: "Trace", name: str | None = None) -> "Trace":
        """A new trace that plays this trace then ``other``."""
        return Trace(
            np.concatenate([self.addresses, other.addresses]),
            np.concatenate([self.is_load, other.is_load]),
            np.concatenate([self.gaps, other.gaps]),
            name=name or f"{self.name}+{other.name}",
            pcs=np.concatenate([self.pcs, other.pcs]),
        )

    def footprint_lines(self, line_size: int = 64) -> int:
        """Number of distinct cache lines the trace touches."""
        return len(np.unique(self.addresses >> int(np.log2(line_size))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Trace {self.name!r}: {len(self)} refs>"


def merge_round_robin(traces: list[Trace], name: str = "merged") -> Trace:
    """Interleave traces reference-by-reference (uniform round-robin).

    Useful for quick multiprogrammed-style mixes in tests; the richer
    weighted/chunked interleaving lives in :mod:`repro.workloads.mixes`.
    """
    if not traces:
        raise ValueError("need at least one trace")
    n = min(len(t) for t in traces)
    k = len(traces)
    addresses = np.empty(n * k, dtype=np.int64)
    is_load = np.empty(n * k, dtype=bool)
    gaps = np.empty(n * k, dtype=np.int16)
    pcs = np.empty(n * k, dtype=np.int64)
    for i, t in enumerate(traces):
        addresses[i::k] = t.addresses[:n]
        is_load[i::k] = t.is_load[:n]
        gaps[i::k] = t.gaps[:n]
        # Disambiguate identical PCs across the merged programs.
        pcs[i::k] = t.pcs[:n] + (i << 28)
    return Trace(addresses, is_load, gaps, name=name, pcs=pcs)
