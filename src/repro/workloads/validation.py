"""Workload self-validation.

The SPEC95 analogs carry calibration contracts (miss-rate bands against
the paper's 16KB DM L1, a nontrivial conflict/capacity mix, determinism,
bounded footprints).  This module checks them — the test suite uses it,
and it runs standalone after retuning an analog:

    python -m repro.workloads.validation [bench ...]
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cache.geometry import CacheGeometry
from repro.core.accuracy import measure_accuracy
from repro.workloads.spec_analogs import EVAL_SUITE, SUITE, build

#: Calibration cache (the paper's L1).
REFERENCE_GEOMETRY = CacheGeometry(size=16 * 1024, assoc=1, line_size=64)

#: Acceptable base miss-rate bands per benchmark (percent, inclusive).
#: tomcatv is pinned near the paper's 38%; the irregular C codes stay
#: modest; everything else sits in a plausible SPEC95 band.
MISS_RATE_BANDS: Dict[str, tuple[float, float]] = {
    "tomcatv": (30.0, 45.0),
    "swim": (10.0, 25.0),
    "su2cor": (8.0, 25.0),
    "hydro2d": (12.0, 32.0),
    "mgrid": (8.0, 28.0),
    "applu": (8.0, 28.0),
    "turb3d": (20.0, 40.0),
    "apsi": (5.0, 22.0),
    "wave5": (12.0, 32.0),
    "go": (2.0, 14.0),
    "m88ksim": (0.5, 8.0),
    "gcc": (5.0, 22.0),
    "compress": (20.0, 45.0),
    "li": (5.0, 22.0),
    "ijpeg": (6.0, 26.0),
    "perl": (2.0, 14.0),
    "vortex": (6.0, 26.0),
}


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one analog."""

    name: str
    miss_rate: float
    conflict_fraction: float
    conflict_accuracy: float
    capacity_accuracy: float
    problems: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.problems


def validate(name: str, n_refs: int = 40_000, seed: int = 0) -> ValidationReport:
    """Check one analog against its calibration contract."""
    trace = build(name, n_refs, seed)
    problems: List[str] = []

    # Determinism.
    again = build(name, n_refs, seed)
    if (trace.addresses != again.addresses).any():
        problems.append("non-deterministic addresses for fixed seed")

    result = measure_accuracy(trace.addresses, REFERENCE_GEOMETRY)

    low, high = MISS_RATE_BANDS[name]
    if not low <= result.miss_rate <= high:
        problems.append(
            f"miss rate {result.miss_rate:.1f}% outside [{low}, {high}]"
        )

    if name in EVAL_SUITE and not 4.0 < result.conflict_fraction < 96.0:
        problems.append(
            "Section-5 benchmark lacks an interesting conflict/capacity mix "
            f"(conflict fraction {result.conflict_fraction:.1f}%)"
        )

    return ValidationReport(
        name=name,
        miss_rate=result.miss_rate,
        conflict_fraction=result.conflict_fraction,
        conflict_accuracy=result.conflict_accuracy,
        capacity_accuracy=result.capacity_accuracy,
        problems=tuple(problems),
    )


def validate_suite(
    names: Sequence[str] | None = None, n_refs: int = 40_000
) -> List[ValidationReport]:
    """Validate several analogs (default: the whole registry)."""
    return [validate(name, n_refs) for name in (names or list(SUITE))]


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover - CLI
    names = list(argv if argv is not None else sys.argv[1:]) or None
    reports = validate_suite(names)
    print(f"{'bench':<9} {'miss%':>6} {'conf-frac':>10} "
          f"{'conf-acc':>9} {'cap-acc':>8}  status")
    bad = 0
    for r in reports:
        status = "ok" if r.ok else "; ".join(r.problems)
        bad += not r.ok
        print(f"{r.name:<9} {r.miss_rate:6.1f} {r.conflict_fraction:10.1f} "
              f"{r.conflict_accuracy:9.1f} {r.capacity_accuracy:8.1f}  {status}")
    return 1 if bad else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
