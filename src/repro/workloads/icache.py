"""Instruction-fetch streams (the paper's I-cache remark, §4).

"We will apply the various architectural techniques exclusively to the
data cache in the following sections; however, they should, in general,
also apply to the instruction cache."  This module provides the workload
side of checking that: synthetic instruction-fetch address streams with
the structure that makes I-caches interesting —

* long *sequential runs* (straight-line code) broken by taken branches,
* tight *loops* that re-execute a small body,
* *calls* to a working set of functions whose code addresses may alias
  in the I-cache index bits (the classic source of I-cache conflict
  misses between a caller/callee pair).

:func:`program` builds a deterministic fetch trace from a function-call
profile; ``conflicting_pair=True`` places two hot functions exactly one
I-cache size apart so every alternation is a conflict near-miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.workloads.trace import Trace

#: Fetch granularity: one access per 16 bytes (4 instructions) — a fetch
#: block, which is how an I-cache is actually probed.
FETCH_BYTES = 16


@dataclass(frozen=True)
class Function:
    """A synthetic function: a code region executed front to back."""

    name: str
    base: int           # code start address
    size: int           # bytes of straight-line code
    loop_body: int = 0      # bytes of inner loop (0 = none)
    loop_trips: int = 0     # times the loop body re-executes

    def __post_init__(self) -> None:
        if self.size < FETCH_BYTES:
            raise ValueError("function must hold at least one fetch block")
        if self.loop_body > self.size:
            raise ValueError("loop body cannot exceed the function")

    def fetch_addresses(self) -> List[int]:
        """The fetch-block addresses of one execution of this function."""
        out: List[int] = []
        straight = range(self.base, self.base + self.size, FETCH_BYTES)
        out.extend(straight)
        if self.loop_body and self.loop_trips:
            body_start = self.base + self.size - self.loop_body
            body = list(range(body_start, self.base + self.size, FETCH_BYTES))
            out.extend(body * self.loop_trips)
        return out


def program(
    functions: Sequence[Function],
    call_sequence: Sequence[int],
    name: str = "icache-program",
) -> Trace:
    """Concatenate function executions per ``call_sequence`` into a trace.

    ``call_sequence`` holds indices into ``functions``; the returned trace
    has one reference per fetch block with small gaps (instruction fetch
    happens every cycle, so the gap is zero).
    """
    if not functions:
        raise ValueError("need at least one function")
    addresses: List[int] = []
    for idx in call_sequence:
        addresses.extend(functions[idx].fetch_addresses())
    return Trace(
        np.asarray(addresses, dtype=np.int64),
        gaps=np.zeros(len(addresses), dtype=np.int16),
        name=name,
    )


def conflicting_call_workload(
    icache_size: int = 16 * 1024,
    *,
    hot_size: int = 2048,
    calls: int = 400,
    with_cold_code: bool = True,
) -> Trace:
    """Caller/callee pair whose code aliases in the I-cache (conflicts).

    Two hot functions are placed exactly ``icache_size`` apart so their
    fetch blocks contend for the same sets — the canonical I-cache
    conflict scenario the MCT should classify.  ``with_cold_code``
    interleaves occasional executions of a large cold function (capacity
    misses) so the stream has both miss kinds.
    """
    caller = Function("caller", base=0x40_0000, size=hot_size,
                      loop_body=256, loop_trips=2)
    callee = Function("callee", base=0x40_0000 + icache_size, size=hot_size)
    funcs: List[Function] = [caller, callee]
    sequence: List[int] = []
    for i in range(calls):
        sequence += [0, 1]
        if with_cold_code and i % 8 == 7:
            sequence.append(2)
    if with_cold_code:
        funcs.append(
            Function("cold", base=0x80_0000, size=64 * 1024)
        )
    return program(funcs, sequence, name="icache-conflicting-calls")
